//! Whole-machine integration: PEs + PNIs + combining network + MNIs + MMs
//! running real programs, cross-checked against the ideal paracomputer.

use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::{body, CmpOp, Cond, Expr, Op, Program};
use ultracomputer::report::MachineReport;

/// A mixed-primitive torture program: self-scheduled work claims, loads,
/// stores, fetch-and-adds, barriers, conditionals.
fn torture(items: i64) -> Program {
    Program::new(
        body(vec![
            // Round 1: claim items, mark each claimed slot.
            Op::SelfSched {
                reg: 0,
                counter: Expr::Const(0),
                limit: Expr::Const(items),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::add(Expr::Const(1000), Expr::Reg(0)),
                        delta: Expr::Const(1),
                        dst: None,
                    },
                    Op::Compute(3),
                ]),
            },
            Op::Barrier,
            // Round 2: PE0 sums the marks serially and stores the total.
            Op::If {
                cond: Cond::new(Expr::PeIndex, CmpOp::Eq, 0),
                then_ops: body(vec![
                    Op::Set {
                        reg: 3,
                        value: Expr::Const(0),
                    },
                    Op::For {
                        reg: 1,
                        from: Expr::Const(0),
                        to: Expr::Const(items),
                        body: body(vec![
                            Op::Load {
                                addr: Expr::add(Expr::Const(1000), Expr::Reg(1)),
                                dst: 2,
                            },
                            Op::Set {
                                reg: 3,
                                value: Expr::add(Expr::Reg(3), Expr::Reg(2)),
                            },
                        ]),
                    },
                    Op::Store {
                        addr: Expr::Const(999),
                        value: Expr::Reg(3),
                    },
                    Op::Fence,
                ]),
                else_ops: body(vec![]),
            },
            Op::Barrier,
            Op::Halt,
        ]),
        vec![],
    )
}

#[test]
fn torture_program_agrees_across_backends_and_policies() {
    let items = 50;
    for (name, builder) in [
        ("ideal", MachineBuilder::new(8).ideal(2)),
        ("network d=1", MachineBuilder::new(8).network(1)),
        ("network d=2", MachineBuilder::new(8).network(2)),
    ] {
        let mut m = builder.build_spmd(&torture(items));
        let out = m.run();
        assert!(out.completed, "{name} did not drain");
        assert_eq!(m.read_shared(999), items, "{name}: wrong mark total");
        assert_eq!(m.read_shared(0), items + 8, "{name}: wrong claim count");
    }
}

#[test]
fn network_and_ideal_agree_on_interleaved_fetch_add_sums() {
    // Heavy interleaving: every PE adds its PE number to a ring of cells.
    let prog = Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(64),
                body: body(vec![Op::FetchAdd {
                    addr: Expr::add(Expr::Const(100), Expr::rem(Expr::Reg(1), 7)),
                    delta: Expr::add(Expr::PeIndex, 1),
                    dst: None,
                }]),
            },
            Op::Halt,
        ]),
        vec![],
    );
    let mut expected: Vec<i64> = vec![0; 7];
    for pe in 0i64..16 {
        for i in 0..64i64 {
            expected[(i % 7) as usize] += pe + 1;
        }
    }
    for builder in [
        MachineBuilder::new(16).ideal(2),
        MachineBuilder::new(16).network(1),
    ] {
        let mut m = builder.build_spmd(&prog);
        assert!(m.run().completed);
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(m.read_shared(100 + i), want, "cell {i}");
        }
    }
}

#[test]
fn translation_modes_do_not_change_results() {
    use ultracomputer::ultra_mem::TranslationMode;
    let prog = torture(30);
    for mode in [TranslationMode::Hashed, TranslationMode::Interleaved] {
        let mut m = MachineBuilder::new(8).translation(mode).build_spmd(&prog);
        assert!(m.run().completed);
        assert_eq!(m.read_shared(999), 30, "{mode:?}");
    }
}

#[test]
fn report_is_self_consistent_end_to_end() {
    let mut m = MachineBuilder::new(16).build_spmd(&torture(64));
    assert!(m.run().completed);
    let r = MachineReport::from_machine(&m);
    // Every injected request was answered.
    assert_eq!(r.net.injected_requests.get(), r.net.delivered_replies.get());
    assert_eq!(r.net.combines.get(), r.net.decombines.get());
    // The merged per-PE counters cover all network traffic.
    assert_eq!(r.pe.shared_refs.get(), r.net.injected_requests.get());
    assert!(r.avg_cm_access_instr() >= 4.0, "below physical floor");
    assert!(r.idle_pct() <= 100.0);
}

#[test]
fn drop_policy_machine_still_completes_by_retrying() {
    use ultracomputer::ultra_net::config::{NetConfig, SwitchPolicy};
    let mut cfg = NetConfig::small(8);
    cfg.policy = SwitchPolicy::DropOnConflict;
    let mut m = MachineBuilder::new(8).net(cfg).build_spmd(&torture(20));
    let out = m.run();
    assert!(out.completed, "drops must be retried to completion");
    assert_eq!(m.read_shared(999), 20);
    assert!(
        m.net_stats().drops.get() > 0,
        "the contended run must actually exercise drops"
    );
}

//! Stress and property tests of the native fetch-and-add algorithms and
//! the interleaved queue simulation.

use proptest::prelude::*;
use std::sync::Arc;
use ultra_algorithms::{FaaBarrier, FaaRwLock, InterleavedQueueSim, SelfSchedule, UltraQueue};

#[test]
fn queue_barrier_rwlock_compose() {
    // A miniature pipeline: stage A produces under a reader section,
    // everyone barriers, stage B consumes and checks.
    // Capacity must exceed total production: consumers only start after
    // the barrier, so producers must never block on a full queue.
    let q = Arc::new(UltraQueue::new(512));
    let barrier = Arc::new(FaaBarrier::new(4));
    let lock = Arc::new(FaaRwLock::new());
    let handles: Vec<_> = (0..4)
        .map(|tid| {
            let q = Arc::clone(&q);
            let barrier = Arc::clone(&barrier);
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                for i in 0..100 {
                    lock.read(|| q.enqueue(tid * 1000 + i));
                }
                barrier.wait();
                let mut got = 0;
                while q.try_dequeue().is_some() {
                    got += 1;
                }
                got
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 400);
}

#[test]
fn self_schedule_under_threads_covers_exactly() {
    let sched = Arc::new(SelfSchedule::new(5_000));
    let claimed = Arc::new(std::sync::Mutex::new(vec![0u8; 5_000]));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let sched = Arc::clone(&sched);
            let claimed = Arc::clone(&claimed);
            std::thread::spawn(move || {
                while let Some(r) = sched.next_chunk(13) {
                    let mut c = claimed.lock().unwrap();
                    for i in r {
                        c[i] += 1;
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(claimed.lock().unwrap().iter().all(|&c| c == 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The appendix queue's conservation and FIFO condition hold for
    /// arbitrary mixes of inserts/deletes, capacities, and interleavings.
    #[test]
    fn interleaved_queue_sim_properties(
        size in 1usize..12,
        inserts in 0i64..30,
        deletes in 0usize..30,
        seed in any::<u64>(),
    ) {
        let mut sim = InterleavedQueueSim::new(size, seed);
        for v in 0..inserts {
            sim.spawn_insert(1000 + v);
        }
        for _ in 0..deletes {
            sim.spawn_delete();
        }
        let events = sim.run(5_000_000);
        sim.check_conservation(&events);
        sim.check_fifo_condition(&events);
    }

    /// The native queue conserves items for arbitrary thread/op mixes.
    #[test]
    fn native_queue_conserves(
        capacity in 2usize..32,
        per_thread in 1usize..40,
    ) {
        let q = Arc::new(UltraQueue::new(capacity));
        let produced: i64 = (2 * per_thread) as i64;
        let producers: Vec<_> = (0..2)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        q.enqueue((t * per_thread + i) as i64);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..per_thread {
                        got.push(q.dequeue());
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len() as i64, produced, "items lost or duplicated");
        prop_assert!(q.try_dequeue().is_none());
    }
}

//! Property tests for the cycle engines (`ultracomputer::engine`).
//!
//! The contract: the parallel engine (any thread count) and the idle
//! fast-forward are pure *speed* knobs — a run is **bit-identical** to
//! the sequential, per-cycle reference regardless of either. Identity is
//! checked through [`MachineReport::parity_string`] (cycles, merged PE
//! statistics, network statistics, fault summary), the full event trace,
//! and final shared memory, across random configurations, fault plans
//! and workloads, plus the named E8/E14 harness configurations.

use ultra_faults::{Fault, FaultPlan};
use ultra_net::config::{NetConfig, SweepMode};
use ultra_sim::rng::{Rng, SplitMix64};
use ultra_sim::{MmId, Value};
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::trace::TraceEvent;
use ultracomputer::{MachineBuilder, MachineReport};

/// Deterministic "forall": seeded cases, failures reported with the case
/// number so they replay exactly.
fn forall(cases: u64, label: &str, mut f: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(0x00E4_614E ^ (case.wrapping_mul(0x9e37_79b9)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{label}` failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Every PE claims `iters` tickets from one hot word and marks each
/// ticket's slot (the serialization-principle workload).
fn ticket_program(iters: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(iters),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: Some(0),
                    },
                    Op::Store {
                        addr: Expr::add(Expr::Const(1000), Expr::Reg(0)),
                        value: Expr::Const(1),
                    },
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

/// Latency-bound load/use loop with a barrier — exercises register
/// locking, fences of idle time for the fast-forward, and barriers.
fn load_barrier_program(iters: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(iters),
                body: body(vec![
                    Op::Load {
                        addr: Expr::add(Expr::mul(Expr::PeIndex, 128), Expr::Reg(1)),
                        dst: 0,
                    },
                    Op::Set {
                        reg: 2,
                        value: Expr::add(Expr::Reg(0), Expr::Reg(2)),
                    },
                ]),
            },
            Op::Barrier,
            Op::FetchAdd {
                addr: Expr::Const(7),
                delta: Expr::Const(1),
                dst: None,
            },
            Op::Halt,
        ]),
        vec![],
    )
}

struct RunResult {
    parity: String,
    trace: Vec<TraceEvent>,
    hot_word: Value,
}

fn run(builder: MachineBuilder, program: &Program, trace: bool) -> RunResult {
    let mut m = builder.build_spmd(program);
    if trace {
        m.enable_trace(1 << 14);
    }
    m.run();
    RunResult {
        parity: MachineReport::from_machine(&m).parity_string(),
        trace: m.trace().events().copied().collect(),
        hot_word: m.read_shared(0),
    }
}

fn assert_engines_agree(make: impl Fn() -> MachineBuilder, program: &Program, label: &str) {
    let seq = run(make().threads(1), program, true);
    for threads in [2usize, 4] {
        let par = run(make().threads(threads), program, true);
        assert_eq!(
            seq.parity, par.parity,
            "{label}: parity digest diverged at {threads} threads"
        );
        assert_eq!(
            seq.trace, par.trace,
            "{label}: trace diverged at {threads} threads"
        );
        assert_eq!(seq.hot_word, par.hot_word, "{label}: memory diverged");
    }
    // Fast-forward off must match too (it defaults to on above).
    let stepped = run(make().threads(1).fast_forward(false), program, true);
    assert_eq!(
        seq.parity, stepped.parity,
        "{label}: fast-forward changed the simulation"
    );
    assert_eq!(
        seq.trace, stepped.trace,
        "{label}: fast-forward trace drift"
    );
    // The dense full-topology sweep must match the default sparse
    // active-set walk (runs above use the sparse default).
    let dense = run(make().threads(1).sweep(SweepMode::Dense), program, true);
    assert_eq!(
        seq.parity, dense.parity,
        "{label}: sweep mode changed the simulation"
    );
    assert_eq!(seq.trace, dense.trace, "{label}: sweep-mode trace drift");
    assert_eq!(
        seq.hot_word, dense.hot_word,
        "{label}: sweep-mode memory drift"
    );
}

#[test]
fn engines_agree_on_random_configs_and_workloads() {
    forall(12, "engine parity across random machines", |rng| {
        let n = [4usize, 8, 16][rng.range_u64(0..3) as usize];
        let copies = 1 + rng.range_u64(0..2) as usize;
        let contexts = 1 + rng.range_u64(0..2) as usize;
        let iters = 2 + rng.range_u64(0..5) as i64;
        let seed = rng.next_u64();
        let program = if rng.range_u64(0..2) == 0 {
            ticket_program(iters)
        } else {
            load_barrier_program(iters)
        };
        let make = || {
            MachineBuilder::new(n)
                .network(copies)
                .multiprogramming(contexts)
                .seed(seed)
        };
        assert_engines_agree(make, &program, "random config");
    });
}

#[test]
fn serving_latency_curve_is_bit_identical_across_engines() {
    // The serving workload leans on everything the other parity programs
    // don't: timed waits ([`Op::WaitUntil`]) parked across long
    // fast-forwardable gaps at light load, and backlogged (already-past)
    // arrival targets at heavy load. The whole latency histogram — not
    // just a few percentiles — must survive every engine unchanged.
    use ultra_workloads::Serving;
    for gap in [150u64, 4] {
        let s = Serving::new(96, gap).seed(13);
        let run = |threads: usize, ff: bool| {
            let mut m = MachineBuilder::new(8)
                .seed(13)
                .threads(threads)
                .fast_forward(ff)
                .build_spmd(&s.program());
            s.install(&mut m);
            assert!(m.run().completed, "gap {gap} must drain");
            (
                MachineReport::from_machine(&m).parity_string(),
                s.latencies(&m),
            )
        };
        let (seq_parity, seq_lat) = run(1, true);
        for threads in [2usize, 4] {
            let (parity, lat) = run(threads, true);
            assert_eq!(
                seq_parity, parity,
                "gap {gap}: parity diverged at {threads} threads"
            );
            assert_eq!(
                seq_lat, lat,
                "gap {gap}: latency histogram diverged at {threads} threads"
            );
        }
        let (stepped_parity, stepped_lat) = run(1, false);
        assert_eq!(
            seq_parity, stepped_parity,
            "gap {gap}: fast-forward changed the simulation"
        );
        assert_eq!(
            seq_lat, stepped_lat,
            "gap {gap}: fast-forward changed the latency histogram"
        );
        // The curve point itself — the artifact the serving bench
        // publishes — is a pure function of the histogram.
        assert_eq!(seq_lat.percentile(100.0), seq_lat.max());
    }
}

#[test]
fn engines_agree_on_random_fault_plans() {
    forall(8, "engine parity under faults", |rng| {
        let seed = rng.next_u64();
        let iters = 2 + rng.range_u64(0..4) as i64;
        let which = rng.range_u64(0..3);
        let make = move || {
            let plan = match which {
                0 => FaultPlan::none().seed(seed).link_loss(0.08),
                1 => FaultPlan::none().dead_copy(0),
                _ => FaultPlan::none()
                    .dead_mm(MmId((seed % 8) as usize))
                    .schedule(40, Fault::KillCopy { copy: 1 }),
            };
            MachineBuilder::new(8)
                .network(2)
                .faults(plan)
                .max_cycles(2_000_000)
        };
        assert_engines_agree(make, &ticket_program(iters), "faulty config");
    });
}

#[test]
fn engines_agree_on_ideal_backend() {
    forall(6, "engine parity on the paracomputer", |rng| {
        let latency = 2 + rng.range_u64(0..60);
        let n = [4usize, 8][rng.range_u64(0..2) as usize];
        let make = move || MachineBuilder::new(n).ideal(latency);
        assert_engines_agree(make, &load_barrier_program(4), "ideal backend");
    });
}

/// The E8 bandwidth-harness geometry run closed-loop: n = 64, one copy,
/// queued combining switches, hot-word tickets.
#[test]
fn engines_agree_on_e8_configuration() {
    let make = || MachineBuilder::new(64).net(NetConfig::small(64)).network(1);
    assert_engines_agree(make, &ticket_program(4), "E8 configuration");
}

/// The persistent pool replaced per-cycle `thread::scope` fan-outs in the
/// engine; its dispatch must be effect-identical to `par_for_each_mut`
/// (same chunking, same exclusive per-element access, same index order of
/// observable results) for arbitrary slice lengths and thread counts.
#[test]
fn pool_dispatch_matches_scoped_fanout() {
    use ultra_sim::{par_for_each_mut, WorkerPool};
    forall(10, "pool vs scoped fan-out", |rng| {
        let len = rng.range_u64(0..40) as usize;
        let threads = 1 + rng.range_u64(0..5) as usize;
        let salt = rng.next_u64();
        let work = move |i: usize, x: &mut u64| {
            let mut h = (*x).wrapping_add(salt);
            for _ in 0..20 {
                h = h.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(i as u64);
            }
            *x = h;
        };
        let mut scoped: Vec<u64> = (0..len as u64).map(|i| i * 7 + 3).collect();
        par_for_each_mut(&mut scoped, threads, work);
        let pool = WorkerPool::new(threads);
        let mut pooled: Vec<u64> = (0..len as u64).map(|i| i * 7 + 3).collect();
        // Reuse across dispatches is the pool's whole point — run twice
        // through the same pool and compare the second pass too.
        pool.run(&mut pooled, work);
        assert_eq!(pooled, scoped, "len={len} threads={threads}");
        par_for_each_mut(&mut scoped, threads, work);
        pool.run(&mut pooled, work);
        assert_eq!(
            pooled, scoped,
            "second dispatch, len={len} threads={threads}"
        );
    });
}

/// Cycle-windowed telemetry is defined in *simulated* time, so the
/// recorded series and the end-of-run heatmap must be bit-identical
/// across the sequential engine, the parallel engine at any thread
/// count, and fast-forward on/off — and enabling it must not change the
/// parity digest at all.
#[test]
fn telemetry_is_bit_identical_across_engines_and_inert() {
    use ultracomputer::ultra_obs::{HeatmapSnapshot, Sample};

    struct Observed {
        parity: String,
        samples: Vec<Sample>,
        heatmap: Option<HeatmapSnapshot>,
    }
    fn run_observed(builder: MachineBuilder, program: &Program, window: u64) -> Observed {
        let mut m = builder.build_spmd(program);
        m.enable_telemetry(window, 1 << 12);
        m.run();
        Observed {
            parity: MachineReport::from_machine(&m).parity_string(),
            samples: m.telemetry().samples().copied().collect(),
            heatmap: m.heatmap(),
        }
    }

    forall(8, "telemetry parity across engines", |rng| {
        let n = [4usize, 8, 16][rng.range_u64(0..3) as usize];
        let window = [1u64, 3, 16, 64][rng.range_u64(0..4) as usize];
        let iters = 2 + rng.range_u64(0..4) as i64;
        let seed = rng.next_u64();
        let program = if rng.range_u64(0..2) == 0 {
            ticket_program(iters)
        } else {
            load_barrier_program(iters)
        };
        let make = || MachineBuilder::new(n).seed(seed);
        let seq = run_observed(make().threads(1), &program, window);
        assert!(!seq.samples.is_empty(), "telemetry recorded nothing");
        for threads in [2usize, 4] {
            let par = run_observed(make().threads(threads), &program, window);
            assert_eq!(
                seq.samples, par.samples,
                "telemetry series diverged at {threads} threads (window {window})"
            );
            assert_eq!(
                seq.heatmap, par.heatmap,
                "heatmap diverged at {threads} threads"
            );
            assert_eq!(
                seq.parity, par.parity,
                "parity diverged at {threads} threads"
            );
        }
        let stepped = run_observed(make().threads(1).fast_forward(false), &program, window);
        assert_eq!(
            seq.samples, stepped.samples,
            "fast-forward changed the telemetry series (window {window})"
        );
        assert_eq!(
            seq.heatmap, stepped.heatmap,
            "fast-forward changed the heatmap"
        );
        // Inert: the same machine without telemetry digests identically.
        let bare = run(make().threads(1), &program, false);
        assert_eq!(
            seq.parity, bare.parity,
            "enabling telemetry perturbed the simulation"
        );
    });
}

/// A 16384-PE fabric with 16 active PEs hammering the hot word under
/// lossy links — the scale the word-packed engine paths exist for. The
/// inactive PEs halt on cycle 0, so from cycle 1 on every phase (PE
/// dispatch, outbound flush, bank cycling, fast-forward scans) runs off
/// the sparse masks, and the loss-triggered PNI retries exercise the
/// retry-enabled variants of those scans. One sequential and one 4-thread
/// run must digest identically, and so must a fully stepped run with the
/// fast-forward off (the masked idle paths do the same bookkeeping the
/// per-cycle walk did).
#[test]
fn engines_agree_at_sixteen_k_pes_under_faults() {
    const N: usize = 16384;
    const ACTIVE: usize = 16;
    let idle = Program::new(body(vec![Op::Halt]), vec![]);
    let programs: Vec<Program> = (0..N)
        .map(|pe| {
            if pe < ACTIVE {
                ticket_program(2)
            } else {
                idle.clone()
            }
        })
        .collect();
    let run_wide = |threads: usize, fast_forward: bool| {
        let mut m = MachineBuilder::new(N)
            .network(1)
            .threads(threads)
            .fast_forward(fast_forward)
            .faults(FaultPlan::none().seed(23).link_loss(0.05))
            .max_cycles(2_000_000)
            .build(programs.clone());
        m.enable_trace(1 << 14);
        assert!(m.run().completed, "16K-PE run must complete");
        RunResult {
            parity: MachineReport::from_machine(&m).parity_string(),
            trace: m.trace().events().copied().collect(),
            hot_word: m.read_shared(0),
        }
    };
    let seq = run_wide(1, true);
    assert_eq!(seq.hot_word, (ACTIVE * 2) as Value, "every ticket claimed");
    let par = run_wide(4, true);
    assert_eq!(
        seq.parity, par.parity,
        "16K PEs: parity diverged at 4 threads"
    );
    assert_eq!(seq.trace, par.trace, "16K PEs: trace diverged at 4 threads");
    assert_eq!(seq.hot_word, par.hot_word, "16K PEs: memory diverged");
    let stepped = run_wide(1, false);
    assert_eq!(
        seq.parity, stepped.parity,
        "16K PEs: fast-forward changed the simulation"
    );
    assert_eq!(
        seq.trace, stepped.trace,
        "16K PEs: fast-forward trace drift"
    );
}

/// The E14c degradation configuration: 16 PEs, d = 2 with copy 0
/// fail-stopped at boot — `FaultSummary` (failovers, refusals) must be
/// byte-identical between engines, not just final memory.
#[test]
fn engines_agree_on_e14_configuration() {
    let healthy = || MachineBuilder::new(16).network(2);
    assert_engines_agree(healthy, &ticket_program(20), "E14 healthy");
    let degraded = || {
        MachineBuilder::new(16)
            .network(2)
            .faults(FaultPlan::none().dead_copy(0))
    };
    assert_engines_agree(degraded, &ticket_program(20), "E14 dead copy");
}

//! Property tests of the serialization principle (§2.1–§2.2): the effect
//! of simultaneous operations equals *some* serial order — on the ideal
//! paracomputer by construction, and on the full network machine by
//! theorem (combining), which these tests check empirically.

use proptest::prelude::*;
use ultra_net::message::PhiOp;
use ultracomputer::machine::MachineBuilder;
use ultracomputer::paracomputer::{MemOp, Paracomputer};
use ultracomputer::program::{body, Expr, Op, Program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concurrent F&A batches return the prefix sums of some permutation
    /// and leave the total in memory.
    #[test]
    fn fetch_add_batch_is_a_serialization(
        increments in prop::collection::vec(-20i64..20, 1..40),
        seed in any::<u64>(),
        initial in -100i64..100,
    ) {
        let mut pc = Paracomputer::new(seed);
        pc.store(0, initial);
        let ops: Vec<MemOp> =
            increments.iter().map(|&e| MemOp::fetch_add(0, e)).collect();
        let results = pc.apply_batch(&ops);
        // Memory ends at initial + sum regardless of order.
        let total: i64 = increments.iter().sum();
        prop_assert_eq!(pc.load(0), initial + total);
        // Each result must be reachable as a prefix sum of some
        // permutation: verify by reconstructing the order. Sort results
        // with their increments by result value: in the serialization,
        // the j-th executed op observed initial + (sum of earlier incs).
        // Serialization-chain check: in any serial order the j-th op
        // observes the (j-1)-th op's result plus its increment, so the
        // multiset { result_i + increment_i } must equal the results
        // multiset with one `initial` removed (the first op's view) and
        // `initial + total` added (the chain's end).
        let mut lhs: Vec<i64> = results
            .iter()
            .zip(&increments)
            .map(|(r, e)| r + e)
            .collect();
        let mut rhs: Vec<i64> = results.clone();
        let pos = rhs.iter().position(|&r| r == initial);
        prop_assert!(pos.is_some(), "someone must observe the initial value");
        rhs.remove(pos.unwrap());
        rhs.push(initial + total);
        lhs.sort_unstable();
        rhs.sort_unstable();
        prop_assert_eq!(lhs, rhs, "results are not a serialization chain");
    }

    /// For commutative phi, the final memory value is independent of the
    /// serialization order chosen (§2.4).
    #[test]
    fn commutative_phi_final_state_order_independent(
        operands in prop::collection::vec(-50i64..50, 1..20),
        op_idx in 0usize..6,
        initial in -50i64..50,
    ) {
        let op = [PhiOp::Add, PhiOp::And, PhiOp::Or, PhiOp::Xor, PhiOp::Max, PhiOp::Min][op_idx];
        let mut finals = std::collections::HashSet::new();
        for seed in 0..8 {
            let mut pc = Paracomputer::new(seed);
            pc.store(0, initial);
            let ops: Vec<MemOp> = operands
                .iter()
                .map(|&e| MemOp::FetchPhi { op, addr: 0, operand: e })
                .collect();
            let _ = pc.apply_batch(&ops);
            finals.insert(pc.load(0));
        }
        prop_assert_eq!(finals.len(), 1);
    }

    /// Swap chains: concurrent swaps circulate values — every originally
    /// present value (initial + all operands) survives, exactly once,
    /// across the results and the final cell.
    #[test]
    fn concurrent_swaps_conserve_values(
        operands in prop::collection::vec(0i64..1000, 1..20),
        seed in any::<u64>(),
    ) {
        let mut pc = Paracomputer::new(seed);
        pc.store(0, -1);
        let ops: Vec<MemOp> = operands
            .iter()
            .map(|&v| MemOp::FetchPhi { op: PhiOp::Second, addr: 0, operand: v })
            .collect();
        let results = pc.apply_batch(&ops);
        let mut outcome: Vec<i64> = results;
        outcome.push(pc.load(0));
        outcome.sort_unstable();
        let mut expected: Vec<i64> = operands.clone();
        expected.push(-1);
        expected.sort_unstable();
        prop_assert_eq!(outcome, expected);
    }
}

/// The same prefix-sum property, end to end through the combining network
/// machine: every PE's fetch-and-add ticket is distinct and dense.
#[test]
fn network_machine_tickets_are_dense_and_distinct() {
    for n in [8usize, 16, 64] {
        let prog = Program::new(
            body(vec![
                Op::FetchAdd {
                    addr: Expr::Const(0),
                    delta: Expr::Const(1),
                    dst: Some(0),
                },
                Op::Store {
                    addr: Expr::add(Expr::Const(10_000), Expr::Reg(0)),
                    value: Expr::add(Expr::PeIndex, 1),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut m = MachineBuilder::new(n).build_spmd(&prog);
        assert!(m.run().completed);
        assert_eq!(m.read_shared(0), n as i64);
        let mut owners = Vec::new();
        for t in 0..n {
            let owner = m.read_shared(10_000 + t);
            assert!(owner >= 1, "ticket {t} unclaimed");
            owners.push(owner);
        }
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners.len(), n, "each PE claimed exactly one ticket");
    }
}

/// §2.1's simultaneous load/store example on the real machine: the final
/// value must be one of the stored values.
#[test]
fn simultaneous_stores_leave_one_of_the_values() {
    let prog = Program::new(
        body(vec![
            Op::Store {
                addr: Expr::Const(7),
                value: Expr::add(Expr::PeIndex, 100),
            },
            Op::Halt,
        ]),
        vec![],
    );
    let mut m = MachineBuilder::new(16).build_spmd(&prog);
    assert!(m.run().completed);
    let v = m.read_shared(7);
    assert!((100..116).contains(&v), "final value {v} was never stored");
}

//! End-to-end ablation of request combining (the paper's central
//! hardware claim, §3.1.2–3.1.3).

use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::ultra_net::config::{NetConfig, SwitchPolicy};

fn hot_counter(rounds: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(rounds),
                body: body(vec![Op::FetchAdd {
                    addr: Expr::Const(0),
                    delta: Expr::Const(1),
                    dst: Some(0),
                }]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

fn run(n: usize, policy: SwitchPolicy, rounds: i64) -> (u64, i64, u64) {
    let mut cfg = NetConfig::small(n);
    cfg.policy = policy;
    let mut m = MachineBuilder::new(n)
        .net(cfg)
        .build_spmd(&hot_counter(rounds));
    let out = m.run();
    assert!(out.completed);
    (out.cycles, m.read_shared(0), m.net_stats().combines.get())
}

#[test]
fn combining_accelerates_hot_spot_and_preserves_semantics() {
    let (n, rounds) = (32, 20);
    let (t_comb, total_comb, combines) = run(n, SwitchPolicy::QueuedCombining, rounds);
    let (t_serial, total_serial, no_combines) = run(n, SwitchPolicy::QueuedNoCombine, rounds);
    // Identical results either way — the serialization principle.
    assert_eq!(total_comb, n as i64 * rounds);
    assert_eq!(total_serial, n as i64 * rounds);
    assert!(combines > 0);
    assert_eq!(no_combines, 0);
    // And a real speedup: the serialized run pays ~1 MM service per
    // update; the combined run folds whole waves.
    assert!(
        t_serial as f64 > 2.0 * t_comb as f64,
        "combining {t_comb} cycles vs serialized {t_serial} cycles"
    );
}

#[test]
fn hot_spot_penalty_grows_with_machine_size_only_without_combining() {
    let rounds = 10;
    let (t_comb_16, ..) = run(16, SwitchPolicy::QueuedCombining, rounds);
    let (t_comb_64, ..) = run(64, SwitchPolicy::QueuedCombining, rounds);
    let (t_ser_16, ..) = run(16, SwitchPolicy::QueuedNoCombine, rounds);
    let (t_ser_64, ..) = run(64, SwitchPolicy::QueuedNoCombine, rounds);
    let comb_growth = t_comb_64 as f64 / t_comb_16 as f64;
    let ser_growth = t_ser_64 as f64 / t_ser_16 as f64;
    assert!(
        ser_growth > 1.8 * comb_growth,
        "serialized growth {ser_growth:.2} must far exceed combined {comb_growth:.2}"
    );
}

#[test]
fn uniform_traffic_unaffected_by_combining_switch() {
    // With no shared hot words, the two policies should perform the same —
    // combining costs nothing when it never triggers.
    let prog = Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(40),
                body: body(vec![Op::Store {
                    // Distinct address per (PE, iteration).
                    addr: Expr::add(
                        Expr::Const(5000),
                        Expr::add(Expr::mul(Expr::PeIndex, 64), Expr::Reg(1)),
                    ),
                    value: Expr::Reg(1),
                }]),
            },
            Op::Halt,
        ]),
        vec![],
    );
    let mut times = Vec::new();
    for policy in [SwitchPolicy::QueuedCombining, SwitchPolicy::QueuedNoCombine] {
        let mut cfg = NetConfig::small(16);
        cfg.policy = policy;
        let mut m = MachineBuilder::new(16).net(cfg).build_spmd(&prog);
        let out = m.run();
        assert!(out.completed);
        assert_eq!(m.net_stats().combines.get(), 0, "no combinable traffic");
        times.push(out.cycles);
    }
    assert_eq!(times[0], times[1]);
}

#[test]
fn barrier_arrivals_combine_in_the_network() {
    // P simultaneous barrier fetch-and-adds must combine heavily.
    let prog = Program::new(body(vec![Op::Barrier, Op::Barrier, Op::Halt]), vec![]);
    let mut m = MachineBuilder::new(32).build_spmd(&prog);
    assert!(m.run().completed);
    let combines = m.net_stats().combines.get();
    assert!(
        combines >= 32,
        "two barrier waves over 32 PEs combined only {combines} times"
    );
}

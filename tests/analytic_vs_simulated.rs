//! Cross-validation of the §4.1 analytic queueing model against the
//! event-level simulator — the relationship the paper itself leaned on
//! ("Our preliminary analyses and partial simulations have yielded
//! encouraging results", §3.1.4).
//!
//! The analytic model assumes infinite queues, independent arrivals and
//! no combining; the simulator is run under matching conditions. Exact
//! agreement is not expected (the formula idealizes an open network; the
//! fabric applies backpressure at the sources), but the simulated mean
//! forward transit must track the analytic curve within a modest band
//! below saturation, and both must agree on the zero-load floor.

use ultra_analysis::queueing::NetworkModel;
use ultra_bench::{run_open_loop, OpenLoopConfig};
use ultra_net::config::NetConfig;
use ultra_pe::traffic::UniformTraffic;

fn simulate(n: usize, k: usize, p: f64) -> f64 {
    let cfg = OpenLoopConfig {
        net: NetConfig {
            pes: n,
            k,
            request_queue_packets: usize::MAX,
            reply_queue_packets: usize::MAX,
            wait_entries: 0, // no combining: the model's assumption 1
            policy: ultra_net::config::SwitchPolicy::QueuedNoCombine,
            data_packets: 3,
            ctl_packets: 1,
        },
        copies: 1,
        mm_service: 2,
        warmup: 400,
        measure: 4_000,
    };
    // Stores only: every forward message is 3 packets = the model's m.
    let mut traffic = UniformTraffic::new(n, p, 0.0, 1234);
    run_open_loop(cfg, &mut traffic).forward_transit_mean
}

#[test]
fn simulated_transit_tracks_the_analytic_curve() {
    for &(n, k) in &[(64usize, 2usize), (256, 4)] {
        let model = NetworkModel::new(n, k, 3, 1);
        for &fraction in &[0.1, 0.3, 0.5, 0.6] {
            let p = model.capacity() * fraction;
            let analytic = model.transit_time(p).expect("below saturation");
            let simulated = simulate(n, k, p);
            let ratio = simulated / analytic;
            assert!(
                (0.8..1.45).contains(&ratio),
                "n={n} k={k} p={p:.3}: simulated {simulated:.2} vs analytic \
                 {analytic:.2} (ratio {ratio:.2})"
            );
        }
    }
}

#[test]
fn zero_load_floor_agrees_exactly() {
    // A single message in an otherwise empty fabric must take exactly the
    // analytic minimum D + m - 1.
    for &(n, k) in &[(64usize, 2usize), (256, 4), (64, 8)] {
        let model = NetworkModel::new(n, k, 3, 1);
        let simulated = simulate(n, k, 0.002); // nearly empty
        let floor = model.min_transit();
        assert!(
            simulated >= floor - 1e-9,
            "n={n} k={k}: sim {simulated:.2} below the physical floor {floor}"
        );
        // p = 0.002 is "nearly" empty, not empty: with hundreds of PEs a
        // residual collision every few messages lifts the mean a cycle or
        // so above the floor.
        assert!(
            simulated <= floor * 1.35,
            "n={n} k={k}: sim {simulated:.2} far above the empty-network floor {floor}"
        );
    }
}

#[test]
fn saturation_throttles_the_simulator_where_the_model_diverges() {
    // Offered load beyond capacity: the analytic transit is undefined and
    // the simulator's sources must be backpressure-throttled below the
    // offered rate.
    let n = 64;
    let model = NetworkModel::new(n, 2, 3, 1);
    let over = model.capacity() * 1.5;
    assert!(model.transit_time(over).is_none());
    let cfg = OpenLoopConfig {
        net: NetConfig {
            policy: ultra_net::config::SwitchPolicy::QueuedNoCombine,
            wait_entries: 0,
            ..NetConfig::small(n)
        },
        copies: 1,
        mm_service: 2,
        warmup: 400,
        measure: 4_000,
    };
    let mut traffic = UniformTraffic::new(n, over, 0.0, 5);
    let r = run_open_loop(cfg, &mut traffic);
    assert!(
        r.throughput < model.capacity() * 1.05,
        "throughput {:.3} cannot exceed capacity {:.3}",
        r.throughput,
        model.capacity()
    );
    assert!(r.stalled_attempts > 0, "overload must stall the generators");
}

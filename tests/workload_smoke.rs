//! Cross-crate workload integration: every paper workload runs to
//! completion on both backends and produces sane reports.

use ultra_workloads::{Fluid, Multigrid, Particle, Tred2, Weather};
use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::Program;
use ultracomputer::report::MachineReport;

fn check(name: &str, program: &Program, pes: usize) {
    for (backend, builder) in [
        ("ideal", MachineBuilder::new(pes).ideal(2)),
        ("network", MachineBuilder::new(pes).network(1)),
    ] {
        let mut m = builder.build_spmd(program);
        let out = m.run();
        assert!(out.completed, "{name} on {backend} did not drain");
        let r = MachineReport::from_machine(&m);
        assert!(
            r.pe.instructions.get() > 100,
            "{name} on {backend}: trivial instruction count"
        );
        assert!(
            r.shared_refs_per_instr() > 0.0 && r.shared_refs_per_instr() < 0.5,
            "{name} on {backend}: implausible shared mix {}",
            r.shared_refs_per_instr()
        );
        assert!(
            r.idle_pct() < 95.0,
            "{name} on {backend}: pathological idle"
        );
    }
}

#[test]
fn tred2_smoke() {
    check("tred2", &Tred2::new(14).program(), 8);
}

#[test]
fn weather_smoke() {
    check("weather", &Weather::new(16, 2).program(), 8);
}

#[test]
fn multigrid_smoke() {
    check("multigrid", &Multigrid::new(16, 1).program(), 8);
}

#[test]
fn particle_smoke() {
    check("particle", &Particle::new(24, 4).program(), 8);
}

#[test]
fn fluid_smoke() {
    check("fluid", &Fluid::new(12, 16, 2).program(), 8);
}

#[test]
fn tred2_under_multiprogramming_is_exact() {
    // §3.5: contexts act as extra (slower) virtual PEs; the workload's
    // claim counters must still come out exact.
    let n = 12;
    let prog = Tred2::new(n).program();
    let mut m = MachineBuilder::new(4).multiprogramming(2).build_spmd(&prog);
    assert!(m.run().completed, "multiprogrammed TRED2 must drain");
    let virtual_pes = 8;
    for step in 0..(n - 2) {
        let msize = n - 1 - step;
        let c2 = m.read_shared(ultra_workloads::tred2::COUNTER_BASE + step * 2 + 1) as usize;
        assert_eq!(
            c2,
            (msize * msize).div_ceil(6) + virtual_pes,
            "step {step}: every virtual PE participates in self-scheduling"
        );
    }
}

#[test]
fn network_backend_is_slower_but_agrees() {
    // The same TRED2 instance takes longer through the real network than
    // on the paracomputer, and both fully consume the work counters.
    let prog = Tred2::new(12).program();
    let mut ideal = MachineBuilder::new(4).ideal(2).build_spmd(&prog);
    let mut net = MachineBuilder::new(4).network(1).build_spmd(&prog);
    assert!(ideal.run().completed);
    assert!(net.run().completed);
    assert!(
        net.now() > ideal.now(),
        "network {} cycles must exceed ideal {}",
        net.now(),
        ideal.now()
    );
    for step in 0..10 {
        let a = ideal.read_shared(ultra_workloads::tred2::COUNTER_BASE + step * 2);
        let b = net.read_shared(ultra_workloads::tred2::COUNTER_BASE + step * 2);
        assert_eq!(a, b, "claim counters agree at step {step}");
    }
}

#[test]
fn efficiency_pipeline_runs_end_to_end() {
    use ultra_workloads::efficiency::{measure_tred2, EfficiencyModel};
    let ms = vec![
        measure_tred2(4, 12, 3),
        measure_tred2(4, 20, 3),
        measure_tred2(8, 16, 3),
        measure_tred2(8, 24, 3),
    ];
    let model = EfficiencyModel::fit(&ms);
    let e = model.efficiency(16, 64);
    assert!((0.0..=1.05).contains(&e), "E(16,64) = {e}");
    assert!(model.efficiency_no_wait(16, 64) >= e);
}

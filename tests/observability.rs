//! Property tests for the observability layer (`ultra-obs` threaded
//! through the machine and the open-loop harness).
//!
//! The recorder stores per-window *deltas* of cumulative counters, so by
//! construction the sum over all windows must equal the end-of-run
//! totals — here that identity is checked against the machine's own
//! `NetStats` across random configurations, along with the structural
//! validity of the Perfetto `trace_event` export.

use ultra_faults::FaultPlan;
use ultra_pe::traffic::HotspotTraffic;
use ultra_sim::rng::{Rng, SplitMix64};
use ultra_sim::{MemAddr, MmId};
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::{chrome_trace, MachineBuilder, MachineReport};

use ultra_bench::{run_open_loop_faulty, run_open_loop_observed, OpenLoopConfig};

/// Deterministic "forall": seeded cases, failures reported with the case
/// number so they replay exactly.
fn forall(cases: u64, label: &str, mut f: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(0x0B5E_4B17 ^ (case.wrapping_mul(0x9e37_79b9)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{label}` failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

fn ticket_program(iters: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(iters),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: Some(0),
                    },
                    Op::Store {
                        addr: Expr::add(Expr::Const(1000), Expr::Reg(0)),
                        value: Expr::Const(1),
                    },
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

/// Summed per-window deltas must equal the machine's cumulative
/// `NetStats` totals — for any window length, PE count, copy count, and
/// workload size, as long as the ring never dropped a sample.
#[test]
fn window_sums_equal_net_stats_totals() {
    forall(10, "window sums == NetStats totals", |rng| {
        let n = [4usize, 8, 16, 32][rng.range_u64(0..4) as usize];
        let copies = 1 + rng.range_u64(0..2) as usize;
        let window = 1 + rng.range_u64(0..300);
        let iters = 2 + rng.range_u64(0..6) as i64;
        let mut m = MachineBuilder::new(n)
            .network(copies)
            .seed(rng.next_u64())
            .build_spmd(&ticket_program(iters));
        m.enable_telemetry(window, 1 << 14);
        assert!(m.run().completed);
        assert_eq!(m.telemetry().dropped(), 0, "ring must hold the whole run");
        let totals = m.telemetry().totals();
        let net = MachineReport::from_machine(&m).net;
        assert_eq!(totals.injected_requests, net.injected_requests.get());
        assert_eq!(totals.delivered_requests, net.delivered_requests.get());
        assert_eq!(totals.injected_replies, net.injected_replies.get());
        assert_eq!(totals.delivered_replies, net.delivered_replies.get());
        assert_eq!(totals.combines, net.combines.get());
        assert_eq!(totals.decombines, net.decombines.get());
        assert_eq!(totals.inject_stalls, net.inject_stalls.get());
        assert_eq!(totals.fault_dropped, net.fault_dropped.get());
        assert_eq!(totals.fault_refusals, net.fault_refusals.get());
        // Windows tile simulated time: consecutive, no gaps or overlaps.
        let samples: Vec<_> = m.telemetry().samples().copied().collect();
        for pair in samples.windows(2) {
            assert_eq!(pair[0].start + pair[0].len, pair[1].start);
        }
        let last = samples.last().expect("at least the flush window");
        assert_eq!(last.start + last.len, m.now());
    });
}

/// The heatmap's per-switch combine counts must re-aggregate to the same
/// total the network statistics report.
#[test]
fn heatmap_combines_reaggregate_to_totals() {
    forall(6, "heatmap == combine totals", |rng| {
        let n = [8usize, 16, 32][rng.range_u64(0..3) as usize];
        let copies = 1 + rng.range_u64(0..2) as usize;
        let mut m = MachineBuilder::new(n)
            .network(copies)
            .seed(rng.next_u64())
            .build_spmd(&ticket_program(4));
        m.enable_telemetry(64, 1 << 12);
        assert!(m.run().completed);
        let heatmap = m.heatmap().expect("network backend has a heatmap");
        let from_cells: u64 = heatmap.combines().iter().sum();
        let net = MachineReport::from_machine(&m).net;
        assert_eq!(from_cells, net.combines.get());
    });
}

/// Minimal structural validation of a `trace_event` JSON document
/// without a JSON parser: an array of one-line objects, each carrying
/// the `name`/`ph`/`ts`/`pid`/`tid` fields Perfetto requires.
fn assert_valid_trace_event_json(text: &str) {
    let trimmed = text.trim();
    assert!(trimmed.starts_with('['), "must be a JSON array");
    assert!(trimmed.ends_with(']'), "array must close");
    let inner = &trimmed[1..trimmed.len() - 1];
    let mut events = 0usize;
    for line in inner.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let obj = line.strip_suffix(',').unwrap_or(line);
        assert!(
            obj.starts_with('{') && obj.ends_with('}'),
            "event must be a one-line object: {obj}"
        );
        for field in ["\"name\":", "\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
            assert!(obj.contains(field), "event missing {field}: {obj}");
        }
        events += 1;
    }
    assert!(events > 0, "trace must contain events");
}

#[test]
fn machine_chrome_trace_is_structurally_valid() {
    let mut m = MachineBuilder::new(16).build_spmd(&ticket_program(6));
    m.enable_trace(1 << 12);
    m.enable_telemetry(32, 1 << 10);
    m.enable_phase_spans(1 << 12);
    assert!(m.run().completed);
    let text = chrome_trace(&m);
    assert_valid_trace_event_json(&text);
    assert!(text.contains("\"ph\": \"X\""), "round-trip spans present");
    assert!(text.contains("\"ph\": \"C\""), "counter tracks present");
    assert!(text.contains("\"ph\": \"M\""), "track metadata present");
}

#[test]
fn series_chrome_trace_is_structurally_valid() {
    let cfg = OpenLoopConfig::small(16);
    let hot = MemAddr::new(MmId(0), 0);
    let mut traffic = HotspotTraffic::new(16, 0.1, 0.3, hot, 7);
    let (_, obs) = run_open_loop_observed(cfg, &FaultPlan::none(), &mut traffic, 128, 1024);
    assert!(obs.series.len() > 1, "run spans several windows");
    let text = ultra_bench::json::series_chrome_trace("hotspot", &obs.series);
    assert_valid_trace_event_json(&text);
}

/// Observation must not perturb the open-loop run: the observed runner's
/// report matches the plain runner's, and its window sums re-aggregate
/// to the fabric totals the report exposes.
#[test]
fn observed_open_loop_matches_plain_runner() {
    let run_traffic = || HotspotTraffic::new(16, 0.1, 0.3, MemAddr::new(MmId(0), 0), 7);
    let cfg = OpenLoopConfig::small(16);
    let plain = run_open_loop_faulty(cfg, &FaultPlan::none(), &mut run_traffic());
    let (observed, obs) =
        run_open_loop_observed(cfg, &FaultPlan::none(), &mut run_traffic(), 64, 4096);
    assert_eq!(plain.injected, observed.injected);
    assert_eq!(plain.completed, observed.completed);
    assert_eq!(plain.combines, observed.combines);
    assert_eq!(plain.stalled_attempts, observed.stalled_attempts);
    assert_eq!(plain.queue_high_water, observed.queue_high_water);
    assert_eq!(obs.series.dropped(), 0);
    let totals = obs.series.totals();
    assert_eq!(totals.combines, observed.combines);
    let heat_combines: u64 = obs.heatmap.combines().iter().sum();
    assert_eq!(heat_combines, observed.combines);
}

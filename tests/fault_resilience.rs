//! Property tests for the fault-injection subsystem (`ultra-faults`).
//!
//! The two contracts the subsystem must keep:
//!
//! * **Zero-cost when idle** — a run under `FaultPlan::none()` is
//!   bit-identical (same trace, same stats, same final memory, same cycle
//!   count) to a run that never mentions faults at all.
//! * **Exactly-once under recovery** — with lossy links, dead modules and
//!   dead copies, the PNI retry protocol plus the MM dedup cache keep
//!   every fetch-and-add's effect single-shot, so the serialization
//!   principle (dense, distinct tickets; exact totals) still holds.

use ultra_faults::{Fault, FaultPlan, NetShape, RetryPolicy};
use ultra_sim::rng::{Rng, SplitMix64};
use ultra_sim::{MmId, Value};
use ultracomputer::machine::Machine;
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::trace::TraceEvent;
use ultracomputer::MachineBuilder;

/// Deterministic "forall": seeded cases, failures reported with the case
/// number so they replay exactly.
fn forall(cases: u64, label: &str, mut f: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(0xFA17_7E57 ^ (case.wrapping_mul(0x9e37_79b9)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{label}` failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Every PE claims `iters` tickets from word 0 and marks slot
/// `1000 + ticket`.
fn ticket_program(iters: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(iters),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: Some(0),
                    },
                    Op::Store {
                        addr: Expr::add(Expr::Const(1000), Expr::Reg(0)),
                        value: Expr::Const(1),
                    },
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

fn assert_tickets_exact(m: &mut Machine, total: i64, what: &str) {
    assert_eq!(m.read_shared(0), total as Value, "{what}: final count");
    for slot in 0..total as usize {
        assert_eq!(m.read_shared(1000 + slot), 1, "{what}: ticket {slot}");
    }
}

/// A small random mixed workload: hot-word fetch-and-adds, per-PE
/// stores, and a barrier between phases.
fn random_program(rng: &mut SplitMix64) -> Program {
    let iters = 1 + rng.below(6) as i64;
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(iters),
                body: body(vec![Op::FetchAdd {
                    addr: Expr::Const(3),
                    delta: Expr::Const(1),
                    dst: None,
                }]),
            },
            Op::Barrier,
            Op::Store {
                addr: Expr::add(Expr::Const(64), Expr::PeIndex),
                value: Expr::add(Expr::PeIndex, 1),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

#[test]
fn no_faults_plan_is_bit_identical_to_a_faultless_build() {
    forall(12, "no_faults_plan_is_bit_identical", |rng| {
        let n = [4usize, 8, 16][rng.below(3)];
        let seed = rng.next_u64();
        let program = random_program(rng);
        let run = |plan: Option<FaultPlan>| {
            let mut b = MachineBuilder::new(n).seed(seed);
            if let Some(p) = plan {
                b = b.faults(p);
            }
            let mut m = b.build_spmd(&program);
            m.enable_trace(1 << 14);
            let out = m.run();
            assert!(out.completed);
            m
        };
        let plain = run(None);
        let idle = run(Some(FaultPlan::none()));
        assert_eq!(plain.now(), idle.now(), "cycle-for-cycle identical");
        let a: Vec<TraceEvent> = plain.trace().events().copied().collect();
        let b: Vec<TraceEvent> = idle.trace().events().copied().collect();
        assert_eq!(a, b, "identical traces");
        let (sa, sb) = (plain.net_stats(), idle.net_stats());
        for (x, y) in [
            (&sa.injected_requests, &sb.injected_requests),
            (&sa.delivered_replies, &sb.delivered_replies),
            (&sa.combines, &sb.combines),
            (&sa.decombines, &sb.decombines),
            (&sa.inject_stalls, &sb.inject_stalls),
        ] {
            assert_eq!(x.get(), y.get(), "identical network stats");
        }
        assert!(!idle.fault_summary().any(), "idle plan fires nothing");
        for v in 0..n {
            assert_eq!(plain.read_shared(64 + v), idle.read_shared(64 + v));
        }
        assert_eq!(plain.read_shared(3), idle.read_shared(3));
    });
}

#[test]
fn faulty_runs_are_deterministic_in_the_plan_seed() {
    forall(8, "faulty_runs_are_deterministic", |rng| {
        let seed = rng.next_u64();
        let loss = 0.02 + rng.f64() * 0.08;
        let plan = FaultPlan::none()
            .seed(seed)
            .link_loss(loss)
            .schedule(40 + rng.below(100) as u64, Fault::KillCopy { copy: 1 });
        let iters = 3 + rng.below(6) as i64;
        let run = || {
            let mut m = MachineBuilder::new(8)
                .network(2)
                .faults(plan.clone())
                .max_cycles(2_000_000)
                .build_spmd(&ticket_program(iters));
            m.enable_trace(1 << 14);
            assert!(m.run().completed, "recovery must drain the run");
            m
        };
        let (one, two) = (run(), run());
        assert_eq!(one.now(), two.now(), "same cycle count");
        assert_eq!(one.fault_summary(), two.fault_summary(), "same counters");
        let a: Vec<TraceEvent> = one.trace().events().copied().collect();
        let b: Vec<TraceEvent> = two.trace().events().copied().collect();
        assert_eq!(a, b, "one seed, one trace");
    });
}

#[test]
fn fetch_add_is_exactly_once_under_lossy_links_and_retry() {
    forall(16, "exactly_once_under_loss", |rng| {
        let n = 8;
        let iters = 4 + rng.below(8) as i64;
        let loss = 0.02 + rng.f64() * 0.13;
        let plan = FaultPlan::none().seed(rng.next_u64()).link_loss(loss);
        let mut m = MachineBuilder::new(n)
            .faults(plan)
            .max_cycles(4_000_000)
            .build_spmd(&ticket_program(iters));
        assert!(m.run().completed, "retries must recover every loss");
        let f = m.fault_summary();
        assert!(
            f.retries >= f.dropped,
            "each lost request needs at least one retry"
        );
        assert_tickets_exact(&mut m, n as i64 * iters, "lossy links");
    });
}

#[test]
fn fetch_add_is_exactly_once_under_combined_static_faults() {
    // Dead MMs + dead ports + a dead copy + loss, all at once: the
    // serialization principle must survive the whole menagerie.
    forall(10, "exactly_once_under_static_faults", |rng| {
        let n = 8;
        let shape = NetShape {
            copies: 2,
            stages: 3,
            switches_per_stage: 4,
            k: 2,
            mms: n,
        };
        let mut plan = FaultPlan::random_static(rng.next_u64(), shape, 0.2, 0.05)
            .link_loss(0.03)
            .retry(RetryPolicy::for_depth(3));
        if rng.chance(0.5) {
            plan = plan.dead_copy(0);
        }
        let iters = 3 + rng.below(5) as i64;
        let mut m = MachineBuilder::new(n)
            .network(2)
            .faults(plan)
            .max_cycles(4_000_000)
            .build_spmd(&ticket_program(iters));
        assert!(m.run().completed, "degraded machine must still drain");
        // A plan can sever every route out of a PE (both ports of its
        // entry switch dead in the only live copy); such PEs are
        // fail-stopped at boot and claim no tickets. The survivors'
        // tickets must still be exact and dense.
        let live = n - m.dead_pes().len();
        assert!(live > 0, "some PE must survive this plan");
        assert_tickets_exact(&mut m, live as i64 * iters, "static fault soup");
    });
}

#[test]
fn mid_run_module_death_keeps_post_death_traffic_exact() {
    forall(8, "mid_run_module_death", |rng| {
        let n = 8;
        let victim = MmId(rng.below(n));
        let at = 30 + rng.below(120) as u64;
        let plan = FaultPlan::none().schedule(at, Fault::KillMm { mm: victim });
        let iters = 4 + rng.below(4) as i64;
        // The hot counter itself may live on the victim and lose its
        // value; what must hold is that the machine drains, every
        // in-flight request is recovered, and post-death tickets stay
        // distinct (slots are written at most once).
        let mut m = MachineBuilder::new(n)
            .faults(plan)
            .max_cycles(4_000_000)
            .build_spmd(&ticket_program(iters));
        assert!(m.run().completed, "retry must recover the discards");
        for slot in 0..(n as i64 * iters) as usize {
            let v = m.read_shared(1000 + slot);
            assert!(v == 0 || v == 1, "slot {slot} written at most once");
        }
    });
}

//! Experiment E12 — §3.1.4's memory-module bottleneck and its cure.
//!
//! "A potential serial bottleneck is the memory module itself. If every PE
//! simultaneously requests a distinct word from the same MM, these N
//! requests are serviced one at a time. However, introducing a hashing
//! function when translating the virtual address to a physical address,
//! assures that this unfavorable situation occurs with probability
//! approaching zero as N increases."
//!
//! Every PE walks a stride-N array — the classic pattern that, under plain
//! interleaving, lands *every* reference on MM 0.

use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::ultra_mem::TranslationMode;

/// Every PE loads `rounds` words at stride N (the machine size).
fn strided_walk(n: usize, rounds: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(rounds),
                body: body(vec![
                    // vaddr = (pe * rounds + i) * N: all congruent 0 mod N.
                    Op::Load {
                        addr: Expr::mul(
                            Expr::add(Expr::mul(Expr::PeIndex, rounds), Expr::Reg(1)),
                            n as i64,
                        ),
                        dst: 0,
                    },
                    Op::Set {
                        reg: 2,
                        value: Expr::add(Expr::Reg(0), Expr::Reg(2)),
                    },
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

fn run(mode: TranslationMode) -> (u64, usize) {
    let n = 16;
    let mut m = MachineBuilder::new(n)
        .translation(mode)
        .build_spmd(&strided_walk(n, 24));
    let out = m.run();
    assert!(out.completed, "{mode:?} run must drain");
    (out.cycles, m.max_mm_queue_depth())
}

#[test]
fn hashing_removes_the_module_bottleneck() {
    let (t_interleaved, depth_interleaved) = run(TranslationMode::Interleaved);
    let (t_hashed, depth_hashed) = run(TranslationMode::Hashed);

    // Interleaving collapses the stride onto one module: deep queue,
    // serialized service.
    assert!(
        depth_interleaved >= 8,
        "interleaved stride-N must pile onto one MM (depth {depth_interleaved})"
    );
    // Hashing spreads it: shallow queues, and a materially faster run.
    assert!(
        depth_hashed <= depth_interleaved / 2,
        "hashing must cut the worst queue depth ({depth_hashed} vs {depth_interleaved})"
    );
    assert!(
        t_hashed as f64 <= 0.7 * t_interleaved as f64,
        "hashing must speed up the strided walk ({t_hashed} vs {t_interleaved} cycles)"
    );
}

#[test]
fn uniform_access_is_indifferent_to_translation_mode() {
    // Control: with PE-distinct sequential addresses, both modes behave
    // comparably (hashing costs nothing when there is no pathology).
    let prog = Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(24),
                body: body(vec![Op::Load {
                    addr: Expr::add(Expr::mul(Expr::PeIndex, 64), Expr::Reg(1)),
                    dst: 0,
                }]),
            },
            Op::Fence,
            Op::Halt,
        ]),
        vec![],
    );
    let time = |mode| {
        let mut m = MachineBuilder::new(16).translation(mode).build_spmd(&prog);
        assert!(m.run().completed);
        m.now() as f64
    };
    let t_i = time(TranslationMode::Interleaved);
    let t_h = time(TranslationMode::Hashed);
    let ratio = t_h / t_i;
    assert!(
        (0.5..2.0).contains(&ratio),
        "benign traffic should not be heavily penalized either way ({ratio:.2})"
    );
}

//! Deterministic fault injection for the Ultracomputer model.
//!
//! The paper argues (§3.1) that an Omega network built from `d` replicated
//! copies, together with the address hash of §3.1.4, lets the machine
//! *degrade gracefully*: a dead switch, port, or memory module removes
//! capacity, not correctness. This crate describes faults; the component
//! crates (`ultra-net`, `ultra-mem`, `ultra-pe`, `ultracomputer`) consume
//! the descriptions and implement the degraded behaviour.
//!
//! Everything is **deterministic**: a [`FaultPlan`] is an explicit, seeded
//! description of what breaks and when, so one seed yields one trace. The
//! pieces are:
//!
//! * [`FaultPlan`] — the full description: static (boot-time) faults plus a
//!   schedule of transient faults that fire at exact cycles. A plan with no
//!   faults ([`FaultPlan::none`]) must be behaviourally invisible — the
//!   equivalence property tests in `ultracomputer` enforce bit-identical
//!   traces against a fault-free build.
//! * [`FaultMask`] — the per-network-copy view consumed by
//!   `ultra_net::OmegaNetwork`: whether the whole copy is dead, which
//!   forward switch output ports are dead, and the injection-link loss
//!   probability (with its own deterministic RNG stream).
//! * [`FaultClock`] — drains the schedule: [`FaultClock::due`] returns the
//!   faults firing at exactly the given cycle.
//! * [`RetryPolicy`] — the PNI recovery protocol: a timeout after which an
//!   unanswered request is re-issued under the *same* message id (its
//!   sequence number) with exponential backoff.
//!
//! # Loss model and exactly-once
//!
//! Transient message loss is modelled on the PE→network injection links —
//! the longest wires in the machine — *before* any combining can happen.
//! A lost request was therefore never applied, so a retry under the same
//! sequence number is trivially safe. For losses after application (a
//! memory module dying with replies in its outbox, a spuriously early
//! timeout) the memory modules keep a dedup cache keyed by every sequence
//! number folded into a combined request, so a retried fetch-and-add is
//! applied **exactly once** (see `ultra_mem::MemBank`).

use std::collections::{BTreeMap, BTreeSet, HashSet};

use ultra_sim::rng::{Rng, SplitMix64};
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Cycle, MmId};

/// The PNI's timeout-and-retry recovery protocol (enabled by a fault plan;
/// a plan without one never retries, preserving fault-free behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Cycles an issued request may stay unanswered before the first retry.
    pub base_timeout: Cycle,
    /// Backoff doubling stops after this many attempts (caps the wait at
    /// `base_timeout << backoff_cap`).
    pub backoff_cap: u32,
}

impl RetryPolicy {
    /// A policy sized for a network of `stages` stages: generous enough
    /// that healthy traffic essentially never retries spuriously, tight
    /// enough that lost messages are recovered quickly.
    #[must_use]
    pub fn for_depth(stages: usize) -> Self {
        Self {
            // Worst-case healthy round trips are tens of cycles per stage
            // under congestion; 64·D leaves a wide margin.
            base_timeout: 64 * (stages as Cycle).max(1),
            backoff_cap: 6,
        }
    }

    /// The cycle at which attempt `attempt` (0 = the original issue) of a
    /// request issued/retried at `now` should be declared lost.
    #[must_use]
    pub fn deadline(&self, now: Cycle, attempt: u32) -> Cycle {
        now + (self.base_timeout << attempt.min(self.backoff_cap))
    }
}

impl Wire for RetryPolicy {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.base_timeout);
        w.u32(self.backoff_cap);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            base_timeout: r.u64()?,
            backoff_cap: r.u32()?,
        })
    }
}

/// One transient fault, fired by the [`FaultClock`] at an exact cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Network copy `copy` fails stop: it accepts no new injections from
    /// this cycle on (in-flight traffic drains).
    KillCopy {
        /// Index of the dying copy.
        copy: usize,
    },
    /// Memory module `mm` dies: queued and future requests are discarded
    /// unserved, its contents are lost, and translation re-hashes around it.
    KillMm {
        /// The dying module.
        mm: MmId,
    },
    /// Memory module `mm` degrades to `factor`× its configured service
    /// time.
    SlowMm {
        /// The degraded module.
        mm: MmId,
        /// Service-time multiplier (≥ 1).
        factor: u32,
    },
    /// Forward output port `port` of switch `(stage, switch)` in copy
    /// `copy` dies; requests whose route crosses it fail over to another
    /// copy at injection time.
    KillSwitchPort {
        /// Network copy.
        copy: usize,
        /// Stage (0 = PE side).
        stage: usize,
        /// Switch index within the stage.
        switch: usize,
        /// Forward (ToMM) output port.
        port: usize,
    },
    /// One wait-buffer slot of switch `(stage, switch)` in copy `copy`
    /// sticks: it never deallocates, permanently shrinking the switch's
    /// combining capacity.
    StickWaitEntry {
        /// Network copy.
        copy: usize,
        /// Stage (0 = PE side).
        stage: usize,
        /// Switch index within the stage.
        switch: usize,
    },
}

impl Wire for Fault {
    fn encode(&self, w: &mut WireWriter) {
        match *self {
            Self::KillCopy { copy } => {
                w.u8(0);
                w.usize(copy);
            }
            Self::KillMm { mm } => {
                w.u8(1);
                mm.encode(w);
            }
            Self::SlowMm { mm, factor } => {
                w.u8(2);
                mm.encode(w);
                w.u32(factor);
            }
            Self::KillSwitchPort {
                copy,
                stage,
                switch,
                port,
            } => {
                w.u8(3);
                w.usize(copy);
                w.usize(stage);
                w.usize(switch);
                w.usize(port);
            }
            Self::StickWaitEntry {
                copy,
                stage,
                switch,
            } => {
                w.u8(4);
                w.usize(copy);
                w.usize(stage);
                w.usize(switch);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::KillCopy { copy: r.usize()? },
            1 => Self::KillMm {
                mm: MmId::decode(r)?,
            },
            2 => Self::SlowMm {
                mm: MmId::decode(r)?,
                factor: r.u32()?,
            },
            3 => Self::KillSwitchPort {
                copy: r.usize()?,
                stage: r.usize()?,
                switch: r.usize()?,
                port: r.usize()?,
            },
            4 => Self::StickWaitEntry {
                copy: r.usize()?,
                stage: r.usize()?,
                switch: r.usize()?,
            },
            _ => return Err(WireError::Invalid("fault tag")),
        })
    }
}

/// A fault scheduled to fire at an exact cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Cycle at which the fault fires (checked at the top of that cycle).
    pub at: Cycle,
    /// What breaks.
    pub fault: Fault,
}

impl Wire for ScheduledFault {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.at);
        self.fault.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            at: r.u64()?,
            fault: Fault::decode(r)?,
        })
    }
}

/// Geometry the random-plan generator needs to know what can break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetShape {
    /// Network copies `d`.
    pub copies: usize,
    /// Switch stages per copy.
    pub stages: usize,
    /// Switches per stage.
    pub switches_per_stage: usize,
    /// Ports per switch (the switch arity `k`).
    pub k: usize,
    /// Memory modules.
    pub mms: usize,
}

impl NetShape {
    /// Total forward switch output ports across all copies.
    #[must_use]
    pub fn total_ports(&self) -> usize {
        self.copies * self.stages * self.switches_per_stage * self.k
    }
}

/// A complete, deterministic description of what is broken in one machine.
///
/// Static faults exist from boot; scheduled faults fire at exact cycles via
/// the [`FaultClock`]. Identical plans (same builder calls, same seed)
/// always produce identical fault behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    dead_copies: BTreeSet<usize>,
    dead_mms: BTreeSet<usize>,
    /// MM index → service-time multiplier.
    slow_mms: BTreeMap<usize, u32>,
    /// `(copy, stage, switch, port)` forward ports dead from boot.
    dead_ports: BTreeSet<(usize, usize, usize, usize)>,
    /// Probability a request is lost on its PE→network injection link.
    link_loss: f64,
    schedule: Vec<ScheduledFault>,
    retry: Option<RetryPolicy>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The healthy plan: nothing is broken, nothing ever fires, and the
    /// retry protocol is disabled. Running a machine under this plan is
    /// bit-identical to running without any plan.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            dead_copies: BTreeSet::new(),
            dead_mms: BTreeSet::new(),
            slow_mms: BTreeMap::new(),
            dead_ports: BTreeSet::new(),
            link_loss: 0.0,
            schedule: Vec::new(),
            retry: None,
        }
    }

    /// Whether this plan breaks nothing (static, scheduled, or lossy).
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.dead_copies.is_empty()
            && self.dead_mms.is_empty()
            && self.slow_mms.is_empty()
            && self.dead_ports.is_empty()
            && self.link_loss == 0.0
            && self.schedule.is_empty()
    }

    /// Sets the seed for the lossy-link RNG streams.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Marks network copy `copy` dead from boot.
    #[must_use]
    pub fn dead_copy(mut self, copy: usize) -> Self {
        self.dead_copies.insert(copy);
        self
    }

    /// Marks memory module `mm` dead from boot (translation re-hashes
    /// around it).
    #[must_use]
    pub fn dead_mm(mut self, mm: MmId) -> Self {
        self.dead_mms.insert(mm.0);
        self
    }

    /// Degrades memory module `mm` to `factor`× its service time from
    /// boot.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn slow_mm(mut self, mm: MmId, factor: u32) -> Self {
        assert!(factor >= 1, "slow-MM factor must be at least 1");
        self.slow_mms.insert(mm.0, factor);
        self
    }

    /// Marks one forward switch output port dead from boot.
    #[must_use]
    pub fn dead_switch_port(
        mut self,
        copy: usize,
        stage: usize,
        switch: usize,
        port: usize,
    ) -> Self {
        self.dead_ports.insert((copy, stage, switch, port));
        self
    }

    /// Sets the probability that a request is lost on its PE→network
    /// injection link (recovered by the PNI retry protocol).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    #[must_use]
    pub fn link_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability must be in [0,1)");
        self.link_loss = p;
        self
    }

    /// Schedules `fault` to fire at cycle `at`.
    #[must_use]
    pub fn schedule(mut self, at: Cycle, fault: Fault) -> Self {
        self.schedule.push(ScheduledFault { at, fault });
        self.schedule.sort_by_key(|s| s.at);
        self
    }

    /// Enables the PNI timeout/retry protocol. Any plan that can lose
    /// messages (lossy links, scheduled MM/copy deaths) needs one.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Draws a random static plan over `shape`: each MM dies independently
    /// with probability `dead_mm_frac` (at least one MM always survives)
    /// and each forward switch port dies with probability
    /// `dead_port_frac`. Deterministic in `seed`.
    #[must_use]
    pub fn random_static(
        seed: u64,
        shape: NetShape,
        dead_mm_frac: f64,
        dead_port_frac: f64,
    ) -> Self {
        let mut plan = Self::none().seed(seed);
        let mut rng = SplitMix64::new(seed ^ 0xFA17_7F1A_u64.wrapping_mul(0x9e37_79b9));
        for mm in 0..shape.mms {
            if plan.dead_mms.len() + 1 < shape.mms && rng.chance(dead_mm_frac) {
                plan.dead_mms.insert(mm);
            }
        }
        for copy in 0..shape.copies {
            for stage in 0..shape.stages {
                for switch in 0..shape.switches_per_stage {
                    for port in 0..shape.k {
                        if rng.chance(dead_port_frac) {
                            plan.dead_ports.insert((copy, stage, switch, port));
                        }
                    }
                }
            }
        }
        plan
    }

    /// The plan's seed.
    #[must_use]
    pub fn plan_seed(&self) -> u64 {
        self.seed
    }

    /// Memory modules dead from boot, ascending.
    #[must_use]
    pub fn dead_mms(&self) -> Vec<MmId> {
        self.dead_mms.iter().map(|&m| MmId(m)).collect()
    }

    /// Boot-time service-time multiplier for `mm` (1 = healthy speed).
    #[must_use]
    pub fn slow_factor(&self, mm: MmId) -> u32 {
        self.slow_mms.get(&mm.0).copied().unwrap_or(1)
    }

    /// Network copies dead from boot.
    #[must_use]
    pub fn dead_copies(&self) -> Vec<usize> {
        self.dead_copies.iter().copied().collect()
    }

    /// The retry policy, if the plan enables recovery.
    #[must_use]
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// The scheduled transient faults, in firing order.
    #[must_use]
    pub fn scheduled(&self) -> &[ScheduledFault] {
        &self.schedule
    }

    /// Builds the boot-time mask network copy `copy` must honour.
    #[must_use]
    pub fn mask_for_copy(&self, copy: usize) -> FaultMask {
        let mut mask = FaultMask::healthy();
        if self.dead_copies.contains(&copy) {
            mask.kill_copy();
        }
        for &(c, stage, switch, port) in &self.dead_ports {
            if c == copy {
                mask.kill_port(stage, switch, port);
            }
        }
        if self.link_loss > 0.0 {
            mask.set_link_loss(
                self.link_loss,
                self.seed ^ (copy as u64).wrapping_mul(0xA24B_AED4_963E_E407),
            );
        }
        mask
    }

    /// Builds the injection clock that fires this plan's scheduled faults.
    #[must_use]
    pub fn clock(&self) -> FaultClock {
        FaultClock {
            pending: self.schedule.clone(),
            cursor: 0,
        }
    }
}

impl Wire for FaultPlan {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.seed);
        self.dead_copies.encode(w);
        self.dead_mms.encode(w);
        self.slow_mms.encode(w);
        self.dead_ports.encode(w);
        w.f64(self.link_loss);
        self.schedule.encode(w);
        self.retry.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            seed: r.u64()?,
            dead_copies: BTreeSet::decode(r)?,
            dead_mms: BTreeSet::decode(r)?,
            slow_mms: BTreeMap::decode(r)?,
            dead_ports: BTreeSet::decode(r)?,
            link_loss: r.f64()?,
            schedule: Vec::decode(r)?,
            retry: Option::decode(r)?,
        })
    }
}

/// The live fault state of one network copy, consulted at injection time
/// by `ultra_net::OmegaNetwork`.
///
/// A healthy mask is behaviourally inert: no RNG is consulted and every
/// check short-circuits, so a faulted build with an empty plan runs
/// bit-identically to a fault-free build.
#[derive(Debug, Clone)]
pub struct FaultMask {
    copy_dead: bool,
    /// `(stage, switch, port)` forward output ports that are dead.
    dead_ports: HashSet<(usize, usize, usize)>,
    link_loss: f64,
    rng: SplitMix64,
}

impl Default for FaultMask {
    fn default() -> Self {
        Self::healthy()
    }
}

impl FaultMask {
    /// A mask with nothing broken.
    #[must_use]
    pub fn healthy() -> Self {
        Self {
            copy_dead: false,
            dead_ports: HashSet::new(),
            link_loss: 0.0,
            rng: SplitMix64::new(0),
        }
    }

    /// Whether nothing is broken in this copy.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        !self.copy_dead && self.dead_ports.is_empty() && self.link_loss == 0.0
    }

    /// Whether the whole copy is dead (refuses all new injections).
    #[must_use]
    pub fn copy_dead(&self) -> bool {
        self.copy_dead
    }

    /// Kills the whole copy.
    pub fn kill_copy(&mut self) {
        self.copy_dead = true;
    }

    /// Kills one forward output port.
    pub fn kill_port(&mut self, stage: usize, switch: usize, port: usize) {
        self.dead_ports.insert((stage, switch, port));
    }

    /// Whether the forward output port `(stage, switch, port)` is dead.
    #[must_use]
    pub fn port_dead(&self, stage: usize, switch: usize, port: usize) -> bool {
        !self.dead_ports.is_empty() && self.dead_ports.contains(&(stage, switch, port))
    }

    /// Whether any port at all is dead (cheap pre-screen before walking a
    /// route).
    #[must_use]
    pub fn any_port_dead(&self) -> bool {
        !self.dead_ports.is_empty()
    }

    /// Arms the lossy injection links with probability `p` and a
    /// deterministic RNG stream derived from `seed`.
    pub fn set_link_loss(&mut self, p: f64, seed: u64) {
        self.link_loss = p;
        self.rng = SplitMix64::new(seed);
    }

    /// Rolls the injection-link loss die for one accepted request. Returns
    /// `true` if the message is lost on the wire. Consults no RNG when the
    /// loss rate is zero.
    pub fn roll_link_loss(&mut self) -> bool {
        self.link_loss > 0.0 && self.rng.chance(self.link_loss)
    }
}

impl Wire for FaultMask {
    fn encode(&self, w: &mut WireWriter) {
        w.bool(self.copy_dead);
        self.dead_ports.encode(w);
        w.f64(self.link_loss);
        self.rng.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            copy_dead: r.bool()?,
            dead_ports: HashSet::decode(r)?,
            link_loss: r.f64()?,
            rng: SplitMix64::decode(r)?,
        })
    }
}

/// Drains a [`FaultPlan`]'s schedule in cycle order.
#[derive(Debug, Clone)]
pub struct FaultClock {
    pending: Vec<ScheduledFault>,
    cursor: usize,
}

impl FaultClock {
    /// The faults firing at exactly cycle `now`. Must be called with
    /// non-decreasing `now`; faults scheduled for skipped cycles fire on
    /// the next call.
    pub fn due(&mut self, now: Cycle) -> Vec<Fault> {
        let mut fired = Vec::new();
        while self.cursor < self.pending.len() && self.pending[self.cursor].at <= now {
            fired.push(self.pending[self.cursor].fault);
            self.cursor += 1;
        }
        fired
    }

    /// Faults not yet fired.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.pending.len() - self.cursor
    }

    /// The cycle at which the next scheduled fault fires, if any. The idle
    /// fast-forward uses this to bound how far it may jump without skipping
    /// a fault.
    #[must_use]
    pub fn next_due(&self) -> Option<Cycle> {
        self.pending[self.cursor..].iter().map(|s| s.at).min()
    }
}

impl Wire for FaultClock {
    fn encode(&self, w: &mut WireWriter) {
        self.pending.encode(w);
        w.usize(self.cursor);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let pending: Vec<ScheduledFault> = Vec::decode(r)?;
        let cursor = r.usize()?;
        if cursor > pending.len() {
            return Err(WireError::Invalid("fault-clock cursor out of range"));
        }
        Ok(Self { pending, cursor })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_state_round_trips_through_wire() {
        let plan = FaultPlan::none()
            .seed(9)
            .dead_copy(1)
            .dead_mm(MmId(3))
            .slow_mm(MmId(5), 4)
            .dead_switch_port(0, 2, 1, 0)
            .link_loss(0.05)
            .schedule(100, Fault::KillMm { mm: MmId(2) })
            .retry(RetryPolicy::for_depth(6));
        let mut mask = plan.mask_for_copy(0);
        let _ = mask.roll_link_loss(); // advance the RNG off its seed
        let mut clock = plan.clock();
        let _ = clock.due(100);
        let mut w = WireWriter::new();
        plan.encode(&mut w);
        mask.encode(&mut w);
        clock.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let plan2 = FaultPlan::decode(&mut r).unwrap();
        let mut mask2 = FaultMask::decode(&mut r).unwrap();
        let clock2 = FaultClock::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(plan, plan2);
        for _ in 0..32 {
            assert_eq!(mask.roll_link_loss(), mask2.roll_link_loss());
        }
        assert_eq!(clock.remaining(), clock2.remaining());
        assert_eq!(clock.next_due(), clock2.next_due());
    }

    #[test]
    fn none_is_healthy_and_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_healthy());
        assert!(plan.retry_policy().is_none());
        assert!(plan.dead_mms().is_empty());
        let mask = plan.mask_for_copy(0);
        assert!(mask.is_healthy());
        assert!(!mask.copy_dead());
        let mut clock = plan.clock();
        assert_eq!(clock.remaining(), 0);
        assert!(clock.due(1_000_000).is_empty());
    }

    #[test]
    fn builders_accumulate() {
        let plan = FaultPlan::none()
            .seed(7)
            .dead_copy(1)
            .dead_mm(MmId(3))
            .slow_mm(MmId(5), 4)
            .dead_switch_port(0, 2, 1, 0)
            .link_loss(0.01)
            .schedule(100, Fault::KillMm { mm: MmId(2) });
        assert!(!plan.is_healthy());
        assert_eq!(plan.dead_copies(), vec![1]);
        assert_eq!(plan.dead_mms(), vec![MmId(3)]);
        assert_eq!(plan.slow_factor(MmId(5)), 4);
        assert_eq!(plan.slow_factor(MmId(0)), 1);
        let m0 = plan.mask_for_copy(0);
        assert!(m0.port_dead(2, 1, 0));
        assert!(!m0.copy_dead());
        let m1 = plan.mask_for_copy(1);
        assert!(m1.copy_dead());
        assert!(!m1.port_dead(2, 1, 0));
    }

    #[test]
    fn clock_fires_in_order_and_catches_up() {
        let plan = FaultPlan::none()
            .schedule(50, Fault::KillCopy { copy: 0 })
            .schedule(10, Fault::KillMm { mm: MmId(1) })
            .schedule(
                50,
                Fault::StickWaitEntry {
                    copy: 0,
                    stage: 1,
                    switch: 2,
                },
            );
        let mut clock = plan.clock();
        assert_eq!(clock.remaining(), 3);
        assert!(clock.due(9).is_empty());
        assert_eq!(clock.due(10), vec![Fault::KillMm { mm: MmId(1) }]);
        // Skipping past cycle 50 still fires both cycle-50 faults.
        let fired = clock.due(60);
        assert_eq!(fired.len(), 2);
        assert_eq!(clock.remaining(), 0);
    }

    #[test]
    fn retry_backoff_doubles_then_caps() {
        let p = RetryPolicy {
            base_timeout: 10,
            backoff_cap: 2,
        };
        assert_eq!(p.deadline(0, 0), 10);
        assert_eq!(p.deadline(0, 1), 20);
        assert_eq!(p.deadline(0, 2), 40);
        assert_eq!(p.deadline(0, 9), 40, "backoff capped");
        assert_eq!(p.deadline(100, 0), 110);
    }

    #[test]
    fn random_static_is_deterministic_and_leaves_a_survivor() {
        let shape = NetShape {
            copies: 2,
            stages: 3,
            switches_per_stage: 4,
            k: 2,
            mms: 8,
        };
        let a = FaultPlan::random_static(42, shape, 0.9, 0.1);
        let b = FaultPlan::random_static(42, shape, 0.9, 0.1);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::random_static(43, shape, 0.9, 0.1);
        assert_ne!(a, c, "different seed, different plan");
        assert!(
            a.dead_mms().len() < shape.mms,
            "at least one MM must survive"
        );
    }

    #[test]
    fn healthy_mask_rolls_no_losses() {
        let mut mask = FaultMask::healthy();
        for _ in 0..1000 {
            assert!(!mask.roll_link_loss());
        }
    }

    #[test]
    fn lossy_mask_is_deterministic() {
        let roll = || {
            let mut m = FaultMask::healthy();
            m.set_link_loss(0.3, 99);
            (0..64).map(|_| m.roll_link_loss()).collect::<Vec<_>>()
        };
        let a = roll();
        assert_eq!(a, roll());
        assert!(a.iter().any(|&l| l), "some losses at p = 0.3");
        assert!(a.iter().any(|&l| !l), "some survivals at p = 0.3");
    }
}

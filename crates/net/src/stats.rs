//! Network instrumentation.

use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Counter, Histogram};

/// Counters and distributions accumulated by one network instance.
///
/// Transit histograms measure *one-way* times: injection to tail arrival.
/// Round-trip memory latency is assembled at the machine level (it includes
/// MM service time).
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Requests accepted into the network.
    pub injected_requests: Counter,
    /// Requests whose tail reached their MM.
    pub delivered_requests: Counter,
    /// Replies accepted from MNIs.
    pub injected_replies: Counter,
    /// Replies whose tail reached their PE.
    pub delivered_replies: Counter,
    /// Pairwise combines performed (each reduces wire traffic by one
    /// message).
    pub combines: Counter,
    /// Per-stage combine counts (index = stage from the PE side).
    pub combines_by_stage: Vec<Counter>,
    /// Replies manufactured from wait-buffer entries.
    pub decombines: Counter,
    /// Combines declined because the switch's wait buffer was full.
    pub wait_buffer_declines: Counter,
    /// Requests killed under [`crate::SwitchPolicy::DropOnConflict`].
    pub drops: Counter,
    /// Injection attempts refused for lack of space or a busy input link.
    pub inject_stalls: Counter,
    /// Forward transit time in cycles (injection → tail at MM).
    pub forward_transit: Histogram,
    /// Reverse transit time in cycles (MNI injection → tail at PE).
    pub reverse_transit: Histogram,
    /// Requests lost to injected faults (lossy injection links).
    pub fault_dropped: Counter,
    /// Injections refused by this copy because a fault (dead copy or a
    /// dead switch port on the route) forced the request onto another
    /// copy.
    pub fault_refusals: Counter,
    /// Wait-buffer slots permanently lost to stuck-entry faults.
    pub stuck_wait_entries: Counter,
}

impl Wire for NetStats {
    fn encode(&self, w: &mut WireWriter) {
        self.injected_requests.encode(w);
        self.delivered_requests.encode(w);
        self.injected_replies.encode(w);
        self.delivered_replies.encode(w);
        self.combines.encode(w);
        self.combines_by_stage.encode(w);
        self.decombines.encode(w);
        self.wait_buffer_declines.encode(w);
        self.drops.encode(w);
        self.inject_stalls.encode(w);
        self.forward_transit.encode(w);
        self.reverse_transit.encode(w);
        self.fault_dropped.encode(w);
        self.fault_refusals.encode(w);
        self.stuck_wait_entries.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            injected_requests: Counter::decode(r)?,
            delivered_requests: Counter::decode(r)?,
            injected_replies: Counter::decode(r)?,
            delivered_replies: Counter::decode(r)?,
            combines: Counter::decode(r)?,
            combines_by_stage: Vec::decode(r)?,
            decombines: Counter::decode(r)?,
            wait_buffer_declines: Counter::decode(r)?,
            drops: Counter::decode(r)?,
            inject_stalls: Counter::decode(r)?,
            forward_transit: Histogram::decode(r)?,
            reverse_transit: Histogram::decode(r)?,
            fault_dropped: Counter::decode(r)?,
            fault_refusals: Counter::decode(r)?,
            stuck_wait_entries: Counter::decode(r)?,
        })
    }
}

impl NetStats {
    /// Creates zeroed statistics for a network with `stages` stages.
    #[must_use]
    pub fn new(stages: usize) -> Self {
        Self {
            combines_by_stage: vec![Counter::new(); stages],
            ..Self::default()
        }
    }

    /// Fraction of injected requests that were absorbed by combining.
    #[must_use]
    pub fn combine_rate(&self) -> f64 {
        let injected = self.injected_requests.get();
        if injected == 0 {
            0.0
        } else {
            self.combines.get() as f64 / injected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_rate_of_empty_stats_is_zero() {
        assert_eq!(NetStats::new(3).combine_rate(), 0.0);
    }

    #[test]
    fn combine_rate_fraction() {
        let mut s = NetStats::new(2);
        s.injected_requests.add(10);
        s.combines.add(4);
        assert!((s.combine_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn per_stage_counters_sized() {
        let s = NetStats::new(6);
        assert_eq!(s.combines_by_stage.len(), 6);
    }
}

//! A k×k bidirectional network switch (§3.3).
//!
//! Each switch is "essentially a 2×2 bidirectional routing device" (the
//! paper details 2×2; everything generalizes to k×k, §3.1.1) made of two
//! nearly independent halves:
//!
//! * the **forward** half: `k` ToMM output queues into which arriving
//!   requests are routed by destination digit, with the combining search on
//!   insertion (§3.3.1);
//! * the **reverse** half: `k` ToPE output queues for replies;
//! * the **wait buffer** linking them: each combine deposits an entry, and
//!   a returning reply whose id matches an entry spawns the absorbed
//!   request's reply (§3.3).
//!
//! The §3.3 simplification "the structure of the switch is simplified if it
//! supports only combinations of pairs" is honoured via the
//! `combined_here` flag: a queue slot that has already combined in this
//! switch will not absorb a third request, but a combined message can
//! combine again at later stages ("combined requests can themselves be
//! combined", §3.1.2).

use std::collections::HashMap;

use crate::combine::{kinds_combinable, try_combine, WaitEntry};
use crate::config::{NetConfig, SwitchPolicy};
use crate::message::{Message, MsgId, Reply};
use crate::queue::OutQueue;
use crate::route::RouteTables;
use crate::stats::NetStats;
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::Cycle;

/// What became of a request offered to a switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceptOutcome {
    /// Queued normally in a ToMM queue.
    Queued,
    /// Merged into an already-queued request; a wait-buffer entry was
    /// recorded and the request will be answered on the return trip.
    Combined,
    /// Killed under [`SwitchPolicy::DropOnConflict`]; the caller must
    /// arrange the retry.
    Dropped(Message),
}

/// One k×k switch.
#[derive(Debug, Clone)]
pub struct Switch {
    stage: usize,
    index: usize,
    to_mm: Vec<OutQueue<Message>>,
    to_pe: Vec<OutQueue<Reply>>,
    wait: HashMap<MsgId, WaitEntry>,
    wait_capacity: usize,
    policy: SwitchPolicy,
    data_packets: u8,
    ctl_packets: u8,
    /// Combines performed in this switch — the per-cell source of the
    /// hot-spot heatmap (the aggregate lives in `NetStats::combines`).
    combines: u64,
}

impl Switch {
    /// Creates the switch at `(stage, index)` under `cfg`.
    #[must_use]
    pub fn new(stage: usize, index: usize, cfg: &NetConfig) -> Self {
        Self {
            stage,
            index,
            to_mm: (0..cfg.k)
                .map(|_| OutQueue::new(cfg.request_queue_packets))
                .collect(),
            to_pe: (0..cfg.k)
                .map(|_| OutQueue::new(cfg.reply_queue_packets))
                .collect(),
            wait: HashMap::new(),
            wait_capacity: cfg.wait_entries,
            policy: cfg.policy,
            data_packets: cfg.data_packets,
            ctl_packets: cfg.ctl_packets,
            combines: 0,
        }
    }

    /// This switch's stage (0 = PE side).
    #[must_use]
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// This switch's index within its stage.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The ToMM queue behind output port `port`.
    #[must_use]
    pub fn to_mm_queue(&self, port: usize) -> &OutQueue<Message> {
        &self.to_mm[port]
    }

    /// Mutable access to the ToMM queue behind output port `port`.
    pub fn to_mm_queue_mut(&mut self, port: usize) -> &mut OutQueue<Message> {
        &mut self.to_mm[port]
    }

    /// The ToPE queue behind output port `port`.
    #[must_use]
    pub fn to_pe_queue(&self, port: usize) -> &OutQueue<Reply> {
        &self.to_pe[port]
    }

    /// Mutable access to the ToPE queue behind output port `port`.
    pub fn to_pe_queue_mut(&mut self, port: usize) -> &mut OutQueue<Reply> {
        &mut self.to_pe[port]
    }

    /// Number of live wait-buffer entries.
    #[must_use]
    pub fn wait_occupancy(&self) -> usize {
        self.wait.len()
    }

    /// Whether any ToMM (forward) output queue holds a message — the
    /// occupancy predicate behind the forward active sets: a switch is in
    /// its stage's forward worklist exactly while this is true.
    #[must_use]
    pub fn has_forward_traffic(&self) -> bool {
        self.to_mm.iter().any(|q| !q.is_empty())
    }

    /// Whether any ToPE (reverse) output queue holds a reply — the
    /// occupancy predicate behind the reverse active sets.
    #[must_use]
    pub fn has_reverse_traffic(&self) -> bool {
        self.to_pe.iter().any(|q| !q.is_empty())
    }

    /// Whether no packet is queued on any output port in either direction.
    ///
    /// Wait-buffer entries are deliberately ignored: an entry only exists
    /// while its combined request is in flight towards memory (so some queue
    /// somewhere is non-empty), except for poisoned ghost entries which
    /// persist forever and must not keep the fabric "busy".
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.to_mm.iter().all(OutQueue::is_empty) && self.to_pe.iter().all(OutQueue::is_empty)
    }

    /// Fault hook: one wait-buffer slot sticks. A ghost entry keyed by an
    /// id no real message can carry is inserted and never deallocated, so
    /// the slot is permanently lost to combining (the §3.3 capacity
    /// shrinks by one). Loses no data — only future combining capacity.
    /// Returns `false` if the buffer has no free slot to lose.
    pub fn poison_wait_entry(&mut self, stats: &mut NetStats) -> bool {
        if self.wait.len() >= self.wait_capacity {
            return false;
        }
        // Ids above the top bit are never minted by PNIs (pe << 44 + seq)
        // or network id bases (1 + copy << 48), so the ghost never matches
        // a returning reply.
        let ghost = MsgId(u64::MAX - self.wait.len() as u64);
        self.wait.insert(
            ghost,
            WaitEntry {
                survivor: ghost,
                absorbed_id: ghost,
                absorbed_pe: ultra_sim::PeId(0),
                addr: ultra_sim::MemAddr::new(ultra_sim::MmId(0), 0),
                absorbed_issued_at: 0,
                absorbed_reply_kind: crate::message::ReplyKind::Ack,
                rule: crate::combine::ReplyRule::Ack,
            },
        );
        stats.stuck_wait_entries.incr();
        true
    }

    /// Combines performed in this switch since construction.
    #[must_use]
    pub fn combines(&self) -> u64 {
        self.combines
    }

    /// Largest packet occupancy any of this switch's ToMM queues reached.
    #[must_use]
    pub fn request_queue_high_water(&self) -> usize {
        self.to_mm
            .iter()
            .map(super::queue::OutQueue::max_packets_used)
            .max()
            .unwrap_or(0)
    }

    /// Serializes the switch's dynamic state (queues, wait buffer, combine
    /// count). Static parameters (capacities, policy, packet lengths) are
    /// not written — they are re-derived from the [`NetConfig`] on decode.
    pub fn encode_state(&self, w: &mut WireWriter) {
        w.usize(self.stage);
        w.usize(self.index);
        self.to_mm.encode(w);
        self.to_pe.encode(w);
        self.wait.encode(w);
        w.u64(self.combines);
    }

    /// Rebuilds a switch from [`Switch::encode_state`] bytes plus the
    /// network configuration it was created under.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the bytes are truncated or malformed.
    pub fn decode_state(r: &mut WireReader<'_>, cfg: &NetConfig) -> Result<Self, WireError> {
        let stage = r.usize()?;
        let index = r.usize()?;
        let mut sw = Switch::new(stage, index, cfg);
        sw.to_mm = Vec::decode(r)?;
        sw.to_pe = Vec::decode(r)?;
        if sw.to_mm.len() != cfg.k || sw.to_pe.len() != cfg.k {
            return Err(WireError::Invalid("switch port count mismatch"));
        }
        sw.wait = HashMap::decode(r)?;
        sw.combines = r.u64()?;
        Ok(sw)
    }

    fn packets_of(&self, msg: &Message) -> u8 {
        msg.packets(self.data_packets, self.ctl_packets)
    }

    fn reply_packets(&self, reply: &Reply) -> u8 {
        reply.packets(self.data_packets, self.ctl_packets)
    }

    /// Whether the switch can take `msg` right now (an upstream switch or
    /// PNI calls this before transmitting). Combinable requests are always
    /// acceptable: they consume no queue space.
    #[must_use]
    pub fn can_accept_request(&self, msg: &Message, topo: &RouteTables) -> bool {
        let port = topo.forward_out_port(msg.addr.mm, self.stage);
        match self.policy {
            // Drops are decided (and reported) inside `accept_request`.
            SwitchPolicy::DropOnConflict => true,
            SwitchPolicy::QueuedNoCombine => self.to_mm[port].can_accept(self.packets_of(msg)),
            SwitchPolicy::QueuedCombining => {
                self.to_mm[port].can_accept(self.packets_of(msg))
                    || (self.wait.len() < self.wait_capacity
                        && self.to_mm[port].iter().any(|s| {
                            !s.combined_here
                                && s.item.addr == msg.addr
                                && kinds_combinable(s.item.kind, msg.kind)
                        }))
            }
        }
    }

    /// Routes an arriving request into the proper ToMM queue, combining if
    /// possible. `head_arrival` is the cycle the head becomes available for
    /// onward transmission.
    ///
    /// # Panics
    ///
    /// Panics if the caller did not verify [`Switch::can_accept_request`].
    pub fn accept_request(
        &mut self,
        mut msg: Message,
        in_port: usize,
        head_arrival: Cycle,
        topo: &RouteTables,
        stats: &mut NetStats,
    ) -> AcceptOutcome {
        let (out_port, updated) = topo.step_amalgam(msg.amalgam, self.stage, in_port);
        debug_assert_eq!(
            out_port,
            topo.forward_out_port(msg.addr.mm, self.stage),
            "amalgam routing must agree with destination-digit routing"
        );
        msg.amalgam = updated;

        if self.policy == SwitchPolicy::DropOnConflict {
            if self.to_mm[out_port].is_empty() {
                let packets = self.packets_of(&msg);
                self.to_mm[out_port].push(msg, packets, head_arrival);
                return AcceptOutcome::Queued;
            }
            stats.drops.incr();
            // The retry re-enters the network from the PE: restore the
            // amalgam to its injection-time state (the full destination).
            msg.amalgam = msg.addr.mm.0;
            return AcceptOutcome::Dropped(msg);
        }

        if self.policy == SwitchPolicy::QueuedCombining {
            let queue = &mut self.to_mm[out_port];
            let candidate = queue.iter().position(|s| {
                !s.combined_here
                    && s.item.addr == msg.addr
                    && kinds_combinable(s.item.kind, msg.kind)
            });
            if let Some(i) = candidate {
                if self.wait.len() < self.wait_capacity {
                    let slot = queue.slot_mut(i);
                    if let Some(entry) = try_combine(&mut slot.item, &msg) {
                        slot.combined_here = true;
                        let new_packets = slot.item.packets(self.data_packets, self.ctl_packets);
                        queue.resize_slot(i, new_packets);
                        let prior = self.wait.insert(entry.survivor, entry);
                        debug_assert!(
                            prior.is_none(),
                            "pair-only combining: one wait entry per survivor per switch"
                        );
                        stats.combines.incr();
                        stats.combines_by_stage[self.stage].incr();
                        self.combines += 1;
                        return AcceptOutcome::Combined;
                    }
                } else {
                    stats.wait_buffer_declines.incr();
                }
            }
        }

        let packets = self.packets_of(&msg);
        self.to_mm[out_port].push(msg, packets, head_arrival);
        AcceptOutcome::Queued
    }

    /// Whether the switch can take `reply` right now, *including* space for
    /// any decombined reply its arrival would spawn.
    #[must_use]
    pub fn can_accept_reply(&self, reply: &Reply, topo: &RouteTables) -> bool {
        let port = topo.reverse_out_port(reply.dst, self.stage);
        let len = self.reply_packets(reply);
        match self.wait.get(&reply.id) {
            None => self.to_pe[port].can_accept(len),
            Some(entry) => {
                let spawn_port = topo.reverse_out_port(entry.absorbed_pe, self.stage);
                let spawn_len = match entry.absorbed_reply_kind {
                    crate::message::ReplyKind::Value => self.data_packets,
                    crate::message::ReplyKind::Ack => self.ctl_packets,
                };
                if spawn_port == port {
                    self.to_pe[port].can_accept(len + spawn_len)
                } else {
                    self.to_pe[port].can_accept(len) && self.to_pe[spawn_port].can_accept(spawn_len)
                }
            }
        }
    }

    /// Routes an arriving reply into the proper ToPE queue, consulting the
    /// wait buffer and spawning the absorbed request's reply on a match
    /// (§3.3).
    ///
    /// # Panics
    ///
    /// Panics if the caller did not verify [`Switch::can_accept_reply`].
    pub fn accept_reply(
        &mut self,
        mut reply: Reply,
        in_port: usize,
        head_arrival: Cycle,
        topo: &RouteTables,
        stats: &mut NetStats,
    ) {
        let (out_port, updated) = topo.step_amalgam(reply.amalgam, self.stage, in_port);
        debug_assert_eq!(
            out_port,
            topo.reverse_out_port(reply.dst, self.stage),
            "reverse amalgam routing must agree with PE-digit routing"
        );
        reply.amalgam = updated;

        if let Some(entry) = self.wait.remove(&reply.id) {
            let spawn_amalgam =
                topo.reverse_amalgam_at(entry.absorbed_pe, entry.addr.mm, self.stage);
            let mut spawn = entry.make_reply(reply.value, spawn_amalgam);
            spawn.mm_injected_at = reply.mm_injected_at;
            let (spawn_port, spawn_updated) = topo.step_amalgam(spawn.amalgam, self.stage, in_port);
            debug_assert_eq!(spawn_port, topo.reverse_out_port(spawn.dst, self.stage));
            spawn.amalgam = spawn_updated;
            let spawn_len = self.reply_packets(&spawn);
            stats.decombines.incr();
            let len = self.reply_packets(&reply);
            self.to_pe[out_port].push(reply, len, head_arrival);
            // The spawned reply streams out right behind the triggering one;
            // model its head as available one packet later.
            self.to_pe[spawn_port].push(spawn, spawn_len, head_arrival + 1);
        } else {
            let len = self.reply_packets(&reply);
            self.to_pe[out_port].push(reply, len, head_arrival);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgKind, ReplyKind};
    use crate::route::Topology;
    use ultra_sim::{MemAddr, MmId, PeId};

    fn cfg() -> NetConfig {
        NetConfig::small(8)
    }

    fn topo() -> RouteTables {
        RouteTables::new(Topology::new(8, 2))
    }

    fn req(id: u64, pe: usize, mm: usize, kind: MsgKind, value: i64) -> Message {
        Message::request(
            MsgId(id),
            kind,
            MemAddr::new(MmId(mm), 0),
            value,
            PeId(pe),
            0,
        )
    }

    /// Sends `msg` into the stage-0 switch it would physically enter.
    fn into_stage0(
        sw: &mut Switch,
        topo: &RouteTables,
        msg: Message,
        stats: &mut NetStats,
    ) -> AcceptOutcome {
        let (_, in_port) = topo.pe_entry(msg.src);
        sw.accept_request(msg, in_port, 1, topo, stats)
    }

    #[test]
    fn routes_by_destination_digit() {
        let t = topo();
        let c = cfg();
        let mut stats = NetStats::new(t.stages());
        // PEs 0 and 4 share stage-0 switch 0 (entry = shuffle).
        let (sw0, _) = t.pe_entry(PeId(0));
        let mut sw = Switch::new(0, sw0, &c);
        // MM 3 = 0b011: stage 0 uses the msb (0); MM 7 = 0b111: msb 1.
        into_stage0(&mut sw, &t, req(1, 0, 3, MsgKind::Load, 0), &mut stats);
        into_stage0(&mut sw, &t, req(2, 0, 7, MsgKind::Load, 0), &mut stats);
        assert_eq!(sw.to_mm_queue(0).len(), 1);
        assert_eq!(sw.to_mm_queue(1).len(), 1);
    }

    #[test]
    fn combines_two_fetch_adds() {
        let t = topo();
        let c = cfg();
        let mut stats = NetStats::new(t.stages());
        let (sw0, _) = t.pe_entry(PeId(0));
        let (sw0b, _) = t.pe_entry(PeId(4));
        assert_eq!(sw0, sw0b, "PEs 0 and 4 share a stage-0 switch");
        let mut sw = Switch::new(0, sw0, &c);
        let a = req(1, 0, 3, MsgKind::fetch_add(), 5);
        let b = req(2, 4, 3, MsgKind::fetch_add(), 9);
        assert_eq!(
            into_stage0(&mut sw, &t, a, &mut stats),
            AcceptOutcome::Queued
        );
        assert_eq!(
            into_stage0(&mut sw, &t, b, &mut stats),
            AcceptOutcome::Combined
        );
        assert_eq!(sw.to_mm_queue(0).len(), 1, "one message on the wire");
        assert_eq!(sw.wait_occupancy(), 1);
        assert_eq!(stats.combines.get(), 1);
        let slot = sw.to_mm_queue(0).front().unwrap();
        assert_eq!(slot.item.value, 14, "operands summed");
        assert!(slot.combined_here);
    }

    #[test]
    fn pair_only_third_request_queues() {
        let t = topo();
        let c = cfg();
        let mut stats = NetStats::new(t.stages());
        let (sw0, _) = t.pe_entry(PeId(0));
        let mut sw = Switch::new(0, sw0, &c);
        for (id, pe) in [(1, 0), (2, 4)] {
            into_stage0(
                &mut sw,
                &t,
                req(id, pe, 3, MsgKind::fetch_add(), 1),
                &mut stats,
            );
        }
        // Third request to the same word: the existing slot already
        // combined, so it must queue separately (§3.3 pair-only).
        let outcome = into_stage0(
            &mut sw,
            &t,
            req(3, 0, 3, MsgKind::fetch_add(), 1),
            &mut stats,
        );
        assert_eq!(outcome, AcceptOutcome::Queued);
        assert_eq!(sw.to_mm_queue(0).len(), 2);
    }

    #[test]
    fn fourth_request_combines_with_third() {
        let t = topo();
        let c = cfg();
        let mut stats = NetStats::new(t.stages());
        let (sw0, _) = t.pe_entry(PeId(0));
        let mut sw = Switch::new(0, sw0, &c);
        for (id, pe) in [(1, 0), (2, 4), (3, 0), (4, 4)] {
            into_stage0(
                &mut sw,
                &t,
                req(id, pe, 3, MsgKind::fetch_add(), 1),
                &mut stats,
            );
        }
        assert_eq!(sw.to_mm_queue(0).len(), 2, "two combined pairs");
        assert_eq!(stats.combines.get(), 2);
        assert_eq!(sw.wait_occupancy(), 2);
    }

    #[test]
    fn full_wait_buffer_declines_combining() {
        let t = topo();
        let mut c = cfg();
        c.wait_entries = 0;
        let mut stats = NetStats::new(t.stages());
        let (sw0, _) = t.pe_entry(PeId(0));
        let mut sw = Switch::new(0, sw0, &c);
        into_stage0(
            &mut sw,
            &t,
            req(1, 0, 3, MsgKind::fetch_add(), 5),
            &mut stats,
        );
        let outcome = into_stage0(
            &mut sw,
            &t,
            req(2, 4, 3, MsgKind::fetch_add(), 9),
            &mut stats,
        );
        assert_eq!(outcome, AcceptOutcome::Queued);
        assert_eq!(stats.wait_buffer_declines.get(), 1);
    }

    #[test]
    fn no_combine_policy_keeps_requests_separate() {
        let t = topo();
        let mut c = cfg();
        c.policy = SwitchPolicy::QueuedNoCombine;
        let mut stats = NetStats::new(t.stages());
        let (sw0, _) = t.pe_entry(PeId(0));
        let mut sw = Switch::new(0, sw0, &c);
        into_stage0(
            &mut sw,
            &t,
            req(1, 0, 3, MsgKind::fetch_add(), 5),
            &mut stats,
        );
        into_stage0(
            &mut sw,
            &t,
            req(2, 4, 3, MsgKind::fetch_add(), 9),
            &mut stats,
        );
        assert_eq!(sw.to_mm_queue(0).len(), 2);
        assert_eq!(stats.combines.get(), 0);
    }

    #[test]
    fn drop_policy_kills_conflicting_request() {
        let t = topo();
        let mut c = cfg();
        c.policy = SwitchPolicy::DropOnConflict;
        let mut stats = NetStats::new(t.stages());
        let (sw0, _) = t.pe_entry(PeId(0));
        let mut sw = Switch::new(0, sw0, &c);
        into_stage0(&mut sw, &t, req(1, 0, 3, MsgKind::Load, 0), &mut stats);
        let outcome = into_stage0(&mut sw, &t, req(2, 4, 7, MsgKind::Load, 0), &mut stats);
        // MM 7 routes to the other port: no conflict.
        assert_eq!(outcome, AcceptOutcome::Queued);
        let outcome = into_stage0(&mut sw, &t, req(3, 0, 3, MsgKind::Load, 0), &mut stats);
        assert!(matches!(outcome, AcceptOutcome::Dropped(_)));
        assert_eq!(stats.drops.get(), 1);
    }

    #[test]
    fn reply_decombines_and_spawns_second_reply() {
        let t = topo();
        let c = cfg();
        let mut stats = NetStats::new(t.stages());
        let (sw0, _) = t.pe_entry(PeId(0));
        let mut sw = Switch::new(0, sw0, &c);
        let a = req(1, 0, 3, MsgKind::fetch_add(), 5);
        let b = req(2, 4, 3, MsgKind::fetch_add(), 9);
        into_stage0(&mut sw, &t, a.clone(), &mut stats);
        into_stage0(&mut sw, &t, b, &mut stats);

        // The combined message would continue to memory holding X = 100 and
        // return a reply for survivor id 1. Route it back into this switch:
        // on the reverse trip it enters on the port it departed from.
        let survivor = sw.to_mm_queue_mut(0).pop_for_transmit(1).item;
        assert_eq!(survivor.value, 14);
        let mut reply = Reply::to_request(&survivor, 100);
        // Entering stage 0 on the reverse trip: amalgam must be what a reply
        // would carry at that point.
        reply.amalgam = t.reverse_amalgam_at(reply.dst, reply.addr.mm, 0);
        let in_port = t.forward_out_port(reply.addr.mm, 0);
        assert!(sw.can_accept_reply(&reply, &t));
        sw.accept_reply(reply, in_port, 2, &t, &mut stats);
        assert_eq!(stats.decombines.get(), 1);
        assert_eq!(sw.wait_occupancy(), 0);

        // Collect both replies from the ToPE queues.
        let mut got = Vec::new();
        for port in 0..2 {
            while !sw.to_pe_queue(port).is_empty() {
                let now = sw.to_pe_queue(port).link_free_at().max(10);
                got.push(sw.to_pe_queue_mut(port).pop_for_transmit(now).item);
            }
        }
        got.sort_by_key(|r| r.id);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id, MsgId(1));
        assert_eq!(got[0].value, 100, "first F&A observes X");
        assert_eq!(got[1].id, MsgId(2));
        assert_eq!(got[1].value, 105, "second F&A observes X + 5");
        assert_eq!(got[1].dst, PeId(4));
        assert_eq!(got[1].kind, ReplyKind::Value);
    }

    #[test]
    fn unmatched_reply_passes_straight_through() {
        let t = topo();
        let c = cfg();
        let mut stats = NetStats::new(t.stages());
        let mut sw = Switch::new(0, 0, &c);
        let r = Reply {
            id: MsgId(77),
            dst: PeId(0),
            addr: MemAddr::new(MmId(3), 0),
            value: 1,
            kind: ReplyKind::Value,
            request_issued_at: 0,
            mm_injected_at: 0,
            amalgam: t.reverse_amalgam_at(PeId(0), MmId(3), 0),
            attempt: 0,
        };
        let in_port = t.forward_out_port(MmId(3), 0);
        sw.accept_reply(r, in_port, 1, &t, &mut stats);
        let port = t.reverse_out_port(PeId(0), 0);
        assert_eq!(sw.to_pe_queue(port).len(), 1);
        assert_eq!(stats.decombines.get(), 0);
    }

    #[test]
    fn poisoned_wait_slot_shrinks_combining_capacity() {
        let t = topo();
        let mut c = cfg();
        c.wait_entries = 1;
        let mut stats = NetStats::new(t.stages());
        let (sw0, _) = t.pe_entry(PeId(0));
        let mut sw = Switch::new(0, sw0, &c);
        assert!(sw.poison_wait_entry(&mut stats));
        assert_eq!(stats.stuck_wait_entries.get(), 1);
        assert_eq!(sw.wait_occupancy(), 1);
        // The single wait slot is gone: a combinable pair must decline.
        into_stage0(
            &mut sw,
            &t,
            req(1, 0, 3, MsgKind::fetch_add(), 5),
            &mut stats,
        );
        let outcome = into_stage0(
            &mut sw,
            &t,
            req(2, 4, 3, MsgKind::fetch_add(), 9),
            &mut stats,
        );
        assert_eq!(outcome, AcceptOutcome::Queued);
        assert_eq!(stats.combines.get(), 0);
        // No free slot left to poison a second time.
        assert!(!sw.poison_wait_entry(&mut stats));
    }

    #[test]
    fn can_accept_request_true_when_combinable_despite_full_queue() {
        let t = topo();
        let mut c = cfg();
        c.request_queue_packets = 3;
        let mut stats = NetStats::new(t.stages());
        let (sw0, _) = t.pe_entry(PeId(0));
        let mut sw = Switch::new(0, sw0, &c);
        into_stage0(
            &mut sw,
            &t,
            req(1, 0, 3, MsgKind::fetch_add(), 5),
            &mut stats,
        );
        // Queue now holds 3 packets = full, but a combinable twin must still
        // be acceptable (it takes no space).
        let twin = req(2, 4, 3, MsgKind::fetch_add(), 9);
        assert!(sw.can_accept_request(&twin, &t));
        // A request to a different word behind the same port is refused.
        let mut other = req(3, 4, 3, MsgKind::fetch_add(), 9);
        other.addr.offset = 99;
        assert!(!sw.can_accept_request(&other, &t));
    }
}

//! Omega-network topology: perfect-shuffle wiring, destination-tag routing,
//! and the origin/destination amalgam address (§3.1.1).
//!
//! The network connects `N = k^D` PEs to `N` MMs through `D` stages of
//! `k×k` switches (`N/k` switches per stage). Identifiers are written base
//! `k` as `x_D … x_1` (digit 1 least significant). A request from
//! `PE(p_D…p_1)` to `MM(m_D…m_1)` leaves the stage-`s` switch (stages
//! numbered `0..D` from the PE side) on output port `m_{D-s}`; the reply
//! leaves the same stage on ToPE port `p_{D-s}`.
//!
//! Only one `D`-digit address — the *amalgam* — need travel with a message:
//! it enters holding the destination, and each stage replaces the digit it
//! consumed with the arrival-port digit, so the origin address materializes
//! exactly when the destination digits run out. [`Topology::step_amalgam`]
//! implements that register update; the simulator routes redundantly from
//! the full `src`/`addr` fields and debug-asserts agreement.

use ultra_sim::ids::digits;
use ultra_sim::{MmId, PeId};

/// Where a forward (PE→MM) message goes after leaving a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardHop {
    /// Into the next stage: `(switch index, arrival port)`.
    ToSwitch(usize, usize),
    /// Off the last stage into a memory module.
    ToMm(MmId),
}

/// Where a reverse (MM→PE) message goes after leaving a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReverseHop {
    /// Into the previous stage: `(switch index, arrival port)`.
    ToSwitch(usize, usize),
    /// Off stage 0 into a processing element.
    ToPe(PeId),
}

/// The static wiring of an `N`-PE Omega network built from `k×k` switches.
///
/// # Example
///
/// ```
/// use ultra_net::route::Topology;
///
/// let topo = Topology::new(64, 4);
/// assert_eq!(topo.stages(), 3);
/// assert_eq!(topo.switches_per_stage(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    k: usize,
    stages: u32,
}

impl Topology {
    /// Creates the wiring for `n` PEs with `k×k` switches.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive power of `k` and `k >= 2`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        let stages = digits::count(n, k);
        assert!(stages >= 1, "need at least one stage (n > 1)");
        Self { n, k, stages }
    }

    /// Number of PEs (= number of MMs).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Switch arity.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of switch stages, `D = log_k N`.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages as usize
    }

    /// Switches in each stage, `N / k`.
    #[must_use]
    pub fn switches_per_stage(&self) -> usize {
        self.n / self.k
    }

    /// The perfect `k`-shuffle of line `line`: rotate the base-`k`
    /// representation left by one digit.
    #[must_use]
    pub fn shuffle(&self, line: usize) -> usize {
        debug_assert!(line < self.n);
        (line * self.k) % self.n + (line * self.k) / self.n
    }

    /// Inverse of [`Topology::shuffle`]: rotate right by one digit.
    #[must_use]
    pub fn unshuffle(&self, line: usize) -> usize {
        debug_assert!(line < self.n);
        line / self.k + (line % self.k) * (self.n / self.k)
    }

    /// Switch and arrival port at which `pe`'s requests enter stage 0.
    #[must_use]
    pub fn pe_entry(&self, pe: PeId) -> (usize, usize) {
        let line = self.shuffle(pe.0);
        (line / self.k, line % self.k)
    }

    /// Output port a request for `mm` takes at stage `stage`: digit
    /// `m_{D-stage}` of the destination.
    #[must_use]
    pub fn forward_out_port(&self, mm: MmId, stage: usize) -> usize {
        digits::digit(mm.0, self.k, self.stages - stage as u32)
    }

    /// Where a message leaving `(stage, switch, out_port)` lands.
    #[must_use]
    pub fn forward_next(&self, stage: usize, switch: usize, out_port: usize) -> ForwardHop {
        let line = switch * self.k + out_port;
        if stage + 1 == self.stages() {
            ForwardHop::ToMm(MmId(line))
        } else {
            let next = self.shuffle(line);
            ForwardHop::ToSwitch(next / self.k, next % self.k)
        }
    }

    /// Switch and arrival port at which a reply from `mm` enters the last
    /// stage (it re-enters on the port the request departed from).
    #[must_use]
    pub fn reverse_entry(&self, mm: MmId) -> (usize, usize) {
        (mm.0 / self.k, mm.0 % self.k)
    }

    /// ToPE output port a reply for `pe` takes at stage `stage`: digit
    /// `p_{D-stage}` — exactly the port the request arrived on (§3.1.1).
    #[must_use]
    pub fn reverse_out_port(&self, pe: PeId, stage: usize) -> usize {
        digits::digit(pe.0, self.k, self.stages - stage as u32)
    }

    /// Where a reply leaving `(stage, switch, to_pe_port)` lands.
    #[must_use]
    pub fn reverse_next(&self, stage: usize, switch: usize, out_port: usize) -> ReverseHop {
        let line = self.unshuffle(switch * self.k + out_port);
        if stage == 0 {
            ReverseHop::ToPe(PeId(line))
        } else {
            ReverseHop::ToSwitch(line / self.k, line % self.k)
        }
    }

    /// The reverse-trip amalgam of a reply destined for `pe` (about a word
    /// in `mm`) as it *enters* stage `stage` — i.e. after the stages closer
    /// to the MMs have already replaced their PE digits with MM digits.
    ///
    /// Used when a switch manufactures a decombined reply (§3.3): the spawn
    /// must carry the amalgam the absorbed request's reply would have had at
    /// that point of the return trip.
    #[must_use]
    pub fn reverse_amalgam_at(&self, pe: PeId, mm: MmId, stage: usize) -> usize {
        let mut amalgam = pe.0;
        for s in (stage + 1..self.stages()).rev() {
            // On the return trip a reply enters each switch on the port the
            // request departed from: the forward output-port digit.
            let in_port = self.forward_out_port(mm, s);
            let (_, updated) = self.step_amalgam(amalgam, s, in_port);
            amalgam = updated;
        }
        amalgam
    }

    /// Renders the wiring as text in the spirit of the paper's Figure 2:
    /// one line per switch, listing what feeds each input port and where
    /// each output port leads.
    ///
    /// ```
    /// use ultra_net::route::Topology;
    ///
    /// let diagram = Topology::new(8, 2).render();
    /// assert!(diagram.contains("stage 0"));
    /// assert!(diagram.contains("MM7"));
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Omega network: {} PEs, {}x{} switches, {} stages",
            self.n,
            self.k,
            self.k,
            self.stages()
        );
        for stage in 0..self.stages() {
            let _ = writeln!(out, "stage {stage}:");
            for sw in 0..self.switches_per_stage() {
                // Inputs: who feeds (sw, port)?
                let mut ins: Vec<String> = vec![String::from("?"); self.k];
                if stage == 0 {
                    for pe in 0..self.n {
                        let (s, p) = self.pe_entry(PeId(pe));
                        if s == sw {
                            ins[p] = format!("PE{pe}");
                        }
                    }
                } else {
                    for psw in 0..self.switches_per_stage() {
                        for pport in 0..self.k {
                            if let ForwardHop::ToSwitch(s, p) =
                                self.forward_next(stage - 1, psw, pport)
                            {
                                if s == sw {
                                    ins[p] = format!("S{}.{psw}:{pport}", stage - 1);
                                }
                            }
                        }
                    }
                }
                // Outputs: where does (sw, port) lead?
                let outs: Vec<String> = (0..self.k)
                    .map(|port| match self.forward_next(stage, sw, port) {
                        ForwardHop::ToSwitch(s, p) => format!("S{}.{s}:{p}", stage + 1),
                        ForwardHop::ToMm(mm) => format!("MM{}", mm.0),
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "  S{stage}.{sw}  in[{}]  out[{}]",
                    ins.join(", "),
                    outs.join(", ")
                );
            }
        }
        out
    }

    /// The §3.1.1 amalgam register update performed by a stage-`stage`
    /// switch on either trip: read the outgoing-port digit, then overwrite
    /// it with the arrival-port digit. Returns
    /// `(out_port, updated_amalgam)`.
    #[must_use]
    pub fn step_amalgam(&self, amalgam: usize, stage: usize, in_port: usize) -> (usize, usize) {
        let j = self.stages - stage as u32; // 1-based digit index
        let weight = self.k.pow(j - 1);
        let out_port = (amalgam / weight) % self.k;
        let updated = amalgam - out_port * weight + in_port * weight;
        (out_port, updated)
    }
}

/// A [`Topology`] with every hot-path routing decision precomputed.
///
/// The per-cycle sweeps resolve output ports, shuffle wirings and digit
/// weights for every message hop; computed on the fly those are divisions,
/// modulos and `pow` calls. This wrapper tabulates them once at
/// construction — `O(N · D)` small integers — so the hot path is pure
/// table lookups, and derives the decombining amalgam in closed form
/// instead of walking the return path stage by stage.
///
/// Derefs to [`Topology`], so the rarely-used geometry queries
/// (`render`, …) remain available; the methods defined here shadow their
/// `Topology` equivalents with table-backed versions that return
/// identical values (asserted exhaustively in the route tests).
#[derive(Debug, Clone)]
pub struct RouteTables {
    topo: Topology,
    /// `fwd_port[mm * D + s]` = output port a request for `mm` takes at
    /// stage `s` (digit `m_{D-s}`).
    fwd_port: Vec<u8>,
    /// `rev_port[pe * D + s]` = ToPE output port a reply for `pe` takes at
    /// stage `s`.
    rev_port: Vec<u8>,
    /// `shuffle[line]` = perfect `k`-shuffle of `line`.
    shuffle: Vec<u32>,
    /// `unshuffle[line]` = inverse shuffle of `line`.
    unshuffle: Vec<u32>,
    /// `weight[s]` = `k^(D-s-1)`, the base-`k` digit weight consumed at
    /// stage `s`.
    weight: Vec<usize>,
}

impl RouteTables {
    /// Tabulates `topo`.
    ///
    /// # Panics
    ///
    /// Panics if the switch arity exceeds 256 (ports are stored as bytes).
    #[must_use]
    pub fn new(topo: Topology) -> Self {
        assert!(topo.k() <= 256, "port table stores ports as u8");
        let n = topo.n();
        let d = topo.stages();
        let mut fwd_port = Vec::with_capacity(n * d);
        let mut rev_port = Vec::with_capacity(n * d);
        for line in 0..n {
            for s in 0..d {
                fwd_port.push(topo.forward_out_port(MmId(line), s) as u8);
                rev_port.push(topo.reverse_out_port(PeId(line), s) as u8);
            }
        }
        Self {
            fwd_port,
            rev_port,
            shuffle: (0..n).map(|l| topo.shuffle(l) as u32).collect(),
            unshuffle: (0..n).map(|l| topo.unshuffle(l) as u32).collect(),
            weight: (0..d).map(|s| topo.k().pow((d - s - 1) as u32)).collect(),
            topo,
        }
    }

    /// The wrapped wiring.
    #[must_use]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Table-backed [`Topology::shuffle`].
    #[must_use]
    pub fn shuffle(&self, line: usize) -> usize {
        self.shuffle[line] as usize
    }

    /// Table-backed [`Topology::unshuffle`].
    #[must_use]
    pub fn unshuffle(&self, line: usize) -> usize {
        self.unshuffle[line] as usize
    }

    /// Table-backed [`Topology::pe_entry`].
    #[must_use]
    pub fn pe_entry(&self, pe: PeId) -> (usize, usize) {
        let line = self.shuffle[pe.0] as usize;
        (line / self.topo.k, line % self.topo.k)
    }

    /// Table-backed [`Topology::forward_out_port`].
    #[must_use]
    pub fn forward_out_port(&self, mm: MmId, stage: usize) -> usize {
        self.fwd_port[mm.0 * self.weight.len() + stage] as usize
    }

    /// Table-backed [`Topology::forward_next`].
    #[must_use]
    pub fn forward_next(&self, stage: usize, switch: usize, out_port: usize) -> ForwardHop {
        let line = switch * self.topo.k + out_port;
        if stage + 1 == self.weight.len() {
            ForwardHop::ToMm(MmId(line))
        } else {
            let next = self.shuffle[line] as usize;
            ForwardHop::ToSwitch(next / self.topo.k, next % self.topo.k)
        }
    }

    /// Table-backed [`Topology::reverse_entry`].
    #[must_use]
    pub fn reverse_entry(&self, mm: MmId) -> (usize, usize) {
        (mm.0 / self.topo.k, mm.0 % self.topo.k)
    }

    /// Table-backed [`Topology::reverse_out_port`].
    #[must_use]
    pub fn reverse_out_port(&self, pe: PeId, stage: usize) -> usize {
        self.rev_port[pe.0 * self.weight.len() + stage] as usize
    }

    /// Table-backed [`Topology::reverse_next`].
    #[must_use]
    pub fn reverse_next(&self, stage: usize, switch: usize, out_port: usize) -> ReverseHop {
        let line = self.unshuffle[switch * self.topo.k + out_port] as usize;
        if stage == 0 {
            ReverseHop::ToPe(PeId(line))
        } else {
            ReverseHop::ToSwitch(line / self.topo.k, line % self.topo.k)
        }
    }

    /// Table-backed [`Topology::step_amalgam`]: the digit weight comes
    /// from the stage table instead of a `pow` call.
    #[must_use]
    pub fn step_amalgam(&self, amalgam: usize, stage: usize, in_port: usize) -> (usize, usize) {
        let weight = self.weight[stage];
        let out_port = (amalgam / weight) % self.topo.k;
        let updated = amalgam - out_port * weight + in_port * weight;
        (out_port, updated)
    }

    /// Closed-form [`Topology::reverse_amalgam_at`]: the stages closer to
    /// the MMs have replaced the low `D - stage - 1` digits of the PE
    /// number with the MM's digits, so the amalgam is
    /// `pe - pe % w + mm % w` with `w = k^(D-stage-1)` — no walk needed.
    #[must_use]
    pub fn reverse_amalgam_at(&self, pe: PeId, mm: MmId, stage: usize) -> usize {
        let w = self.weight[stage];
        pe.0 - pe.0 % w + mm.0 % w
    }
}

impl std::ops::Deref for RouteTables {
    type Target = Topology;

    fn deref(&self) -> &Topology {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_rotates_digits_left() {
        let t = Topology::new(8, 2);
        // 0b011 -> 0b110, 0b100 -> 0b001.
        assert_eq!(t.shuffle(0b011), 0b110);
        assert_eq!(t.shuffle(0b100), 0b001);
    }

    #[test]
    fn unshuffle_inverts_shuffle() {
        for (n, k) in [(8, 2), (64, 4), (64, 8), (16, 16)] {
            let t = Topology::new(n, k);
            for line in 0..n {
                assert_eq!(t.unshuffle(t.shuffle(line)), line);
                assert_eq!(t.shuffle(t.unshuffle(line)), line);
            }
        }
    }

    /// Walks the forward path switch-by-switch the way the simulator does,
    /// updating the amalgam, and checks arrival at the right MM with the
    /// amalgam transmuted into the source PE number.
    fn walk_forward(t: &Topology, pe: PeId, mm: MmId) {
        let (mut sw, mut in_port) = t.pe_entry(pe);
        let mut amalgam = mm.0;
        for stage in 0..t.stages() {
            let out = t.forward_out_port(mm, stage);
            let (am_out, updated) = t.step_amalgam(amalgam, stage, in_port);
            assert_eq!(am_out, out, "amalgam routing must agree with digit routing");
            amalgam = updated;
            match t.forward_next(stage, sw, out) {
                ForwardHop::ToSwitch(s, p) => {
                    sw = s;
                    in_port = p;
                }
                ForwardHop::ToMm(m) => {
                    assert_eq!(stage + 1, t.stages());
                    assert_eq!(m, mm, "request must arrive at its destination MM");
                }
            }
        }
        assert_eq!(amalgam, pe.0, "amalgam must end as the origin PE number");
    }

    /// Walks the reverse path and checks arrival at the right PE with the
    /// amalgam transmuted back into the MM number.
    fn walk_reverse(t: &Topology, pe: PeId, mm: MmId) {
        let (mut sw, mut in_port) = t.reverse_entry(mm);
        let mut amalgam = pe.0;
        for stage in (0..t.stages()).rev() {
            assert_eq!(
                amalgam,
                t.reverse_amalgam_at(pe, mm, stage),
                "closed form must match the walked reverse amalgam"
            );
            let out = t.reverse_out_port(pe, stage);
            let (am_out, updated) = t.step_amalgam(amalgam, stage, in_port);
            assert_eq!(am_out, out);
            amalgam = updated;
            match t.reverse_next(stage, sw, out) {
                ReverseHop::ToSwitch(s, p) => {
                    assert!(stage > 0);
                    sw = s;
                    in_port = p;
                }
                ReverseHop::ToPe(p) => {
                    assert_eq!(stage, 0);
                    assert_eq!(p, pe, "reply must arrive at the originating PE");
                }
            }
        }
        assert_eq!(amalgam, mm.0, "reverse amalgam must end as the MM number");
    }

    #[test]
    fn every_pair_routes_correctly_k2() {
        let t = Topology::new(64, 2);
        for pe in 0..64 {
            for mm in 0..64 {
                walk_forward(&t, PeId(pe), MmId(mm));
                walk_reverse(&t, PeId(pe), MmId(mm));
            }
        }
    }

    #[test]
    fn every_pair_routes_correctly_k4() {
        let t = Topology::new(64, 4);
        for pe in 0..64 {
            for mm in 0..64 {
                walk_forward(&t, PeId(pe), MmId(mm));
                walk_reverse(&t, PeId(pe), MmId(mm));
            }
        }
    }

    #[test]
    fn every_pair_routes_correctly_k8() {
        let t = Topology::new(64, 8);
        for pe in 0..64 {
            for mm in 0..64 {
                walk_forward(&t, PeId(pe), MmId(mm));
                walk_reverse(&t, PeId(pe), MmId(mm));
            }
        }
    }

    #[test]
    fn single_stage_network_is_a_crossbar() {
        let t = Topology::new(4, 4);
        assert_eq!(t.stages(), 1);
        for pe in 0..4 {
            for mm in 0..4 {
                walk_forward(&t, PeId(pe), MmId(mm));
                walk_reverse(&t, PeId(pe), MmId(mm));
            }
        }
    }

    #[test]
    fn paper_figure2_example_dimensions() {
        // Figure 2 of the paper: N = 8, 2x2 switches, 3 stages of 4.
        let t = Topology::new(8, 2);
        assert_eq!(t.stages(), 3);
        assert_eq!(t.switches_per_stage(), 4);
    }

    #[test]
    fn paths_to_same_mm_converge() {
        // All requests for one MM must exit the last stage at the same
        // switch/port — the tree property combining relies on.
        let t = Topology::new(16, 2);
        let mm = MmId(11);
        let mut exits = std::collections::HashSet::new();
        for pe in 0..16 {
            let (mut sw, mut _ip) = t.pe_entry(PeId(pe));
            for stage in 0..t.stages() {
                let out = t.forward_out_port(mm, stage);
                match t.forward_next(stage, sw, out) {
                    ForwardHop::ToSwitch(s, p) => {
                        sw = s;
                        _ip = p;
                    }
                    ForwardHop::ToMm(m) => {
                        exits.insert((sw, out));
                        assert_eq!(m, mm);
                    }
                }
            }
        }
        assert_eq!(exits.len(), 1, "all paths to an MM share the final link");
    }

    #[test]
    #[should_panic(expected = "not a power")]
    fn rejects_non_power_sizes() {
        let _ = Topology::new(12, 2);
    }

    #[test]
    fn route_tables_agree_with_topology_everywhere() {
        for (n, k) in [
            (8usize, 2usize),
            (64, 2),
            (64, 4),
            (64, 8),
            (16, 16),
            (4, 4),
        ] {
            let topo = Topology::new(n, k);
            let tables = RouteTables::new(topo);
            assert_eq!(tables.stages(), topo.stages(), "deref passthrough");
            for line in 0..n {
                assert_eq!(tables.shuffle(line), topo.shuffle(line));
                assert_eq!(tables.unshuffle(line), topo.unshuffle(line));
                assert_eq!(tables.pe_entry(PeId(line)), topo.pe_entry(PeId(line)));
                assert_eq!(
                    tables.reverse_entry(MmId(line)),
                    topo.reverse_entry(MmId(line))
                );
                for s in 0..topo.stages() {
                    assert_eq!(
                        tables.forward_out_port(MmId(line), s),
                        topo.forward_out_port(MmId(line), s)
                    );
                    assert_eq!(
                        tables.reverse_out_port(PeId(line), s),
                        topo.reverse_out_port(PeId(line), s)
                    );
                }
            }
            for s in 0..topo.stages() {
                for sw in 0..topo.switches_per_stage() {
                    for port in 0..k {
                        assert_eq!(
                            tables.forward_next(s, sw, port),
                            topo.forward_next(s, sw, port)
                        );
                        assert_eq!(
                            tables.reverse_next(s, sw, port),
                            topo.reverse_next(s, sw, port)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn route_tables_amalgam_matches_walked_form() {
        for (n, k) in [(16usize, 2usize), (64, 4), (64, 8)] {
            let topo = Topology::new(n, k);
            let tables = RouteTables::new(topo);
            for pe in 0..n {
                for mm in 0..n {
                    for s in 0..topo.stages() {
                        assert_eq!(
                            tables.reverse_amalgam_at(PeId(pe), MmId(mm), s),
                            topo.reverse_amalgam_at(PeId(pe), MmId(mm), s),
                            "closed form diverged at pe={pe} mm={mm} stage={s}"
                        );
                        for in_port in 0..k {
                            assert_eq!(
                                tables.step_amalgam(mm, s, in_port),
                                topo.step_amalgam(mm, s, in_port)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn render_covers_every_pe_mm_and_port_once() {
        for (n, k) in [(8usize, 2usize), (16, 4)] {
            let t = Topology::new(n, k);
            let text = t.render();
            // Every PE and MM appears exactly once as an endpoint.
            for pe in 0..n {
                let needle = format!("PE{pe}");
                let hits = text
                    .match_indices(&needle)
                    .filter(|(i, _)| {
                        // Avoid counting PE1 inside PE10 etc.
                        !text[i + needle.len()..].starts_with(|c: char| c.is_ascii_digit())
                    })
                    .count();
                assert_eq!(hits, 1, "PE{pe} in\n{text}");
            }
            for mm in 0..n {
                let needle = format!("MM{mm}");
                let hits = text
                    .match_indices(&needle)
                    .filter(|(i, _)| {
                        !text[i + needle.len()..].starts_with(|c: char| c.is_ascii_digit())
                    })
                    .count();
                assert_eq!(hits, 1, "MM{mm} in\n{text}");
            }
            // No input port was left unwired.
            assert!(!text.contains('?'), "unwired port in\n{text}");
        }
    }
}

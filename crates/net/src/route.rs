//! Omega-network topology: perfect-shuffle wiring, destination-tag routing,
//! and the origin/destination amalgam address (§3.1.1).
//!
//! The network connects `N = k^D` PEs to `N` MMs through `D` stages of
//! `k×k` switches (`N/k` switches per stage). Identifiers are written base
//! `k` as `x_D … x_1` (digit 1 least significant). A request from
//! `PE(p_D…p_1)` to `MM(m_D…m_1)` leaves the stage-`s` switch (stages
//! numbered `0..D` from the PE side) on output port `m_{D-s}`; the reply
//! leaves the same stage on ToPE port `p_{D-s}`.
//!
//! Only one `D`-digit address — the *amalgam* — need travel with a message:
//! it enters holding the destination, and each stage replaces the digit it
//! consumed with the arrival-port digit, so the origin address materializes
//! exactly when the destination digits run out. [`Topology::step_amalgam`]
//! implements that register update; the simulator routes redundantly from
//! the full `src`/`addr` fields and debug-asserts agreement.

use ultra_sim::ids::digits;
use ultra_sim::{MmId, PeId};

/// Where a forward (PE→MM) message goes after leaving a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardHop {
    /// Into the next stage: `(switch index, arrival port)`.
    ToSwitch(usize, usize),
    /// Off the last stage into a memory module.
    ToMm(MmId),
}

/// Where a reverse (MM→PE) message goes after leaving a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReverseHop {
    /// Into the previous stage: `(switch index, arrival port)`.
    ToSwitch(usize, usize),
    /// Off stage 0 into a processing element.
    ToPe(PeId),
}

/// The static wiring of an `N`-PE Omega network built from `k×k` switches.
///
/// # Example
///
/// ```
/// use ultra_net::route::Topology;
///
/// let topo = Topology::new(64, 4);
/// assert_eq!(topo.stages(), 3);
/// assert_eq!(topo.switches_per_stage(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    k: usize,
    stages: u32,
}

impl Topology {
    /// Creates the wiring for `n` PEs with `k×k` switches.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive power of `k` and `k >= 2`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        let stages = digits::count(n, k);
        assert!(stages >= 1, "need at least one stage (n > 1)");
        Self { n, k, stages }
    }

    /// Number of PEs (= number of MMs).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Switch arity.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of switch stages, `D = log_k N`.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages as usize
    }

    /// Switches in each stage, `N / k`.
    #[must_use]
    pub fn switches_per_stage(&self) -> usize {
        self.n / self.k
    }

    /// The perfect `k`-shuffle of line `line`: rotate the base-`k`
    /// representation left by one digit.
    #[must_use]
    pub fn shuffle(&self, line: usize) -> usize {
        debug_assert!(line < self.n);
        (line * self.k) % self.n + (line * self.k) / self.n
    }

    /// Inverse of [`Topology::shuffle`]: rotate right by one digit.
    #[must_use]
    pub fn unshuffle(&self, line: usize) -> usize {
        debug_assert!(line < self.n);
        line / self.k + (line % self.k) * (self.n / self.k)
    }

    /// Switch and arrival port at which `pe`'s requests enter stage 0.
    #[must_use]
    pub fn pe_entry(&self, pe: PeId) -> (usize, usize) {
        let line = self.shuffle(pe.0);
        (line / self.k, line % self.k)
    }

    /// Output port a request for `mm` takes at stage `stage`: digit
    /// `m_{D-stage}` of the destination.
    #[must_use]
    pub fn forward_out_port(&self, mm: MmId, stage: usize) -> usize {
        digits::digit(mm.0, self.k, self.stages - stage as u32)
    }

    /// Where a message leaving `(stage, switch, out_port)` lands.
    #[must_use]
    pub fn forward_next(&self, stage: usize, switch: usize, out_port: usize) -> ForwardHop {
        let line = switch * self.k + out_port;
        if stage + 1 == self.stages() {
            ForwardHop::ToMm(MmId(line))
        } else {
            let next = self.shuffle(line);
            ForwardHop::ToSwitch(next / self.k, next % self.k)
        }
    }

    /// Switch and arrival port at which a reply from `mm` enters the last
    /// stage (it re-enters on the port the request departed from).
    #[must_use]
    pub fn reverse_entry(&self, mm: MmId) -> (usize, usize) {
        (mm.0 / self.k, mm.0 % self.k)
    }

    /// ToPE output port a reply for `pe` takes at stage `stage`: digit
    /// `p_{D-stage}` — exactly the port the request arrived on (§3.1.1).
    #[must_use]
    pub fn reverse_out_port(&self, pe: PeId, stage: usize) -> usize {
        digits::digit(pe.0, self.k, self.stages - stage as u32)
    }

    /// Where a reply leaving `(stage, switch, to_pe_port)` lands.
    #[must_use]
    pub fn reverse_next(&self, stage: usize, switch: usize, out_port: usize) -> ReverseHop {
        let line = self.unshuffle(switch * self.k + out_port);
        if stage == 0 {
            ReverseHop::ToPe(PeId(line))
        } else {
            ReverseHop::ToSwitch(line / self.k, line % self.k)
        }
    }

    /// The reverse-trip amalgam of a reply destined for `pe` (about a word
    /// in `mm`) as it *enters* stage `stage` — i.e. after the stages closer
    /// to the MMs have already replaced their PE digits with MM digits.
    ///
    /// Used when a switch manufactures a decombined reply (§3.3): the spawn
    /// must carry the amalgam the absorbed request's reply would have had at
    /// that point of the return trip.
    #[must_use]
    pub fn reverse_amalgam_at(&self, pe: PeId, mm: MmId, stage: usize) -> usize {
        let mut amalgam = pe.0;
        for s in (stage + 1..self.stages()).rev() {
            // On the return trip a reply enters each switch on the port the
            // request departed from: the forward output-port digit.
            let in_port = self.forward_out_port(mm, s);
            let (_, updated) = self.step_amalgam(amalgam, s, in_port);
            amalgam = updated;
        }
        amalgam
    }

    /// Renders the wiring as text in the spirit of the paper's Figure 2:
    /// one line per switch, listing what feeds each input port and where
    /// each output port leads.
    ///
    /// ```
    /// use ultra_net::route::Topology;
    ///
    /// let diagram = Topology::new(8, 2).render();
    /// assert!(diagram.contains("stage 0"));
    /// assert!(diagram.contains("MM7"));
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Omega network: {} PEs, {}x{} switches, {} stages",
            self.n,
            self.k,
            self.k,
            self.stages()
        );
        for stage in 0..self.stages() {
            let _ = writeln!(out, "stage {stage}:");
            for sw in 0..self.switches_per_stage() {
                // Inputs: who feeds (sw, port)?
                let mut ins: Vec<String> = vec![String::from("?"); self.k];
                if stage == 0 {
                    for pe in 0..self.n {
                        let (s, p) = self.pe_entry(PeId(pe));
                        if s == sw {
                            ins[p] = format!("PE{pe}");
                        }
                    }
                } else {
                    for psw in 0..self.switches_per_stage() {
                        for pport in 0..self.k {
                            if let ForwardHop::ToSwitch(s, p) =
                                self.forward_next(stage - 1, psw, pport)
                            {
                                if s == sw {
                                    ins[p] = format!("S{}.{psw}:{pport}", stage - 1);
                                }
                            }
                        }
                    }
                }
                // Outputs: where does (sw, port) lead?
                let outs: Vec<String> = (0..self.k)
                    .map(|port| match self.forward_next(stage, sw, port) {
                        ForwardHop::ToSwitch(s, p) => format!("S{}.{s}:{p}", stage + 1),
                        ForwardHop::ToMm(mm) => format!("MM{}", mm.0),
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "  S{stage}.{sw}  in[{}]  out[{}]",
                    ins.join(", "),
                    outs.join(", ")
                );
            }
        }
        out
    }

    /// The §3.1.1 amalgam register update performed by a stage-`stage`
    /// switch on either trip: read the outgoing-port digit, then overwrite
    /// it with the arrival-port digit. Returns
    /// `(out_port, updated_amalgam)`.
    #[must_use]
    pub fn step_amalgam(&self, amalgam: usize, stage: usize, in_port: usize) -> (usize, usize) {
        let j = self.stages - stage as u32; // 1-based digit index
        let weight = self.k.pow(j - 1);
        let out_port = (amalgam / weight) % self.k;
        let updated = amalgam - out_port * weight + in_port * weight;
        (out_port, updated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_rotates_digits_left() {
        let t = Topology::new(8, 2);
        // 0b011 -> 0b110, 0b100 -> 0b001.
        assert_eq!(t.shuffle(0b011), 0b110);
        assert_eq!(t.shuffle(0b100), 0b001);
    }

    #[test]
    fn unshuffle_inverts_shuffle() {
        for (n, k) in [(8, 2), (64, 4), (64, 8), (16, 16)] {
            let t = Topology::new(n, k);
            for line in 0..n {
                assert_eq!(t.unshuffle(t.shuffle(line)), line);
                assert_eq!(t.shuffle(t.unshuffle(line)), line);
            }
        }
    }

    /// Walks the forward path switch-by-switch the way the simulator does,
    /// updating the amalgam, and checks arrival at the right MM with the
    /// amalgam transmuted into the source PE number.
    fn walk_forward(t: &Topology, pe: PeId, mm: MmId) {
        let (mut sw, mut in_port) = t.pe_entry(pe);
        let mut amalgam = mm.0;
        for stage in 0..t.stages() {
            let out = t.forward_out_port(mm, stage);
            let (am_out, updated) = t.step_amalgam(amalgam, stage, in_port);
            assert_eq!(am_out, out, "amalgam routing must agree with digit routing");
            amalgam = updated;
            match t.forward_next(stage, sw, out) {
                ForwardHop::ToSwitch(s, p) => {
                    sw = s;
                    in_port = p;
                }
                ForwardHop::ToMm(m) => {
                    assert_eq!(stage + 1, t.stages());
                    assert_eq!(m, mm, "request must arrive at its destination MM");
                }
            }
        }
        assert_eq!(amalgam, pe.0, "amalgam must end as the origin PE number");
    }

    /// Walks the reverse path and checks arrival at the right PE with the
    /// amalgam transmuted back into the MM number.
    fn walk_reverse(t: &Topology, pe: PeId, mm: MmId) {
        let (mut sw, mut in_port) = t.reverse_entry(mm);
        let mut amalgam = pe.0;
        for stage in (0..t.stages()).rev() {
            assert_eq!(
                amalgam,
                t.reverse_amalgam_at(pe, mm, stage),
                "closed form must match the walked reverse amalgam"
            );
            let out = t.reverse_out_port(pe, stage);
            let (am_out, updated) = t.step_amalgam(amalgam, stage, in_port);
            assert_eq!(am_out, out);
            amalgam = updated;
            match t.reverse_next(stage, sw, out) {
                ReverseHop::ToSwitch(s, p) => {
                    assert!(stage > 0);
                    sw = s;
                    in_port = p;
                }
                ReverseHop::ToPe(p) => {
                    assert_eq!(stage, 0);
                    assert_eq!(p, pe, "reply must arrive at the originating PE");
                }
            }
        }
        assert_eq!(amalgam, mm.0, "reverse amalgam must end as the MM number");
    }

    #[test]
    fn every_pair_routes_correctly_k2() {
        let t = Topology::new(64, 2);
        for pe in 0..64 {
            for mm in 0..64 {
                walk_forward(&t, PeId(pe), MmId(mm));
                walk_reverse(&t, PeId(pe), MmId(mm));
            }
        }
    }

    #[test]
    fn every_pair_routes_correctly_k4() {
        let t = Topology::new(64, 4);
        for pe in 0..64 {
            for mm in 0..64 {
                walk_forward(&t, PeId(pe), MmId(mm));
                walk_reverse(&t, PeId(pe), MmId(mm));
            }
        }
    }

    #[test]
    fn every_pair_routes_correctly_k8() {
        let t = Topology::new(64, 8);
        for pe in 0..64 {
            for mm in 0..64 {
                walk_forward(&t, PeId(pe), MmId(mm));
                walk_reverse(&t, PeId(pe), MmId(mm));
            }
        }
    }

    #[test]
    fn single_stage_network_is_a_crossbar() {
        let t = Topology::new(4, 4);
        assert_eq!(t.stages(), 1);
        for pe in 0..4 {
            for mm in 0..4 {
                walk_forward(&t, PeId(pe), MmId(mm));
                walk_reverse(&t, PeId(pe), MmId(mm));
            }
        }
    }

    #[test]
    fn paper_figure2_example_dimensions() {
        // Figure 2 of the paper: N = 8, 2x2 switches, 3 stages of 4.
        let t = Topology::new(8, 2);
        assert_eq!(t.stages(), 3);
        assert_eq!(t.switches_per_stage(), 4);
    }

    #[test]
    fn paths_to_same_mm_converge() {
        // All requests for one MM must exit the last stage at the same
        // switch/port — the tree property combining relies on.
        let t = Topology::new(16, 2);
        let mm = MmId(11);
        let mut exits = std::collections::HashSet::new();
        for pe in 0..16 {
            let (mut sw, mut _ip) = t.pe_entry(PeId(pe));
            for stage in 0..t.stages() {
                let out = t.forward_out_port(mm, stage);
                match t.forward_next(stage, sw, out) {
                    ForwardHop::ToSwitch(s, p) => {
                        sw = s;
                        _ip = p;
                    }
                    ForwardHop::ToMm(m) => {
                        exits.insert((sw, out));
                        assert_eq!(m, mm);
                    }
                }
            }
        }
        assert_eq!(exits.len(), 1, "all paths to an MM share the final link");
    }

    #[test]
    #[should_panic(expected = "not a power")]
    fn rejects_non_power_sizes() {
        let _ = Topology::new(12, 2);
    }

    #[test]
    fn render_covers_every_pe_mm_and_port_once() {
        for (n, k) in [(8usize, 2usize), (16, 4)] {
            let t = Topology::new(n, k);
            let text = t.render();
            // Every PE and MM appears exactly once as an endpoint.
            for pe in 0..n {
                let needle = format!("PE{pe}");
                let hits = text
                    .match_indices(&needle)
                    .filter(|(i, _)| {
                        // Avoid counting PE1 inside PE10 etc.
                        !text[i + needle.len()..].starts_with(|c: char| c.is_ascii_digit())
                    })
                    .count();
                assert_eq!(hits, 1, "PE{pe} in\n{text}");
            }
            for mm in 0..n {
                let needle = format!("MM{mm}");
                let hits = text
                    .match_indices(&needle)
                    .filter(|(i, _)| {
                        !text[i + needle.len()..].starts_with(|c: char| c.is_ascii_digit())
                    })
                    .count();
                assert_eq!(hits, 1, "MM{mm} in\n{text}");
            }
            // No input port was left unwired.
            assert!(!text.contains('?'), "unwired port in\n{text}");
        }
    }
}

//! Switch output queues (§3.3, §3.3.1).
//!
//! The paper associates a queue with each switch output port. The ToMM
//! queues are enhanced VLSI systolic queues (Guibas & Liang) that preserve
//! FIFO order *and* support the associative search used for combining; the
//! ToPE queues are plain FIFOs. Behaviourally, both reduce to the structure
//! modelled here: a FIFO of messages with
//!
//! * capacity measured in **packets** (§4.2 limits each queue to fifteen
//!   packets; a data message is three packets, a control message one);
//! * a transmit link that carries one packet per cycle, so a message of
//!   `L` packets occupies the link for `L` cycles while its *head* reaches
//!   the next stage after a single cycle (the paper's cut-through
//!   pipelining: "the delay at each switch is only one cycle if the queues
//!   are empty");
//! * iteration over queued entries for the combining search.
//!
//! The generic parameter lets the same structure serve requests
//! ([`crate::message::Message`]) and replies ([`crate::message::Reply`]).

use std::collections::VecDeque;
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::Cycle;

/// A queued message plus its bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slot<T> {
    /// The queued message.
    pub item: T,
    /// Cycle at which the message head finished arriving; it may not be
    /// transmitted before this.
    pub head_arrival: Cycle,
    /// Whether this slot has already taken part in a combine in this switch
    /// (§3.3 pair-only restriction).
    pub combined_here: bool,
    /// Current length in packets (can change when a combine mutates the
    /// message kind).
    pub packets: u8,
}

/// A switch output queue with packet-granularity capacity and link timing.
///
/// # Example
///
/// ```
/// use ultra_net::queue::OutQueue;
///
/// let mut q: OutQueue<&str> = OutQueue::new(15);
/// q.push("hello", 3, 5);
/// assert_eq!(q.packets_used(), 3);
/// assert!(!q.ready_to_transmit(4)); // head not fully usable before cycle 5
/// assert!(q.ready_to_transmit(5));
/// let slot = q.pop_for_transmit(5);
/// assert_eq!(slot.item, "hello");
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutQueue<T> {
    entries: VecDeque<Slot<T>>,
    packets_used: usize,
    max_packets_used: usize,
    capacity_packets: usize,
    link_free_at: Cycle,
}

impl<T> OutQueue<T> {
    /// Creates a queue holding at most `capacity_packets` packets
    /// (`usize::MAX` models the analytic infinite queue).
    #[must_use]
    pub fn new(capacity_packets: usize) -> Self {
        Self {
            entries: VecDeque::new(),
            packets_used: 0,
            max_packets_used: 0,
            capacity_packets,
            link_free_at: 0,
        }
    }

    /// Whether a message of `packets` packets fits right now.
    #[must_use]
    pub fn can_accept(&self, packets: u8) -> bool {
        self.packets_used + packets as usize <= self.capacity_packets
    }

    /// Enqueues a message whose head finishes arriving at `head_arrival`.
    ///
    /// # Panics
    ///
    /// Panics if the queue lacks space — callers must check
    /// [`OutQueue::can_accept`] first (the upstream switch holds a message
    /// until space exists; see §3.3 "the message might be delayed if the
    /// queue this message is due to enter is already full").
    pub fn push(&mut self, item: T, packets: u8, head_arrival: Cycle) {
        assert!(
            self.can_accept(packets),
            "queue overflow: caller must check"
        );
        self.packets_used += packets as usize;
        self.max_packets_used = self.max_packets_used.max(self.packets_used);
        self.entries.push_back(Slot {
            item,
            head_arrival,
            combined_here: false,
            packets,
        });
    }

    /// Whether the head message may start transmission at `now`: the queue
    /// is non-empty, the link is idle, and the head has arrived.
    #[must_use]
    pub fn ready_to_transmit(&self, now: Cycle) -> bool {
        now >= self.link_free_at && self.entries.front().is_some_and(|s| now >= s.head_arrival)
    }

    /// Pops the head for transmission starting at `now`, marking the link
    /// busy for the message's packet count.
    ///
    /// # Panics
    ///
    /// Panics if [`OutQueue::ready_to_transmit`] would return `false`.
    pub fn pop_for_transmit(&mut self, now: Cycle) -> Slot<T> {
        assert!(self.ready_to_transmit(now), "transmit when not ready");
        let slot = self.entries.pop_front().expect("non-empty");
        self.packets_used -= slot.packets as usize;
        self.link_free_at = now + Cycle::from(slot.packets);
        slot
    }

    /// Iterates mutably over queued slots — the combining search (§3.3.1).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Slot<T>> {
        self.entries.iter_mut()
    }

    /// Iterates over queued slots without mutating them.
    pub fn iter(&self) -> impl Iterator<Item = &Slot<T>> {
        self.entries.iter()
    }

    /// The slot at the head of the queue, if any.
    #[must_use]
    pub fn front(&self) -> Option<&Slot<T>> {
        self.entries.front()
    }

    /// Mutable access to the slot at `index` (0 = head).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn slot_mut(&mut self, index: usize) -> &mut Slot<T> {
        &mut self.entries[index]
    }

    /// Adjusts the recorded packet length of a slot after a combine mutated
    /// its message kind (e.g. a Load slot adopting a Store's identity grows
    /// from one packet to three). Capacity may be transiently exceeded: the
    /// incoming message's packets had already been granted queue space.
    pub fn resize_slot(&mut self, index: usize, packets: u8) {
        let slot = &mut self.entries[index];
        self.packets_used = self.packets_used - slot.packets as usize + packets as usize;
        self.max_packets_used = self.max_packets_used.max(self.packets_used);
        slot.packets = packets;
    }

    /// Number of queued messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no messages are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Packets currently occupying the queue.
    #[must_use]
    pub fn packets_used(&self) -> usize {
        self.packets_used
    }

    /// The queue's packet capacity.
    #[must_use]
    pub fn capacity_packets(&self) -> usize {
        self.capacity_packets
    }

    /// High-water mark of packet occupancy over the queue's lifetime —
    /// the empirical answer to §4.2's "queues of modest size" question.
    #[must_use]
    pub fn max_packets_used(&self) -> usize {
        self.max_packets_used
    }

    /// Cycle at which the output link next becomes idle.
    #[must_use]
    pub fn link_free_at(&self) -> Cycle {
        self.link_free_at
    }
}

impl<T: Wire> Wire for Slot<T> {
    fn encode(&self, w: &mut WireWriter) {
        self.item.encode(w);
        w.u64(self.head_arrival);
        w.bool(self.combined_here);
        w.u8(self.packets);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            item: T::decode(r)?,
            head_arrival: r.u64()?,
            combined_here: r.bool()?,
            packets: r.u8()?,
        })
    }
}

impl<T: Wire> Wire for OutQueue<T> {
    fn encode(&self, w: &mut WireWriter) {
        // `packets_used` is derivable from the slots; capacity is part of
        // the static config, but a snapshot must restore it because combines
        // may transiently exceed it (see `resize_slot`) and the analytic
        // infinite-queue case uses `usize::MAX`.
        self.entries.encode(w);
        w.usize(self.max_packets_used);
        w.usize(self.capacity_packets);
        w.u64(self.link_free_at);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let entries: VecDeque<Slot<T>> = VecDeque::decode(r)?;
        let packets_used = entries.iter().map(|s| s.packets as usize).sum();
        Ok(Self {
            entries,
            packets_used,
            max_packets_used: r.usize()?,
            capacity_packets: r.usize()?,
            link_free_at: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_in_packets() {
        let mut q: OutQueue<u32> = OutQueue::new(7);
        assert!(q.can_accept(3));
        q.push(1, 3, 0);
        q.push(2, 3, 0);
        assert!(q.can_accept(1));
        assert!(!q.can_accept(3), "only one packet left");
        q.push(3, 1, 0);
        assert!(!q.can_accept(1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.packets_used(), 7);
    }

    #[test]
    #[should_panic(expected = "queue overflow")]
    fn push_without_space_panics() {
        let mut q: OutQueue<u32> = OutQueue::new(3);
        q.push(1, 3, 0);
        q.push(2, 1, 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q: OutQueue<u32> = OutQueue::new(usize::MAX);
        for i in 0..5 {
            q.push(i, 1, 0);
        }
        for i in 0..5 {
            let now = i as Cycle * 2;
            assert_eq!(q.pop_for_transmit(now).item, i);
        }
    }

    #[test]
    fn link_busy_for_message_length() {
        let mut q: OutQueue<u32> = OutQueue::new(usize::MAX);
        q.push(1, 3, 0);
        q.push(2, 1, 0);
        assert!(q.ready_to_transmit(0));
        let _ = q.pop_for_transmit(0);
        // Link busy until cycle 3: the 3-packet message streams out.
        assert!(!q.ready_to_transmit(1));
        assert!(!q.ready_to_transmit(2));
        assert!(q.ready_to_transmit(3));
        assert_eq!(q.link_free_at(), 3);
    }

    #[test]
    fn head_arrival_gates_transmission() {
        let mut q: OutQueue<u32> = OutQueue::new(usize::MAX);
        q.push(9, 1, 10);
        assert!(!q.ready_to_transmit(9));
        assert!(q.ready_to_transmit(10));
    }

    #[test]
    fn resize_slot_tracks_packets() {
        let mut q: OutQueue<u32> = OutQueue::new(usize::MAX);
        q.push(1, 1, 0);
        q.push(2, 3, 0);
        q.resize_slot(0, 3); // a Load slot grew into a Store
        assert_eq!(q.packets_used(), 6);
        let s = q.pop_for_transmit(0);
        assert_eq!(s.packets, 3);
        assert_eq!(q.packets_used(), 3);
    }

    #[test]
    fn iter_mut_sees_all_entries() {
        let mut q: OutQueue<u32> = OutQueue::new(usize::MAX);
        q.push(1, 1, 0);
        q.push(2, 1, 0);
        for slot in q.iter_mut() {
            slot.item *= 10;
        }
        assert_eq!(q.pop_for_transmit(0).item, 10);
    }

    #[test]
    fn empty_queue_not_ready() {
        let q: OutQueue<u32> = OutQueue::new(4);
        assert!(!q.ready_to_transmit(100));
        assert!(q.is_empty());
    }
}

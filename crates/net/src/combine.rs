//! Pairwise request combining and reply decombining (§3.1.2, §3.1.3, §3.3).
//!
//! When two requests referencing the same memory word meet in a switch's
//! ToMM queue, the switch merges them into one forward request and records a
//! [`WaitEntry`]; when the surviving request's reply passes back through the
//! switch, the entry is consulted to manufacture the absorbed request's
//! reply. The rules implemented here are the paper's, generalized from
//! fetch-and-add to any associative fetch-and-phi:
//!
//! | queued (serialized first unless noted) | incoming | forwarded | absorbed gets |
//! |---|---|---|---|
//! | `Load` | `Load` | the load | `Y` (pass through) |
//! | `Store(f)` | `Load` | the store | `f` |
//! | `Load` | `Store(f)` | the store (store serialized first) | `f` |
//! | `Store(e)` | `Store(f)` | `Store(f)` | ack |
//! | `FΦ(op,e)` | `FΦ(op,f)` | `FΦ(op, φ(e,f))` | `φ(Y, e)` |
//! | `FΦ(op,e)` | `Load` | unchanged | `φ(Y, e)` |
//! | `Load` | `FΦ(op,e)` | `FΦ(op,e)` (load serialized first) | `Y` |
//! | `Store(f)` | `FΦ(op,e)` | `Store(φ(f,e))` | `f` |
//! | `FΦ(op,e)` | `Store(f)` | `Store(φ(f,e))` (store serialized first) | `f` |
//!
//! `Y` is the value the memory returns for the surviving request. The
//! `FΦ+Load` rules generalize the paper's "Treat Load(X) as FetchAdd(X,0)"
//! (§3.1.3 item 2); because the switch can evaluate `φ(Y, e)` directly, no
//! identity element is needed and the rules apply even to the
//! non-commutative swap operator. Where the forwarded request must be the
//! *other* one (e.g. Load+Store), the queued slot takes over the incoming
//! request's identity; the reply kind seen by each PE is always the kind
//! its own request demands.

use crate::message::{Message, MsgId, MsgKind, PhiOp, Reply, ReplyKind};
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Cycle, MemAddr, PeId, Value};

/// How to manufacture the absorbed request's reply from the survivor's
/// reply value `Y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyRule {
    /// The absorbed request receives `Y` unchanged.
    PassThrough,
    /// The absorbed request receives `φ(Y, delta)` (fetch-and-phi pairs).
    Phi(PhiOp, Value),
    /// The absorbed request receives a value fixed at combine time
    /// (load/fetch satisfied by a store's datum).
    Const(Value),
    /// The absorbed request receives a dataless acknowledgement.
    Ack,
}

impl Wire for ReplyRule {
    fn encode(&self, w: &mut WireWriter) {
        match *self {
            Self::PassThrough => w.u8(0),
            Self::Phi(op, delta) => {
                w.u8(1);
                op.encode(w);
                w.i64(delta);
            }
            Self::Const(v) => {
                w.u8(2);
                w.i64(v);
            }
            Self::Ack => w.u8(3),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::PassThrough,
            1 => Self::Phi(PhiOp::decode(r)?, r.i64()?),
            2 => Self::Const(r.i64()?),
            3 => Self::Ack,
            _ => return Err(WireError::Invalid("reply-rule tag")),
        })
    }
}

/// A wait-buffer record: everything needed to answer the absorbed request
/// when the survivor's reply returns through this switch (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEntry {
    /// Id of the surviving (forwarded) request; the wait buffer is keyed by
    /// this.
    pub survivor: MsgId,
    /// Id of the absorbed request.
    pub absorbed_id: MsgId,
    /// PE awaiting the absorbed request's reply.
    pub absorbed_pe: PeId,
    /// The shared memory word (part of the §3.3 match key).
    pub addr: MemAddr,
    /// Injection cycle of the absorbed request (latency accounting).
    pub absorbed_issued_at: Cycle,
    /// Reply kind owed to the absorbed request.
    pub absorbed_reply_kind: ReplyKind,
    /// Value-manufacturing rule.
    pub rule: ReplyRule,
}

impl Wire for WaitEntry {
    fn encode(&self, w: &mut WireWriter) {
        self.survivor.encode(w);
        self.absorbed_id.encode(w);
        self.absorbed_pe.encode(w);
        self.addr.encode(w);
        w.u64(self.absorbed_issued_at);
        self.absorbed_reply_kind.encode(w);
        self.rule.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            survivor: MsgId::decode(r)?,
            absorbed_id: MsgId::decode(r)?,
            absorbed_pe: PeId::decode(r)?,
            addr: MemAddr::decode(r)?,
            absorbed_issued_at: r.u64()?,
            absorbed_reply_kind: ReplyKind::decode(r)?,
            rule: ReplyRule::decode(r)?,
        })
    }
}

impl WaitEntry {
    /// Manufactures the absorbed request's reply given the survivor's reply
    /// value `y`. The reverse-trip `amalgam` must be supplied by the caller
    /// (it depends on the stage at which the entry lives).
    #[must_use]
    pub fn make_reply(&self, y: Value, amalgam: usize) -> Reply {
        let value = match self.rule {
            ReplyRule::PassThrough => y,
            ReplyRule::Phi(op, delta) => op.apply(y, delta),
            ReplyRule::Const(v) => v,
            ReplyRule::Ack => 0,
        };
        Reply {
            id: self.absorbed_id,
            dst: self.absorbed_pe,
            addr: self.addr,
            value,
            kind: self.absorbed_reply_kind,
            request_issued_at: self.absorbed_issued_at,
            mm_injected_at: 0,
            amalgam,
            // Only attempt-0 requests ever combine, so the absorbed
            // request's owed reply is always for its original issue.
            attempt: 0,
        }
    }
}

/// Whether two kinds can combine at all (used for cheap pre-screening).
#[must_use]
pub fn kinds_combinable(a: MsgKind, b: MsgKind) -> bool {
    use MsgKind::{FetchPhi, Load, Store};
    match (a, b) {
        (Load, Load) | (Store, Store) | (Load, Store) | (Store, Load) => true,
        (FetchPhi(x), FetchPhi(y)) => x == y,
        (FetchPhi(_), Load) | (Load, FetchPhi(_)) => true,
        (FetchPhi(_), Store) | (Store, FetchPhi(_)) => true,
    }
}

/// Attempts to combine `incoming` into the queued request `queued`.
///
/// On success the queued slot is mutated into the request that continues
/// toward memory (its id, kind and value may all change) and a [`WaitEntry`]
/// describing the absorbed request is returned. On failure (`None`) neither
/// argument is modified.
///
/// The caller is responsible for the §3.3 *pair-only* restriction (a slot
/// that has already combined in this switch must not be offered again) and
/// for wait-buffer capacity.
#[must_use]
pub fn try_combine(queued: &mut Message, incoming: &Message) -> Option<WaitEntry> {
    if queued.addr != incoming.addr {
        return None;
    }
    // Retried requests never combine: the original issue may still be
    // alive somewhere in the machine, and the exactly-once guarantee
    // requires that a duplicate of an already-applied logical request is
    // only ever recognized at the MM's dedup cache — folding it into a
    // fresh request would smuggle its effect past that cache. The same
    // check also declines the (pathological) meeting of two messages that
    // already share a folded constituent.
    if queued.attempt > 0
        || incoming.attempt > 0
        || queued.folded.iter().any(|id| incoming.folded.contains(id))
    {
        return None;
    }
    // The forwarded request now answers for every constituent of both.
    let mut folded = queued.folded.clone();
    folded.extend_from(&incoming.folded);
    use MsgKind::{FetchPhi, Load, Store};

    // Each arm decides: (a) what the forwarded request looks like (mutation
    // of `queued`), and (b) the absorbed request's reply rule.
    let entry = match (queued.kind, incoming.kind) {
        // Load + Load: forward one, both get Y.
        (Load, Load) => wait_for(queued.id, incoming, ReplyRule::PassThrough),

        // Store(f) queued, Load incoming: forward the store; the load is
        // satisfied by the store's datum (paper rule 2, §3.1.2).
        (Store, Load) => wait_for(queued.id, incoming, ReplyRule::Const(queued.value)),

        // Load queued, Store incoming: the store must be the one forwarded,
        // so the slot takes over the store's identity; the load is absorbed
        // (serialization: store first, then load).
        (Load, Store) => {
            let absorbed = wait_for(incoming.id, queued, ReplyRule::Const(incoming.value));
            *queued = incoming.clone();
            absorbed
        }

        // Store + Store: forward either and ignore the other (paper rule 3);
        // serializing queued-then-incoming means the incoming datum is the
        // one memory keeps.
        (Store, Store) => {
            queued.value = incoming.value;
            wait_for(queued.id, incoming, ReplyRule::Ack)
        }

        // FetchPhi + FetchPhi with the same operator (§3.1.3, Figure 3):
        // forward FΦ(φ(e,f)); the absorbed request gets φ(Y, e).
        (FetchPhi(op_q), FetchPhi(op_i)) => {
            if op_q != op_i {
                return None;
            }
            let delta = queued.value;
            queued.value = op_q.apply(queued.value, incoming.value);
            wait_for(queued.id, incoming, ReplyRule::Phi(op_q, delta))
        }

        // FetchPhi(e) queued, Load incoming: the load is serialized after
        // the fetch and observes φ(Y, e) — the generalization of the
        // paper's "Treat Load(X) as FetchAdd(X,0)".
        (FetchPhi(op), Load) => wait_for(queued.id, incoming, ReplyRule::Phi(op, queued.value)),

        // Load queued, FetchPhi incoming: serialize the load first — it
        // observes Y; the fetch must be the one reaching memory, so the
        // slot takes over the fetch's identity and the load is absorbed.
        (Load, FetchPhi(_)) => {
            let absorbed = wait_for(incoming.id, queued, ReplyRule::PassThrough);
            *queued = incoming.clone();
            absorbed
        }

        // Store(f) queued, FetchPhi(e) incoming: forward Store(φ(f,e));
        // the fetch observes f (paper rule 3, §3.1.3, serialization
        // store-then-fetch).
        (Store, FetchPhi(op)) => {
            let f = queued.value;
            queued.value = op.apply(f, incoming.value);
            wait_for(queued.id, incoming, ReplyRule::Const(f))
        }

        // FetchPhi(e) queued, Store(f) incoming: same serialization
        // (store first): forward Store(φ(f,e)) under the store's identity;
        // the fetch is absorbed and observes f.
        (FetchPhi(op), Store) => {
            let e = queued.value;
            let f = incoming.value;
            let absorbed = wait_for(incoming.id, queued, ReplyRule::Const(f));
            *queued = incoming.clone();
            queued.value = op.apply(f, e);
            absorbed
        }
    };
    queued.folded = folded;
    Some(entry)
}

/// Builds the wait entry recording that `absorbed`'s reply is owed when
/// `survivor`'s reply returns.
fn wait_for(survivor: MsgId, absorbed: &Message, rule: ReplyRule) -> WaitEntry {
    WaitEntry {
        survivor,
        absorbed_id: absorbed.id,
        absorbed_pe: absorbed.src,
        addr: absorbed.addr,
        absorbed_issued_at: absorbed.issued_at,
        absorbed_reply_kind: if absorbed.kind.reply_carries_data() {
            ReplyKind::Value
        } else {
            ReplyKind::Ack
        },
        rule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_sim::MmId;

    fn req(id: u64, kind: MsgKind, value: Value, pe: usize) -> Message {
        Message::request(
            MsgId(id),
            kind,
            MemAddr::new(MmId(2), 7),
            value,
            PeId(pe),
            0,
        )
    }

    #[test]
    fn different_addresses_never_combine() {
        let mut a = req(1, MsgKind::Load, 0, 0);
        let mut b = req(2, MsgKind::Load, 0, 1);
        b.addr = MemAddr::new(MmId(2), 8);
        b.amalgam = a.amalgam;
        assert!(try_combine(&mut a, &b).is_none());
    }

    #[test]
    fn load_load_passes_through() {
        let mut q = req(1, MsgKind::Load, 0, 0);
        let i = req(2, MsgKind::Load, 0, 1);
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.kind, MsgKind::Load);
        assert_eq!(e.survivor, MsgId(1));
        assert_eq!(e.absorbed_id, MsgId(2));
        let r = e.make_reply(42, 0);
        assert_eq!(r.value, 42);
        assert_eq!(r.kind, ReplyKind::Value);
        assert_eq!(r.dst, PeId(1));
    }

    #[test]
    fn faa_faa_matches_paper_figure3() {
        // F&A(X,e) queued, F&A(X,f) incoming: forward F&A(X, e+f); when Y
        // returns, the queued one gets Y and the incoming one gets Y+e.
        let mut q = req(1, MsgKind::fetch_add(), 5, 0); // e = 5
        let i = req(2, MsgKind::fetch_add(), 9, 1); // f = 9
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.kind, MsgKind::fetch_add());
        assert_eq!(q.value, 14);
        assert_eq!(q.id, MsgId(1));
        let r = e.make_reply(100, 0); // memory held X = 100
        assert_eq!(r.value, 105, "absorbed F&A observes X + e");
        assert_eq!(r.id, MsgId(2));
    }

    #[test]
    fn store_store_keeps_newer_datum() {
        let mut q = req(1, MsgKind::Store, 5, 0);
        let i = req(2, MsgKind::Store, 9, 1);
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.value, 9, "paper: datum of R-old replaced by R-new's");
        let r = e.make_reply(0, 0);
        assert_eq!(r.kind, ReplyKind::Ack);
    }

    #[test]
    fn store_then_load_answers_load_with_datum() {
        let mut q = req(1, MsgKind::Store, 77, 0);
        let i = req(2, MsgKind::Load, 0, 1);
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.kind, MsgKind::Store);
        let r = e.make_reply(0, 0);
        assert_eq!(r.value, 77);
        assert_eq!(r.kind, ReplyKind::Value);
    }

    #[test]
    fn load_then_store_forwards_store_and_answers_load() {
        let mut q = req(1, MsgKind::Load, 0, 0);
        let i = req(2, MsgKind::Store, 55, 1);
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.kind, MsgKind::Store, "store must be the one forwarded");
        assert_eq!(q.id, MsgId(2), "slot takes the store's identity");
        assert_eq!(e.survivor, MsgId(2));
        assert_eq!(e.absorbed_id, MsgId(1));
        let r = e.make_reply(0, 0);
        assert_eq!(r.value, 55);
        assert_eq!(r.kind, ReplyKind::Value);
        assert_eq!(r.dst, PeId(0));
    }

    #[test]
    fn faa_then_load_treats_load_as_faa_zero() {
        let mut q = req(1, MsgKind::fetch_add(), 4, 0);
        let i = req(2, MsgKind::Load, 0, 1);
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.value, 4, "forwarded operand unchanged (identity)");
        let r = e.make_reply(10, 0);
        assert_eq!(r.value, 14, "load observes X + e");
    }

    #[test]
    fn load_then_faa_load_observes_old_value() {
        let mut q = req(1, MsgKind::Load, 0, 0);
        let i = req(2, MsgKind::fetch_add(), 4, 1);
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.kind, MsgKind::fetch_add(), "fetch must reach memory");
        assert_eq!(q.id, MsgId(2));
        assert_eq!(e.absorbed_id, MsgId(1));
        let r = e.make_reply(10, 0);
        assert_eq!(r.value, 10, "load serialized before the fetch sees X");
    }

    #[test]
    fn store_then_faa_matches_paper_rule() {
        // Paper: FetchAdd(X,e)-Store(X,f) -> transmit Store(e+f), satisfy
        // the fetch-and-add by returning f.
        let mut q = req(1, MsgKind::Store, 7, 0); // f = 7
        let i = req(2, MsgKind::fetch_add(), 5, 1); // e = 5
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.kind, MsgKind::Store);
        assert_eq!(q.value, 12);
        let r = e.make_reply(0, 0);
        assert_eq!(r.value, 7, "fetch-and-add observes f");
        assert_eq!(r.kind, ReplyKind::Value);
    }

    #[test]
    fn faa_then_store_swaps_roles() {
        let mut q = req(1, MsgKind::fetch_add(), 5, 0); // e = 5
        let i = req(2, MsgKind::Store, 7, 1); // f = 7
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.kind, MsgKind::Store, "store continues to memory");
        assert_eq!(q.id, MsgId(2));
        assert_eq!(q.value, 12, "memory must end at f + e");
        assert_eq!(e.absorbed_id, MsgId(1));
        let r = e.make_reply(0, 0);
        assert_eq!(r.value, 7, "fetch-and-add observes f");
    }

    #[test]
    fn swap_swap_combines_associatively() {
        // Two swaps: queued inserts e, incoming inserts f. Serialization
        // queued-then-incoming: queued observes X, incoming observes e,
        // memory ends at f.
        let mut q = req(1, MsgKind::FetchPhi(PhiOp::Second), 5, 0);
        let i = req(2, MsgKind::FetchPhi(PhiOp::Second), 9, 1);
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.value, 9, "forwarded operand is φ(e,f) = f");
        let r = e.make_reply(100, 0);
        assert_eq!(r.value, 5, "second swap observes the first's datum");
    }

    #[test]
    fn swap_then_load_observes_swapped_in_value() {
        // Swap(e) queued, Load incoming: the load serialized after the swap
        // observes φ(Y, e) = e. Works despite Second having no identity.
        let mut q = req(1, MsgKind::FetchPhi(PhiOp::Second), 5, 0);
        let i = req(2, MsgKind::Load, 0, 1);
        let e = try_combine(&mut q, &i).unwrap();
        assert!(kinds_combinable(
            MsgKind::FetchPhi(PhiOp::Second),
            MsgKind::Load
        ));
        let r = e.make_reply(100, 0);
        assert_eq!(r.value, 5);
    }

    #[test]
    fn mismatched_phi_ops_decline() {
        let mut q = req(1, MsgKind::FetchPhi(PhiOp::Add), 5, 0);
        let i = req(2, MsgKind::FetchPhi(PhiOp::Max), 9, 1);
        assert!(try_combine(&mut q, &i).is_none());
    }

    #[test]
    fn combining_merges_folded_id_lists() {
        let mut q = req(1, MsgKind::fetch_add(), 5, 0);
        let i = req(2, MsgKind::fetch_add(), 9, 1);
        try_combine(&mut q, &i).unwrap();
        assert_eq!(q.folded, vec![MsgId(1), MsgId(2)]);
        // A second combine keeps accumulating constituents.
        let j = req(3, MsgKind::fetch_add(), 1, 2);
        try_combine(&mut q, &j).unwrap();
        assert_eq!(q.folded, vec![MsgId(1), MsgId(2), MsgId(3)]);
    }

    #[test]
    fn identity_swap_arms_keep_merged_folded_list() {
        // Load + Store swaps identity to the store; the folded list must
        // still cover both constituents.
        let mut q = req(1, MsgKind::Load, 0, 0);
        let i = req(2, MsgKind::Store, 55, 1);
        try_combine(&mut q, &i).unwrap();
        assert_eq!(q.id, MsgId(2));
        assert_eq!(q.folded, vec![MsgId(1), MsgId(2)]);
    }

    #[test]
    fn retried_requests_never_combine() {
        let mut q = req(1, MsgKind::fetch_add(), 5, 0).as_retry(1, 10);
        let i = req(2, MsgKind::fetch_add(), 9, 1);
        assert!(try_combine(&mut q, &i).is_none(), "retried queued declines");
        let mut q2 = req(3, MsgKind::fetch_add(), 5, 0);
        let i2 = req(4, MsgKind::fetch_add(), 9, 1).as_retry(2, 10);
        assert!(
            try_combine(&mut q2, &i2).is_none(),
            "retried incoming declines"
        );
        assert_eq!(q2.value, 5, "declined combine leaves queued untouched");
    }

    #[test]
    fn shared_constituents_never_combine() {
        let mut q = req(1, MsgKind::fetch_add(), 5, 0);
        let mut i = req(2, MsgKind::fetch_add(), 9, 1);
        i.folded = vec![MsgId(2), MsgId(1)].into();
        assert!(try_combine(&mut q, &i).is_none());
    }

    #[test]
    fn max_max_combines() {
        let mut q = req(1, MsgKind::FetchPhi(PhiOp::Max), 5, 0);
        let i = req(2, MsgKind::FetchPhi(PhiOp::Max), 9, 1);
        let e = try_combine(&mut q, &i).unwrap();
        assert_eq!(q.value, 9);
        let r = e.make_reply(3, 0);
        assert_eq!(r.value, 5, "second max observes max(X, e) = max(3,5)");
    }
}

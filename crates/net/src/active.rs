//! Sparse active-set worklists for the cycle sweeps.
//!
//! An idle-heavy fabric is mostly empty: at 4096 PEs the small-`k`
//! configurations build tens of thousands of switches, yet a typical cycle
//! moves messages through a few dozen of them. [`ActiveSet`] tracks, per
//! stage and per direction, exactly which switches currently hold traffic,
//! so a sweep can visit *members* instead of *switches built* — the
//! per-cycle cost then follows occupancy, not topology.
//!
//! The representation is the classic sparse set plus a bitset:
//!
//! * `bits` — one bit per switch, used for O(1) membership tests and for
//!   **deterministic ascending-order iteration** (word scan +
//!   `trailing_zeros`). Ascending order matters: the dense reference sweep
//!   visits switches in ascending index order, and a switch holding no
//!   traffic is a no-op visit, so iterating exactly the non-empty switches
//!   in the same order reproduces the dense engine's operation sequence
//!   bit for bit.
//! * `members`/`pos` — the dense `Vec<u32>` worklist with its position
//!   index, giving O(1) insert/remove and O(members) `clear`, independent
//!   of the universe size.

/// A set of switch indices over a fixed universe `0..universe`.
#[derive(Debug, Clone, Default)]
pub struct ActiveSet {
    /// Membership bitset, one bit per index.
    bits: Vec<u64>,
    /// Hierarchical index over `bits`: bit `w % 64` of `summary[w / 64]`
    /// is set iff `bits[w] != 0`. One summary-word test lets a sweep skip
    /// 64 all-empty bitset words — 4096 switches — at a time, which is
    /// what keeps the per-cycle walk sublinear on 16K–64K-PE fabrics
    /// where a stage holds tens of thousands of switches but single-digit
    /// traffic.
    summary: Vec<u64>,
    /// Dense member list (unsorted).
    members: Vec<u32>,
    /// `pos[i]` = position of `i` in `members` (undefined unless member).
    pos: Vec<u32>,
}

impl ActiveSet {
    /// Creates an empty set over `0..universe`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        let words = universe.div_ceil(64);
        Self {
            bits: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
            members: Vec::new(),
            pos: vec![0; universe],
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `i` is a member.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Inserts `i`; no-op if already present.
    pub fn insert(&mut self, i: usize) {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if self.bits[word] & bit == 0 {
            self.bits[word] |= bit;
            self.summary[word / 64] |= 1 << (word % 64);
            self.pos[i] = self.members.len() as u32;
            self.members.push(i as u32);
        }
    }

    /// Removes `i`; no-op if absent.
    pub fn remove(&mut self, i: usize) {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if self.bits[word] & bit != 0 {
            self.bits[word] &= !bit;
            if self.bits[word] == 0 {
                self.summary[word / 64] &= !(1 << (word % 64));
            }
            let p = self.pos[i] as usize;
            let last = self.members.pop().expect("member list non-empty");
            if p < self.members.len() {
                self.members[p] = last;
                self.pos[last as usize] = p as u32;
            }
        }
    }

    /// Removes every member in O(members).
    pub fn clear(&mut self) {
        for &m in &self.members {
            // Zeroing the whole containing word (and summary word) is
            // sound: every member is being removed, and non-member bits
            // are zero already.
            self.bits[m as usize / 64] = 0;
            self.summary[m as usize / 4096] = 0;
        }
        self.members.clear();
    }

    /// The members in unspecified order (the dense worklist itself).
    #[must_use]
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Number of 64-bit words backing the bitset.
    #[must_use]
    pub fn words(&self) -> usize {
        self.bits.len()
    }

    /// The `w`-th bitset word — the sweep iterates these so that members
    /// come out in ascending index order while tolerating removal of the
    /// index currently being processed (the caller snapshots each word
    /// before consuming its bits).
    #[must_use]
    pub fn word(&self, w: usize) -> u64 {
        self.bits[w]
    }

    /// Number of 64-bit words backing the summary index.
    #[must_use]
    pub fn summary_words(&self) -> usize {
        self.summary.len()
    }

    /// The `sw`-th summary word: bit `w % 64` set means bitset word
    /// `sw * 64 + (w % 64)` is non-zero. Sweeps snapshot these exactly
    /// like [`ActiveSet::word`], skipping 64 empty words per clear bit.
    #[must_use]
    pub fn summary_word(&self, sw: usize) -> u64 {
        self.summary[sw]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation for differential testing.
    fn model_contains(model: &[bool], set: &ActiveSet) {
        let expect: Vec<usize> = (0..model.len()).filter(|&i| model[i]).collect();
        let mut got: Vec<usize> = set.members().iter().map(|&m| m as usize).collect();
        got.sort_unstable();
        assert_eq!(got, expect, "member list diverged from model");
        assert_eq!(set.len(), expect.len());
        for (i, &m) in model.iter().enumerate() {
            assert_eq!(set.contains(i), m, "contains({i})");
        }
        // Bitset word iteration yields the same members ascending.
        let mut scanned = Vec::new();
        for w in 0..set.words() {
            let mut word = set.word(w);
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                word &= word - 1;
                scanned.push(w * 64 + b);
            }
        }
        assert_eq!(scanned, expect, "bitset scan order");
        // The summary index agrees with the bitset: a summary-guided scan
        // yields the same ascending members, and no non-zero word hides
        // behind a clear summary bit.
        let mut via_summary = Vec::new();
        for sw in 0..set.summary_words() {
            let mut sbits = set.summary_word(sw);
            while sbits != 0 {
                let w = sw * 64 + sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                assert_ne!(set.word(w), 0, "summary bit set for empty word {w}");
                let mut word = set.word(w);
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    via_summary.push(w * 64 + b);
                }
            }
        }
        assert_eq!(via_summary, expect, "summary-guided scan order");
        for w in 0..set.words() {
            if set.word(w) != 0 {
                assert_ne!(
                    set.summary_word(w / 64) & (1 << (w % 64)),
                    0,
                    "non-zero word {w} missing from the summary"
                );
            }
        }
    }

    #[test]
    fn random_ops_match_reference_model() {
        let universe = 197; // crosses word boundaries, not a multiple of 64
        let mut set = ActiveSet::new(universe);
        let mut model = vec![false; universe];
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..4000 {
            let i = (next() as usize) % universe;
            match next() % 3 {
                0 => {
                    set.insert(i);
                    model[i] = true;
                }
                1 => {
                    set.remove(i);
                    model[i] = false;
                }
                _ => {
                    set.clear();
                    model.iter_mut().for_each(|m| *m = false);
                }
            }
        }
        model_contains(&model, &set);
    }

    #[test]
    fn insert_remove_are_idempotent() {
        let mut set = ActiveSet::new(70);
        set.insert(65);
        set.insert(65);
        assert_eq!(set.len(), 1);
        assert!(set.contains(65));
        set.remove(65);
        set.remove(65);
        assert!(set.is_empty());
        assert!(!set.contains(65));
    }

    #[test]
    fn clear_resets_everything() {
        let mut set = ActiveSet::new(130);
        for i in [0, 63, 64, 127, 129] {
            set.insert(i);
        }
        set.clear();
        assert!(set.is_empty());
        for i in 0..130 {
            assert!(!set.contains(i));
        }
        set.insert(129);
        assert_eq!(set.members(), &[129]);
    }
}

//! Network configuration.

use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};

/// How a switch resolves two requests wanting the same output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwitchPolicy {
    /// The paper's design (§3.1.2): queue both and *combine* requests
    /// directed at the same memory location.
    #[default]
    QueuedCombining,
    /// Queue both but never combine — isolates the value of combining
    /// (used by the hot-spot ablation, experiment E6).
    QueuedNoCombine,
    /// The Burroughs-style alternative the paper rejects (§3.1.2 item 3):
    /// no queue — a request arriving at a busy output is killed and must be
    /// retried by the PE, which limits bandwidth to `O(N / log N)`.
    DropOnConflict,
}

impl Wire for SwitchPolicy {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            Self::QueuedCombining => 0,
            Self::QueuedNoCombine => 1,
            Self::DropOnConflict => 2,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::QueuedCombining,
            1 => Self::QueuedNoCombine,
            2 => Self::DropOnConflict,
            _ => return Err(WireError::Invalid("switch-policy tag")),
        })
    }
}

/// How [`crate::omega::OmegaNetwork`] iterates switches each cycle.
///
/// Purely a speed knob: both modes visit the same non-empty switches in
/// the same order, so every run is bit-identical regardless of mode (the
/// `engine_parity` suite asserts this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweepMode {
    /// Visit only switches holding traffic, via the per-stage active
    /// sets, falling back to a dense scan for stages whose occupancy
    /// exceeds the fallback threshold. The default.
    #[default]
    Sparse,
    /// Always scan every switch of every stage — the seed behaviour,
    /// kept as the parity reference and for threshold benchmarking.
    Dense,
}

impl Wire for SweepMode {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            Self::Sparse => 0,
            Self::Dense => 1,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::Sparse,
            1 => Self::Dense,
            _ => return Err(WireError::Invalid("sweep-mode tag")),
        })
    }
}

/// Static parameters of one Omega network.
///
/// # Example
///
/// ```
/// use ultra_net::config::NetConfig;
///
/// let cfg = NetConfig::paper_section42();
/// assert_eq!(cfg.pes, 4096);
/// assert_eq!(cfg.k, 4);
/// assert_eq!(cfg.request_queue_packets, 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Number of PEs `N` (must be a power of `k`).
    pub pes: usize,
    /// Switch arity `k`.
    pub k: usize,
    /// Capacity of each ToMM (forward) output queue, in packets
    /// (`usize::MAX` = the analytic model's infinite queues).
    pub request_queue_packets: usize,
    /// Capacity of each ToPE (reverse) output queue, in packets.
    pub reply_queue_packets: usize,
    /// Wait-buffer entries per switch; when full, further combining at that
    /// switch is declined (§3.3).
    pub wait_entries: usize,
    /// Conflict-resolution policy.
    pub policy: SwitchPolicy,
    /// Packets in a message that carries a data word (§4.2 uses 3).
    pub data_packets: u8,
    /// Packets in a dataless message (§4.2 uses 1).
    pub ctl_packets: u8,
}

impl Wire for NetConfig {
    fn encode(&self, w: &mut WireWriter) {
        w.usize(self.pes);
        w.usize(self.k);
        w.usize(self.request_queue_packets);
        w.usize(self.reply_queue_packets);
        w.usize(self.wait_entries);
        self.policy.encode(w);
        w.u8(self.data_packets);
        w.u8(self.ctl_packets);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            pes: r.usize()?,
            k: r.usize()?,
            request_queue_packets: r.usize()?,
            reply_queue_packets: r.usize()?,
            wait_entries: r.usize()?,
            policy: SwitchPolicy::decode(r)?,
            data_packets: r.u8()?,
            ctl_packets: r.u8()?,
        })
    }
}

impl NetConfig {
    /// A small 2×2-switch network for unit tests and examples: `n` PEs,
    /// combining on, queues of 15 packets, ample wait buffers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    #[must_use]
    pub fn small(n: usize) -> Self {
        let cfg = Self {
            pes: n,
            k: 2,
            request_queue_packets: 15,
            reply_queue_packets: usize::MAX,
            wait_entries: 64,
            policy: SwitchPolicy::QueuedCombining,
            data_packets: 3,
            ctl_packets: 1,
        };
        cfg.validate();
        cfg
    }

    /// The configuration simulated in §4.2 of the paper: 4096 PEs reached
    /// through six stages of 4×4 switches, each queue limited to fifteen
    /// packets, messages of one packet (no data) or three (with data).
    #[must_use]
    pub fn paper_section42() -> Self {
        Self::paper_section42_scaled(4096)
    }

    /// The §4.2 configuration scaled down to `n` PEs (must be a power of 4)
    /// so that workload simulations finish quickly at small scale.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of 4.
    #[must_use]
    pub fn paper_section42_scaled(n: usize) -> Self {
        let cfg = Self {
            pes: n,
            k: 4,
            request_queue_packets: 15,
            reply_queue_packets: usize::MAX,
            wait_entries: 64,
            policy: SwitchPolicy::QueuedCombining,
            data_packets: 3,
            ctl_packets: 1,
        };
        cfg.validate();
        cfg
    }

    /// Effective multiplexing factor `m` of the analytic model (§4.1): the
    /// switch cycles needed to input one data-carrying message.
    #[must_use]
    pub fn multiplexing_factor(&self) -> u32 {
        u32::from(self.data_packets)
    }

    /// Checks the invariants.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is not a positive power of `k`, if `k < 2`, or if a
    /// packet length is zero.
    pub fn validate(&self) {
        let _ = ultra_sim::ids::digits::count(self.pes, self.k);
        assert!(
            self.data_packets >= 1,
            "data messages need at least 1 packet"
        );
        assert!(
            self.ctl_packets >= 1,
            "control messages need at least 1 packet"
        );
        assert!(
            self.request_queue_packets as u64 >= u64::from(self.data_packets),
            "queues must hold at least one data message"
        );
    }
}

impl Default for NetConfig {
    /// A 64-PE, 2×2-switch combining network — convenient for examples.
    fn default() -> Self {
        Self::small(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_is_valid() {
        let cfg = NetConfig::small(16);
        assert_eq!(cfg.k, 2);
        assert_eq!(cfg.policy, SwitchPolicy::QueuedCombining);
    }

    #[test]
    fn paper_config_matches_section_4_2() {
        let cfg = NetConfig::paper_section42();
        assert_eq!(cfg.pes, 4096);
        assert_eq!(cfg.k, 4);
        assert_eq!(cfg.request_queue_packets, 15);
        assert_eq!(cfg.data_packets, 3);
        assert_eq!(cfg.ctl_packets, 1);
        assert_eq!(cfg.multiplexing_factor(), 3);
    }

    #[test]
    #[should_panic(expected = "not a power")]
    fn rejects_non_power_of_k() {
        let _ = NetConfig::small(12);
    }

    #[test]
    fn default_is_small_64() {
        assert_eq!(NetConfig::default().pes, 64);
    }
}

//! The assembled Omega network and its per-cycle advancement.
//!
//! [`OmegaNetwork`] wires `D = log_k N` stages of [`crate::switch::Switch`]
//! with perfect-shuffle links ([`crate::route::Topology`]) and advances the
//! whole fabric one switch cycle at a time. The timing model follows the
//! paper's pipelined, message-switched design (§3.1.2, §4.2):
//!
//! * every link (PE→stage 0, stage→stage, stage D−1→MNI and the reverse
//!   direction) carries **one packet per cycle**;
//! * a message's *head* advances one stage per cycle when uncontended
//!   (cut-through), so the minimum one-way transit is `D + m − 1` cycles
//!   for an `m`-packet message — the analytic model's
//!   `(lg n / lg k) + m − 1`;
//! * a full downstream queue stalls the sender (backpressure), except under
//!   [`crate::SwitchPolicy::DropOnConflict`], which kills the request
//!   instead.
//!
//! Each call to [`OmegaNetwork::cycle_into`] performs one sweep in each
//! direction, processing stages sink-first so that a message moves at most
//! one hop per cycle while freed space propagates without extra dead
//! cycles.
//!
//! [`ReplicatedOmega`] stacks `d` identical copies (§4.1: "use several
//! copies of the same network, thereby reducing the effective load"), with
//! requests spread round-robin per PE and replies returned through the copy
//! that carried the request.

use crate::active::ActiveSet;
#[cfg(test)]
use crate::config::SwitchPolicy;
use crate::config::{NetConfig, SweepMode};
use crate::message::{Message, MsgId, Reply};
use crate::route::{ForwardHop, ReverseHop, RouteTables, Topology};
use crate::stats::NetStats;
use crate::switch::{AcceptOutcome, Switch};
use ultra_faults::FaultMask;
use ultra_obs::HeatmapSnapshot;
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Cycle, WorkerPool};

/// Occupancy (in percent of a stage's switches) above which
/// [`SweepMode::Sparse`] scans that stage densely instead of walking the
/// active-set bitset. Chosen from the `engine_step` occupancy microbench
/// (`sweep_occupancy_n256`): the bitset walk measures ~16× faster at 1%
/// occupancy, ~3× at 10%, and still ~1.3× at 90%, so the dense fallback
/// is purely a worst-case guard near saturation and the threshold sits
/// high.
const DENSE_FALLBACK_PERCENT: usize = 75;

/// Everything that emerged from the network during one cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkEvents {
    /// Requests whose tail arrived at their MNI this cycle.
    pub requests_at_mm: Vec<Message>,
    /// Replies whose tail arrived at their PNI this cycle.
    pub replies_at_pe: Vec<Reply>,
    /// Requests killed by [`crate::SwitchPolicy::DropOnConflict`] this cycle; the
    /// issuing PE must retry. (The kill notification is modelled as
    /// returning instantly, which flatters the baseline.)
    pub dropped: Vec<Message>,
}

impl NetworkEvents {
    /// Whether nothing at all emerged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests_at_mm.is_empty() && self.replies_at_pe.is_empty() && self.dropped.is_empty()
    }

    /// Empties all three lists, keeping their capacity — the reusable
    /// buffer contract of [`OmegaNetwork::cycle_into`].
    pub fn clear(&mut self) {
        self.requests_at_mm.clear();
        self.replies_at_pe.clear();
        self.dropped.clear();
    }
}

impl Wire for NetworkEvents {
    fn encode(&self, w: &mut WireWriter) {
        self.requests_at_mm.encode(w);
        self.replies_at_pe.encode(w);
        self.dropped.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            requests_at_mm: Vec::decode(r)?,
            replies_at_pe: Vec::decode(r)?,
            dropped: Vec::decode(r)?,
        })
    }
}

/// Non-panicking counterpart of [`NetConfig::validate`] for decoding
/// untrusted snapshot bytes.
fn check_cfg(cfg: &NetConfig) -> Result<(), WireError> {
    if cfg.k < 2 {
        return Err(WireError::Invalid("switch arity below 2"));
    }
    let mut p = 1usize;
    while p < cfg.pes {
        p = p
            .checked_mul(cfg.k)
            .ok_or(WireError::Invalid("pe count overflows"))?;
    }
    if p != cfg.pes || cfg.pes == 0 {
        return Err(WireError::Invalid("pe count not a power of k"));
    }
    if cfg.data_packets == 0 || cfg.ctl_packets == 0 {
        return Err(WireError::Invalid("zero-length packet config"));
    }
    if (cfg.request_queue_packets as u64) < u64::from(cfg.data_packets) {
        return Err(WireError::Invalid("request queue below one data message"));
    }
    Ok(())
}

/// One `N`-PE combining Omega network.
#[derive(Debug, Clone)]
pub struct OmegaNetwork {
    cfg: NetConfig,
    routes: RouteTables,
    /// `stages[s][i]` = switch `i` of stage `s` (stage 0 on the PE side).
    stages: Vec<Vec<Switch>>,
    /// `active_fwd[s]` = indices of stage-`s` switches whose ToMM queues
    /// hold traffic; maintained exactly on every enqueue/dequeue so the
    /// sparse sweep visits only them.
    active_fwd: Vec<ActiveSet>,
    /// `active_rev[s]` = stage-`s` switches whose ToPE queues hold traffic.
    active_rev: Vec<ActiveSet>,
    sweep: SweepMode,
    pe_link_free: Vec<Cycle>,
    mm_link_free: Vec<Cycle>,
    /// Requests in flight on the last-stage→MNI links: `(tail_arrival, msg)`.
    fwd_egress: Vec<(Cycle, Message)>,
    /// Replies in flight on the stage-0→PNI links.
    rev_egress: Vec<(Cycle, Reply)>,
    /// Drops recorded since the last `cycle` call.
    pending_drops: Vec<Message>,
    next_id: u64,
    stats: NetStats,
    /// Live fault state (§4.1 graceful degradation); healthy by default,
    /// in which case every fault check below short-circuits and the
    /// network behaves bit-identically to a fault-free build.
    mask: FaultMask,
}

impl OmegaNetwork {
    /// Builds the network described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`NetConfig::validate`]).
    #[must_use]
    pub fn new(cfg: NetConfig) -> Self {
        cfg.validate();
        let topo = Topology::new(cfg.pes, cfg.k);
        let stages = (0..topo.stages())
            .map(|s| {
                (0..topo.switches_per_stage())
                    .map(|i| Switch::new(s, i, &cfg))
                    .collect()
            })
            .collect();
        let active = || {
            (0..topo.stages())
                .map(|_| ActiveSet::new(topo.switches_per_stage()))
                .collect()
        };
        Self {
            stats: NetStats::new(topo.stages()),
            cfg,
            routes: RouteTables::new(topo),
            stages,
            active_fwd: active(),
            active_rev: active(),
            sweep: SweepMode::default(),
            pe_link_free: vec![0; cfg.pes],
            mm_link_free: vec![0; cfg.pes],
            fwd_egress: Vec::new(),
            rev_egress: Vec::new(),
            pending_drops: Vec::new(),
            next_id: 1,
            mask: FaultMask::healthy(),
        }
    }

    /// Installs the boot-time fault state of this copy.
    pub fn set_fault_mask(&mut self, mask: FaultMask) {
        self.mask = mask;
    }

    /// The live fault state.
    #[must_use]
    pub fn fault_mask(&self) -> &FaultMask {
        &self.mask
    }

    /// Fail-stops this copy: no new requests are accepted from now on;
    /// traffic already inside (and returning replies) drains normally.
    pub fn kill(&mut self) {
        self.mask.kill_copy();
    }

    /// Fault hook: permanently occupies one wait-buffer slot of switch
    /// `(stage, switch)` (see [`Switch::poison_wait_entry`]).
    ///
    /// # Panics
    ///
    /// Panics if `(stage, switch)` is out of range.
    pub fn poison_wait_entry(&mut self, stage: usize, switch: usize) -> bool {
        self.stages[stage][switch].poison_wait_entry(&mut self.stats)
    }

    /// Whether this copy's faults make it refuse `msg` outright: the copy
    /// is dead, or a dead switch port lies on the request's forward route.
    /// (Distinct from backpressure, which is transient.)
    #[must_use]
    pub fn fault_refuses(&self, msg: &Message) -> bool {
        self.mask.copy_dead() || self.route_blocked(msg)
    }

    /// Whether a dead forward port lies on `msg`'s unique Omega route.
    /// In-flight traffic is unaffected (a port death mid-run only blocks
    /// requests injected after it), so the check runs at injection time.
    fn route_blocked(&self, msg: &Message) -> bool {
        if !self.mask.any_port_dead() {
            return false;
        }
        let (mut sw, _) = self.routes.pe_entry(msg.src);
        for s in 0..self.routes.stages() {
            let out_port = self.routes.forward_out_port(msg.addr.mm, s);
            if self.mask.port_dead(s, sw, out_port) {
                return true;
            }
            match self.routes.forward_next(s, sw, out_port) {
                ForwardHop::ToSwitch(next_sw, _) => sw = next_sw,
                ForwardHop::ToMm(_) => break,
            }
        }
        false
    }

    /// The configuration this network was built with.
    #[must_use]
    pub fn cfg(&self) -> &NetConfig {
        &self.cfg
    }

    /// The static wiring.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.routes.topo()
    }

    /// Selects how the per-cycle sweeps iterate switches (sparse active
    /// sets by default). Purely a speed knob — runs are bit-identical in
    /// either mode.
    pub fn set_sweep_mode(&mut self, mode: SweepMode) {
        self.sweep = mode;
    }

    /// The sweep mode in effect.
    #[must_use]
    pub fn sweep_mode(&self) -> SweepMode {
        self.sweep
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Largest packet occupancy any forward (ToMM) queue in the fabric
    /// reached — the measured counterpart of §4.2's observation that
    /// 18-packet queues behave like infinite ones.
    #[must_use]
    pub fn request_queue_high_water(&self) -> usize {
        self.stages
            .iter()
            .flatten()
            .map(Switch::request_queue_high_water)
            .max()
            .unwrap_or(0)
    }

    /// Wait-buffer entries outstanding across every switch — the
    /// instantaneous combining-capacity gauge the telemetry recorder
    /// samples at window boundaries.
    #[must_use]
    pub fn total_wait_occupancy(&self) -> u64 {
        self.stages
            .iter()
            .flatten()
            .map(|sw| sw.wait_occupancy() as u64)
            .sum()
    }

    /// Snapshots the per-switch hot-spot matrices: cumulative combine
    /// counts, request-queue high-water marks, and instantaneous
    /// wait-buffer occupancy for every switch in the fabric.
    #[must_use]
    pub fn heatmap(&self) -> HeatmapSnapshot {
        let stages = self.stages.len();
        let width = self.stages.first().map_or(0, Vec::len);
        let mut snap = HeatmapSnapshot::new(stages, width);
        for (s, row) in self.stages.iter().enumerate() {
            for (i, sw) in row.iter().enumerate() {
                snap.record(
                    s,
                    i,
                    sw.combines(),
                    sw.request_queue_high_water() as u64,
                    sw.wait_occupancy() as u64,
                );
            }
        }
        snap
    }

    /// Draws a fresh request id (callers managing their own id space — like
    /// the PNI layer — may ignore this).
    pub fn next_msg_id(&mut self) -> MsgId {
        let id = self.next_id;
        self.next_id += 1;
        MsgId(id)
    }

    /// Moves this network's id counter to `base` — used by
    /// [`ReplicatedOmega`] to keep copies' ids disjoint.
    pub fn set_msg_id_base(&mut self, base: u64) {
        self.next_id = base;
    }

    /// Offers a request to the network at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns the message back if the PE's input link is still streaming a
    /// previous message or the entry switch has no room (backpressure); the
    /// caller should retry next cycle.
    // Returning the refused message by value is the point of the API — the
    // caller keeps ownership without a clone — and `Message` is deliberately
    // a flat, id-inline struct the hot path memcpys rather than boxes.
    #[allow(clippy::result_large_err)]
    pub fn try_inject_request(&mut self, msg: Message, now: Cycle) -> Result<(), Message> {
        if self.fault_refuses(&msg) {
            self.stats.fault_refusals.incr();
            return Err(msg);
        }
        let pe = msg.src;
        if now < self.pe_link_free[pe.0] {
            self.stats.inject_stalls.incr();
            return Err(msg);
        }
        let (sw, in_port) = self.routes.pe_entry(pe);
        if !self.stages[0][sw].can_accept_request(&msg, &self.routes) {
            self.stats.inject_stalls.incr();
            return Err(msg);
        }
        let len = msg.packets(self.cfg.data_packets, self.cfg.ctl_packets);
        self.pe_link_free[pe.0] = now + Cycle::from(len);
        // Lossy PE→network link: the message streams onto the wire (the
        // link time is consumed) but never reaches the entry switch. The
        // caller sees a successful injection; recovery is the PNI's
        // timeout/retry, which is safe because the request was lost
        // *before* any combining or memory application.
        if self.mask.roll_link_loss() {
            self.stats.fault_dropped.incr();
            return Ok(());
        }
        self.stats.injected_requests.incr();
        match self.stages[0][sw].accept_request(msg, in_port, now, &self.routes, &mut self.stats) {
            AcceptOutcome::Dropped(m) => self.pending_drops.push(m),
            AcceptOutcome::Queued | AcceptOutcome::Combined => {}
        }
        // Every outcome leaves the entry switch holding forward traffic —
        // a drop only happens when the target queue is already non-empty.
        self.active_fwd[0].insert(sw);
        Ok(())
    }

    /// Offers a reply (from an MNI) to the reverse network at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns the reply back if the MM's link is busy or the last-stage
    /// switch has no room for it (and any decombined reply it would spawn).
    pub fn try_inject_reply(&mut self, mut reply: Reply, now: Cycle) -> Result<(), Reply> {
        let mm = reply.addr.mm;
        if now < self.mm_link_free[mm.0] {
            return Err(reply);
        }
        let last = self.routes.stages() - 1;
        let (sw, in_port) = self.routes.reverse_entry(mm);
        if !self.stages[last][sw].can_accept_reply(&reply, &self.routes) {
            return Err(reply);
        }
        reply.mm_injected_at = now;
        let len = reply.packets(self.cfg.data_packets, self.cfg.ctl_packets);
        self.mm_link_free[mm.0] = now + Cycle::from(len);
        self.stats.injected_replies.incr();
        self.stages[last][sw].accept_reply(reply, in_port, now, &self.routes, &mut self.stats);
        self.active_rev[last].insert(sw);
        Ok(())
    }

    /// Advances the whole fabric by one switch cycle, writing whatever
    /// emerged into the caller-supplied `events` buffer (cleared first).
    /// Free of per-cycle allocation once the buffer's capacity has warmed
    /// up.
    pub fn cycle_into(&mut self, now: Cycle, events: &mut NetworkEvents) {
        events.clear();
        events.dropped.append(&mut self.pending_drops);
        self.sweep_forward(now);
        self.sweep_reverse(now);
        // Drain tails that completed arrival at the fabric edge.
        let stats = &mut self.stats;
        extract_ready(&mut self.fwd_egress, now, |m| {
            stats.delivered_requests.incr();
            stats.forward_transit.record(now - m.issued_at);
            events.requests_at_mm.push(m);
        });
        extract_ready(&mut self.rev_egress, now, |r| {
            stats.delivered_replies.incr();
            stats.reverse_transit.record(now - r.mm_injected_at);
            events.replies_at_pe.push(r);
        });
    }

    /// Whether no traffic is in flight anywhere in the fabric: every switch
    /// queue, both egress link sets, and the pending-drop list are empty.
    /// Wait-buffer entries are deliberately ignored — a live entry implies
    /// traffic that *is* visible elsewhere (at a bank or in a queue), while
    /// a poisoned entry (stuck-at fault) persists forever and must not keep
    /// the machine from fast-forwarding idle cycles.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        // No `active_sets_exact` debug-assert here: the engine now
        // consults drainedness every cycle (to skip the fabric sweep
        // entirely), and an O(switches-built) check per cycle makes
        // debug-build runs at 16K+ PEs intractable. The invariant is
        // property-tested in `crates/net/tests/active_set.rs`.
        self.fwd_egress.is_empty()
            && self.rev_egress.is_empty()
            && self.pending_drops.is_empty()
            && self.active_fwd.iter().all(ActiveSet::is_empty)
            && self.active_rev.iter().all(ActiveSet::is_empty)
    }

    /// The stage-`stage` switches currently holding forward traffic, in
    /// ascending index order — the sparse sweep's exact visit list.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    #[must_use]
    pub fn active_forward_switches(&self, stage: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.active_fwd[stage]
            .members()
            .iter()
            .map(|&m| m as usize)
            .collect();
        v.sort_unstable();
        v
    }

    /// The stage-`stage` switches currently holding reverse traffic, in
    /// ascending index order.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    #[must_use]
    pub fn active_reverse_switches(&self, stage: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.active_rev[stage]
            .members()
            .iter()
            .map(|&m| m as usize)
            .collect();
        v.sort_unstable();
        v
    }

    /// Checks the occupancy-bookkeeping invariant: each direction's active
    /// set contains exactly the switches whose queues hold traffic in that
    /// direction. Returns the first discrepancy as an error string.
    ///
    /// # Errors
    ///
    /// Describes the first switch whose membership disagrees with its
    /// queue occupancy.
    pub fn active_sets_exact(&self) -> Result<(), String> {
        for (s, row) in self.stages.iter().enumerate() {
            for (i, sw) in row.iter().enumerate() {
                let fwd = sw.has_forward_traffic();
                if self.active_fwd[s].contains(i) != fwd {
                    return Err(format!(
                        "stage {s} switch {i}: forward traffic {fwd} but membership {}",
                        self.active_fwd[s].contains(i)
                    ));
                }
                let rev = sw.has_reverse_traffic();
                if self.active_rev[s].contains(i) != rev {
                    return Err(format!(
                        "stage {s} switch {i}: reverse traffic {rev} but membership {}",
                        self.active_rev[s].contains(i)
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serializes the network's full dynamic state (switch queues, wait
    /// buffers, link timing, in-flight egress, statistics, fault mask).
    /// Routing tables and active sets are not written: they are re-derived
    /// from the config and from queue occupancy on decode.
    pub fn encode_state(&self, w: &mut WireWriter) {
        self.cfg.encode(w);
        w.usize(self.stages.len());
        for row in &self.stages {
            w.usize(row.len());
            for sw in row {
                sw.encode_state(w);
            }
        }
        self.sweep.encode(w);
        self.pe_link_free.encode(w);
        self.mm_link_free.encode(w);
        self.fwd_egress.encode(w);
        self.rev_egress.encode(w);
        self.pending_drops.encode(w);
        w.u64(self.next_id);
        self.stats.encode(w);
        self.mask.encode(w);
    }

    /// Rebuilds a network from [`OmegaNetwork::encode_state`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the bytes are truncated, malformed, or
    /// internally inconsistent (e.g. a stage count disagreeing with the
    /// embedded configuration).
    pub fn decode_state(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let cfg = NetConfig::decode(r)?;
        check_cfg(&cfg)?;
        let mut net = OmegaNetwork::new(cfg);
        let n_stages = r.seq_len()?;
        if n_stages != net.routes.stages() {
            return Err(WireError::Invalid("stage count mismatch"));
        }
        for s in 0..n_stages {
            let row_len = r.seq_len()?;
            if row_len != net.routes.switches_per_stage() {
                return Err(WireError::Invalid("stage width mismatch"));
            }
            for i in 0..row_len {
                let sw = Switch::decode_state(r, &net.cfg)?;
                if sw.stage() != s || sw.index() != i {
                    return Err(WireError::Invalid("switch out of position"));
                }
                // Re-derive active-set membership from queue occupancy.
                if sw.has_forward_traffic() {
                    net.active_fwd[s].insert(i);
                }
                if sw.has_reverse_traffic() {
                    net.active_rev[s].insert(i);
                }
                net.stages[s][i] = sw;
            }
        }
        net.sweep = SweepMode::decode(r)?;
        net.pe_link_free = Vec::decode(r)?;
        net.mm_link_free = Vec::decode(r)?;
        if net.pe_link_free.len() != net.cfg.pes || net.mm_link_free.len() != net.cfg.pes {
            return Err(WireError::Invalid("link-timing vector length mismatch"));
        }
        net.fwd_egress = Vec::decode(r)?;
        net.rev_egress = Vec::decode(r)?;
        net.pending_drops = Vec::decode(r)?;
        net.next_id = r.u64()?;
        net.stats = NetStats::decode(r)?;
        if net.stats.combines_by_stage.len() != n_stages {
            return Err(WireError::Invalid("per-stage counter length mismatch"));
        }
        net.mask = FaultMask::decode(r)?;
        Ok(net)
    }

    /// Forward sweep, MM side first so freed space propagates upstream
    /// within the cycle.
    fn sweep_forward(&mut self, now: Cycle) {
        let last = self.routes.stages() - 1;
        for s in (0..=last).rev() {
            self.sweep_stage_forward(now, s);
        }
    }

    /// Visits the stage-`s` switches holding forward traffic, ascending.
    ///
    /// Sparse mode walks the active-set summary then bitset words; dense
    /// mode (forced, or the occupancy fallback) scans every switch. Both
    /// orders are ascending and a traffic-less switch is a no-op visit,
    /// so the two modes execute the identical operation sequence.
    ///
    /// The per-stage borrows — this stage's switch row, the next row, the
    /// two active sets, routes, stats, egress — are split **once per
    /// stage** into a [`FwdStageView`], so the per-switch inner loop is a
    /// tight sweep over one stage's state instead of re-deriving
    /// `split_at_mut` per (switch, port) visit.
    ///
    /// Walking the bitset while transmissions mutate the set is sound
    /// because processing stage `s` can only (a) remove the switch just
    /// processed — whose bits were already consumed from the local word
    /// (and summary-word) snapshots — and (b) insert into stage `s+1`,
    /// never into stage `s` itself.
    fn sweep_stage_forward(&mut self, now: Cycle, s: usize) {
        let universe = self.routes.switches_per_stage();
        let dense = self.sweep == SweepMode::Dense
            || self.active_fwd[s].len() * 100 >= universe * DENSE_FALLBACK_PERCENT;
        if !dense && self.active_fwd[s].is_empty() {
            return; // idle stage: skip without touching a single switch
        }
        let k = self.cfg.k;
        let (rows, next_rows) = self.stages.split_at_mut(s + 1);
        let (actives, next_actives) = self.active_fwd.split_at_mut(s + 1);
        let mut v = FwdStageView {
            s,
            cur: &mut rows[s],
            next: next_rows.first_mut().map(Vec::as_mut_slice),
            active_cur: &mut actives[s],
            active_next: next_actives.first_mut(),
            routes: &self.routes,
            stats: &mut self.stats,
            fwd_egress: &mut self.fwd_egress,
            pending_drops: &mut self.pending_drops,
        };
        if dense {
            for sw_idx in 0..universe {
                transmit_forward(&mut v, now, sw_idx, k);
            }
            return;
        }
        for sword in 0..v.active_cur.summary_words() {
            let mut sbits = v.active_cur.summary_word(sword);
            while sbits != 0 {
                let w = sword * 64 + sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                let mut bits = v.active_cur.word(w);
                while bits != 0 {
                    let sw_idx = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    transmit_forward(&mut v, now, sw_idx, k);
                }
            }
        }
    }

    /// Reverse sweep, PE side first.
    fn sweep_reverse(&mut self, now: Cycle) {
        for s in 0..self.routes.stages() {
            self.sweep_stage_reverse(now, s);
        }
    }

    /// Reverse-direction mirror of [`OmegaNetwork::sweep_stage_forward`]:
    /// same dense fallback, same empty-stage skip, same summary-then-word
    /// walk, with the hoisted borrows pointing at stage `s - 1`.
    fn sweep_stage_reverse(&mut self, now: Cycle, s: usize) {
        let universe = self.routes.switches_per_stage();
        let dense = self.sweep == SweepMode::Dense
            || self.active_rev[s].len() * 100 >= universe * DENSE_FALLBACK_PERCENT;
        if !dense && self.active_rev[s].is_empty() {
            return;
        }
        let k = self.cfg.k;
        let (prev_rows, rows) = self.stages.split_at_mut(s);
        let (prev_actives, actives) = self.active_rev.split_at_mut(s);
        let mut v = RevStageView {
            s,
            cur: &mut rows[0],
            prev: prev_rows.last_mut().map(Vec::as_mut_slice),
            active_cur: &mut actives[0],
            active_prev: prev_actives.last_mut(),
            routes: &self.routes,
            stats: &mut self.stats,
            rev_egress: &mut self.rev_egress,
        };
        if dense {
            for sw_idx in 0..universe {
                transmit_reverse(&mut v, now, sw_idx, k);
            }
            return;
        }
        for sword in 0..v.active_cur.summary_words() {
            let mut sbits = v.active_cur.summary_word(sword);
            while sbits != 0 {
                let w = sword * 64 + sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                let mut bits = v.active_cur.word(w);
                while bits != 0 {
                    let sw_idx = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    transmit_reverse(&mut v, now, sw_idx, k);
                }
            }
        }
    }
}

/// One stage's hoisted forward-sweep borrows (see
/// [`OmegaNetwork::sweep_stage_forward`]).
struct FwdStageView<'a> {
    s: usize,
    cur: &'a mut [Switch],
    /// Stage `s + 1`'s switch row; `None` at the last stage.
    next: Option<&'a mut [Switch]>,
    active_cur: &'a mut ActiveSet,
    active_next: Option<&'a mut ActiveSet>,
    routes: &'a RouteTables,
    stats: &'a mut NetStats,
    fwd_egress: &'a mut Vec<(Cycle, Message)>,
    pending_drops: &'a mut Vec<Message>,
}

/// Tries to advance the head of every ToMM queue of switch `sw_idx`.
fn transmit_forward(v: &mut FwdStageView<'_>, now: Cycle, sw_idx: usize, k: usize) {
    for port in 0..k {
        // Peek the head to decide whether the hop can happen.
        let Some(head) = v.cur[sw_idx].to_mm_queue(port).front() else {
            continue;
        };
        if !v.cur[sw_idx].to_mm_queue(port).ready_to_transmit(now) {
            continue;
        }
        let len = head.packets;
        match v.routes.forward_next(v.s, sw_idx, port) {
            ForwardHop::ToMm(mm) => {
                debug_assert!(v.next.is_none(), "ToMm hops only leave the last stage");
                let slot = v.cur[sw_idx].to_mm_queue_mut(port).pop_for_transmit(now);
                debug_assert_eq!(slot.item.addr.mm, mm, "last-stage egress reaches its MM");
                debug_assert_eq!(
                    slot.item.amalgam, slot.item.src.0,
                    "amalgam has become the origin PE number (§3.1.1)"
                );
                v.fwd_egress.push((now + Cycle::from(len), slot.item));
                if !v.cur[sw_idx].has_forward_traffic() {
                    v.active_cur.remove(sw_idx);
                }
            }
            ForwardHop::ToSwitch(next_sw, next_port) => {
                let next = v
                    .next
                    .as_deref_mut()
                    .expect("interior stage has a successor");
                let msg_ref = &v.cur[sw_idx]
                    .to_mm_queue(port)
                    .front()
                    .expect("peeked")
                    .item;
                if !next[next_sw].can_accept_request(msg_ref, v.routes) {
                    continue; // backpressure: try again next cycle
                }
                let slot = v.cur[sw_idx].to_mm_queue_mut(port).pop_for_transmit(now);
                match next[next_sw].accept_request(slot.item, next_port, now + 1, v.routes, v.stats)
                {
                    AcceptOutcome::Dropped(m) => v.pending_drops.push(m),
                    AcceptOutcome::Queued | AcceptOutcome::Combined => {}
                }
                // A drop only happens when the target queue already holds
                // traffic, so the downstream switch is active after every
                // outcome; the upstream one retires once emptied.
                v.active_next
                    .as_deref_mut()
                    .expect("interior stage has a successor set")
                    .insert(next_sw);
                if !v.cur[sw_idx].has_forward_traffic() {
                    v.active_cur.remove(sw_idx);
                }
            }
        }
    }
}

/// One stage's hoisted reverse-sweep borrows (see
/// [`OmegaNetwork::sweep_stage_reverse`]).
struct RevStageView<'a> {
    s: usize,
    cur: &'a mut [Switch],
    /// Stage `s - 1`'s switch row; `None` at stage 0.
    prev: Option<&'a mut [Switch]>,
    active_cur: &'a mut ActiveSet,
    active_prev: Option<&'a mut ActiveSet>,
    routes: &'a RouteTables,
    stats: &'a mut NetStats,
    rev_egress: &'a mut Vec<(Cycle, Reply)>,
}

/// Tries to advance the head of every ToPE queue of switch `sw_idx`.
fn transmit_reverse(v: &mut RevStageView<'_>, now: Cycle, sw_idx: usize, k: usize) {
    for port in 0..k {
        let Some(head) = v.cur[sw_idx].to_pe_queue(port).front() else {
            continue;
        };
        if !v.cur[sw_idx].to_pe_queue(port).ready_to_transmit(now) {
            continue;
        }
        let len = head.packets;
        match v.routes.reverse_next(v.s, sw_idx, port) {
            ReverseHop::ToPe(pe) => {
                debug_assert!(v.prev.is_none(), "ToPe hops only leave stage 0");
                let slot = v.cur[sw_idx].to_pe_queue_mut(port).pop_for_transmit(now);
                debug_assert_eq!(slot.item.dst, pe, "stage-0 egress reaches the right PE");
                debug_assert_eq!(
                    slot.item.amalgam, slot.item.addr.mm.0,
                    "reverse amalgam has become the MM number (§3.1.1)"
                );
                v.rev_egress.push((now + Cycle::from(len), slot.item));
                if !v.cur[sw_idx].has_reverse_traffic() {
                    v.active_cur.remove(sw_idx);
                }
            }
            ReverseHop::ToSwitch(prev_sw, prev_port) => {
                let prev = v
                    .prev
                    .as_deref_mut()
                    .expect("interior stage has a predecessor");
                let reply_ref = &v.cur[sw_idx]
                    .to_pe_queue(port)
                    .front()
                    .expect("peeked")
                    .item;
                if !prev[prev_sw].can_accept_reply(reply_ref, v.routes) {
                    continue;
                }
                let slot = v.cur[sw_idx].to_pe_queue_mut(port).pop_for_transmit(now);
                prev[prev_sw].accept_reply(slot.item, prev_port, now + 1, v.routes, v.stats);
                // Decombined twins also land in `prev_sw`, so the accept
                // always leaves it holding reverse traffic.
                v.active_prev
                    .as_deref_mut()
                    .expect("interior stage has a predecessor set")
                    .insert(prev_sw);
                if !v.cur[sw_idx].has_reverse_traffic() {
                    v.active_cur.remove(sw_idx);
                }
            }
        }
    }
}

/// Removes entries with `ready_at <= now` from `pending`, handing each to
/// `sink` (order of readiness preserved).
fn extract_ready<T>(pending: &mut Vec<(Cycle, T)>, now: Cycle, mut sink: impl FnMut(T)) {
    let mut i = 0;
    while i < pending.len() {
        if pending[i].0 <= now {
            let (_, item) = pending.swap_remove(i);
            sink(item);
        } else {
            i += 1;
        }
    }
}

/// One network copy plus its reusable per-cycle event buffer.
///
/// Keeping the buffer beside the copy lets [`ReplicatedOmega::cycle_inplace`]
/// fan the copies out across threads over a single slice — each lane is an
/// independent unit of per-cycle work with its own output.
#[derive(Debug, Clone)]
struct CopyLane {
    net: OmegaNetwork,
    events: NetworkEvents,
}

/// `d` identical network copies (§4.1) behind one injection interface.
///
/// Requests from each PE are spread round-robin over the copies; the copy
/// index is reported back so the MNI can return the reply through the same
/// copy.
#[derive(Debug, Clone)]
pub struct ReplicatedOmega {
    lanes: Vec<CopyLane>,
    cursor: Vec<usize>,
    failovers: u64,
}

impl ReplicatedOmega {
    /// Builds `d` copies of the network described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `cfg` is invalid.
    #[must_use]
    pub fn new(cfg: NetConfig, d: usize) -> Self {
        assert!(d >= 1, "need at least one network copy");
        let lanes: Vec<CopyLane> = (0..d)
            .map(|i| {
                let mut net = OmegaNetwork::new(cfg);
                // Disjoint id spaces so wait-buffer keys can never collide
                // across copies.
                net.set_msg_id_base(1 + ((i as u64) << 48));
                CopyLane {
                    net,
                    events: NetworkEvents::default(),
                }
            })
            .collect();
        Self {
            cursor: vec![0; cfg.pes],
            lanes,
            failovers: 0,
        }
    }

    /// Requests that a faulted copy refused and a healthy copy then
    /// carried — the §4.1 redundancy actually doing its job.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Number of copies `d`.
    #[must_use]
    pub fn copies(&self) -> usize {
        self.lanes.len()
    }

    /// Immutable access to copy `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= d`.
    #[must_use]
    pub fn copy(&self, i: usize) -> &OmegaNetwork {
        &self.lanes[i].net
    }

    /// Mutable access to copy `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= d`.
    pub fn copy_mut(&mut self, i: usize) -> &mut OmegaNetwork {
        &mut self.lanes[i].net
    }

    /// Injects a request into the next copy in this PE's round-robin order,
    /// falling back to the other copies if it is busy. Returns the copy
    /// index used.
    ///
    /// # Errors
    ///
    /// Returns the message back if every copy refused it this cycle.
    // See `OmegaNetwork::try_inject_request`: refusal hands the flat message
    // back by value on purpose; boxing it would put an allocation on the
    // zero-allocation path.
    #[allow(clippy::result_large_err)]
    pub fn try_inject_request(&mut self, msg: Message, now: Cycle) -> Result<usize, Message> {
        let pe = msg.src.0;
        let d = self.lanes.len();
        let start = self.cursor[pe];
        let mut msg = msg;
        let mut fault_refused = false;
        for offset in 0..d {
            let i = (start + offset) % d;
            if self.lanes[i].net.fault_refuses(&msg) {
                fault_refused = true;
            }
            match self.lanes[i].net.try_inject_request(msg, now) {
                Ok(()) => {
                    if fault_refused {
                        self.failovers += 1;
                    }
                    self.cursor[pe] = (i + 1) % d;
                    return Ok(i);
                }
                Err(m) => msg = m,
            }
        }
        Err(msg)
    }

    /// Injects a reply into copy `copy` (the one that carried the request).
    ///
    /// # Errors
    ///
    /// Returns the reply back if that copy refused it this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `copy >= d`.
    pub fn try_inject_reply(&mut self, copy: usize, reply: Reply, now: Cycle) -> Result<(), Reply> {
        self.lanes[copy].net.try_inject_reply(reply, now)
    }

    /// Installs `mode` on every copy (see [`OmegaNetwork::set_sweep_mode`]).
    pub fn set_sweep_mode(&mut self, mode: SweepMode) {
        for lane in &mut self.lanes {
            lane.net.set_sweep_mode(mode);
        }
    }

    /// Advances every copy one cycle into its lane's pooled event buffer,
    /// fanning the independent copies out over `pool`'s worker threads.
    /// Results land in fixed lane order regardless of the pool width, so
    /// the parallel and sequential engines observe identical event
    /// streams; read them back with [`ReplicatedOmega::events_mut`].
    pub fn cycle_inplace(&mut self, now: Cycle, pool: &WorkerPool) {
        pool.run(&mut self.lanes, |_, lane| {
            lane.net.cycle_into(now, &mut lane.events);
        });
    }

    /// The pooled event buffer copy `i` filled during the last
    /// [`ReplicatedOmega::cycle_inplace`]; the caller drains it in place.
    ///
    /// # Panics
    ///
    /// Panics if `i >= d`.
    pub fn events_mut(&mut self, i: usize) -> &mut NetworkEvents {
        &mut self.lanes[i].events
    }

    /// Whether every copy's fabric is drained (see
    /// [`OmegaNetwork::is_drained`]).
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.lanes.iter().all(|l| l.net.is_drained())
    }

    /// Largest forward-queue packet occupancy across all copies.
    #[must_use]
    pub fn request_queue_high_water(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.net.request_queue_high_water())
            .max()
            .unwrap_or(0)
    }

    /// Sum of a statistic across copies, selected by `f`.
    pub fn total_stat(&self, f: impl Fn(&NetStats) -> u64) -> u64 {
        self.lanes.iter().map(|l| f(l.net.stats())).sum()
    }

    /// Wait-buffer entries outstanding across every switch of every copy.
    #[must_use]
    pub fn total_wait_occupancy(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.net.total_wait_occupancy())
            .sum()
    }

    /// Serializes every copy's state plus the round-robin cursors and
    /// failover count.
    pub fn encode_state(&self, w: &mut WireWriter) {
        w.usize(self.lanes.len());
        for lane in &self.lanes {
            lane.net.encode_state(w);
            // Pooled event buffers are drained every machine cycle, but
            // serializing them costs a few bytes and removes any doubt.
            lane.events.encode(w);
        }
        self.cursor.encode(w);
        w.u64(self.failovers);
    }

    /// Rebuilds the replicated network from
    /// [`ReplicatedOmega::encode_state`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the bytes are truncated, malformed, or
    /// internally inconsistent.
    pub fn decode_state(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let d = r.seq_len()?;
        if d == 0 {
            return Err(WireError::Invalid("zero network copies"));
        }
        let mut lanes = Vec::with_capacity(d);
        for _ in 0..d {
            lanes.push(CopyLane {
                net: OmegaNetwork::decode_state(r)?,
                events: NetworkEvents::decode(r)?,
            });
        }
        let pes = lanes[0].net.cfg().pes;
        if lanes.iter().any(|l| l.net.cfg().pes != pes) {
            return Err(WireError::Invalid("copies disagree on pe count"));
        }
        let cursor: Vec<usize> = Vec::decode(r)?;
        if cursor.len() != pes || cursor.iter().any(|&c| c >= d) {
            return Err(WireError::Invalid("round-robin cursor out of range"));
        }
        Ok(Self {
            lanes,
            cursor,
            failovers: r.u64()?,
        })
    }

    /// The hot-spot heatmap merged across the `d` copies: combine counts
    /// and wait occupancy sum per switch position, queue high-water marks
    /// take the per-position maximum.
    #[must_use]
    pub fn heatmap(&self) -> HeatmapSnapshot {
        let mut merged = self.lanes[0].net.heatmap();
        for lane in &self.lanes[1..] {
            merged.merge(&lane.net.heatmap());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgKind, ReplyKind};
    use ultra_sim::{MemAddr, MmId, PeId, Value};

    /// Advances `net` one cycle into a fresh event buffer.
    fn cyc(net: &mut OmegaNetwork, now: Cycle) -> NetworkEvents {
        let mut events = NetworkEvents::default();
        net.cycle_into(now, &mut events);
        events
    }

    /// Advances every copy of `rep` and returns the tagged events.
    fn rep_cyc(rep: &mut ReplicatedOmega, now: Cycle) -> Vec<(usize, NetworkEvents)> {
        let pool = WorkerPool::new(1);
        rep.cycle_inplace(now, &pool);
        (0..rep.copies())
            .map(|i| (i, rep.events_mut(i).clone()))
            .collect()
    }

    fn load(net: &mut OmegaNetwork, pe: usize, mm: usize, offset: usize) -> MsgId {
        let id = net.next_msg_id();
        let msg = Message::request(
            id,
            MsgKind::Load,
            MemAddr::new(MmId(mm), offset),
            0,
            PeId(pe),
            0,
        );
        net.try_inject_request(msg, 0).expect("inject");
        id
    }

    fn faa(net: &mut OmegaNetwork, pe: usize, mm: usize, e: Value, now: Cycle) -> MsgId {
        let id = net.next_msg_id();
        let msg = Message::request(
            id,
            MsgKind::fetch_add(),
            MemAddr::new(MmId(mm), 0),
            e,
            PeId(pe),
            now,
        );
        net.try_inject_request(msg, now).expect("inject");
        id
    }

    /// Runs cycles until a request pops out at the MM side.
    fn run_until_mm(net: &mut OmegaNetwork, start: Cycle, limit: Cycle) -> (Cycle, Vec<Message>) {
        for now in start..start + limit {
            let ev = cyc(net, now);
            if !ev.requests_at_mm.is_empty() {
                return (now, ev.requests_at_mm);
            }
        }
        panic!("no MM arrival within {limit} cycles");
    }

    #[test]
    fn minimum_forward_transit_is_stages_plus_pipe_fill() {
        // 64 PEs, k=2 -> 6 stages. A 1-packet load injected at cycle 0 must
        // arrive at cycle 6 (D + m - 1 = 6 + 0).
        let mut net = OmegaNetwork::new(NetConfig::small(64));
        load(&mut net, 13, 42, 7);
        let (t, msgs) = run_until_mm(&mut net, 0, 50);
        assert_eq!(t, 6);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].addr, MemAddr::new(MmId(42), 7));
        assert_eq!(msgs[0].src, PeId(13));
    }

    #[test]
    fn data_message_takes_pipe_fill_penalty() {
        // A 3-packet store over 6 stages: D + m - 1 = 8 cycles.
        let mut net = OmegaNetwork::new(NetConfig::small(64));
        let id = net.next_msg_id();
        let msg = Message::request(id, MsgKind::Store, MemAddr::new(MmId(9), 0), 5, PeId(3), 0);
        net.try_inject_request(msg, 0).unwrap();
        let (t, _) = run_until_mm(&mut net, 0, 50);
        assert_eq!(t, 8);
    }

    #[test]
    fn round_trip_reply_returns_to_issuer() {
        let mut net = OmegaNetwork::new(NetConfig::small(16));
        let id = load(&mut net, 5, 11, 3);
        let (t, msgs) = run_until_mm(&mut net, 0, 50);
        let req = &msgs[0];
        let reply = Reply::to_request(req, 777);
        net.try_inject_reply(reply, t + 2).expect("inject reply");
        for now in t + 2..t + 40 {
            let ev = cyc(&mut net, now);
            if let Some(r) = ev.replies_at_pe.first() {
                assert_eq!(r.id, id);
                assert_eq!(r.dst, PeId(5));
                assert_eq!(r.value, 777);
                assert_eq!(r.kind, ReplyKind::Value);
                return;
            }
        }
        panic!("reply never arrived");
    }

    #[test]
    fn hotspot_fetch_adds_fully_combine_into_one_message() {
        // All 16 PEs fire F&A(X, 1) at the same word in the same cycle. The
        // tree must combine them into a single request reaching the MM with
        // the full increment, and the 16 replies must be the prefix sums
        // 0..16 in some order.
        let n = 16;
        let mut net = OmegaNetwork::new(NetConfig::small(n));
        let mut ids = Vec::new();
        for pe in 0..n {
            ids.push(faa(&mut net, pe, 6, 1, 0));
        }
        let mut mm_arrivals = Vec::new();
        let mut t_arrive = 0;
        for now in 0..100 {
            let ev = cyc(&mut net, now);
            mm_arrivals.extend(ev.requests_at_mm);
            if !mm_arrivals.is_empty() {
                t_arrive = now;
                break;
            }
        }
        assert_eq!(
            mm_arrivals.len(),
            1,
            "a complete combining tree folds N requests into one"
        );
        let req = &mm_arrivals[0];
        assert_eq!(req.value, n as Value, "combined increment is the total");
        assert_eq!(net.stats().combines.get(), (n - 1) as u64);

        // Memory held 100; serve the combined request.
        let reply = Reply::to_request(req, 100);
        let mut now = t_arrive + 2;
        net.try_inject_reply(reply, now).unwrap();
        let mut got = Vec::new();
        while got.len() < n && now < t_arrive + 200 {
            now += 1;
            let ev = cyc(&mut net, now);
            got.extend(ev.replies_at_pe);
        }
        assert_eq!(got.len(), n, "every PE gets a decombined reply");
        let mut values: Vec<Value> = got.iter().map(|r| r.value).collect();
        values.sort_unstable();
        let expected: Vec<Value> = (100..100 + n as Value).collect();
        assert_eq!(values, expected, "replies are the prefix sums of X=100");
        // All n distinct requesters are answered.
        let mut dsts: Vec<usize> = got.iter().map(|r| r.dst.0).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, (0..n).collect::<Vec<_>>());
        assert_eq!(net.stats().decombines.get(), (n - 1) as u64);
    }

    #[test]
    fn uniform_loads_all_complete() {
        // Every PE loads from a distinct MM; all must arrive.
        let n = 32;
        let mut net = OmegaNetwork::new(NetConfig::small(n));
        for pe in 0..n {
            load(&mut net, pe, (pe * 7 + 3) % n, pe);
        }
        let mut arrived = 0;
        for now in 0..500 {
            arrived += cyc(&mut net, now).requests_at_mm.len();
            if arrived == n {
                return;
            }
        }
        panic!("only {arrived}/{n} arrived");
    }

    #[test]
    fn injection_respects_link_rate() {
        let mut net = OmegaNetwork::new(NetConfig::small(8));
        let a = Message::request(
            MsgId(1),
            MsgKind::Store,
            MemAddr::new(MmId(1), 0),
            1,
            PeId(0),
            0,
        );
        let b = Message::request(
            MsgId(2),
            MsgKind::Store,
            MemAddr::new(MmId(2), 0),
            2,
            PeId(0),
            0,
        );
        net.try_inject_request(a, 0).unwrap();
        // The PE link streams 3 packets; a second message can't enter until
        // cycle 3.
        let b = net.try_inject_request(b, 1).unwrap_err();
        let b = net.try_inject_request(b, 2).unwrap_err();
        net.try_inject_request(b, 3).unwrap();
        assert_eq!(net.stats().inject_stalls.get(), 2);
    }

    #[test]
    fn drop_policy_reports_kills() {
        let mut cfg = NetConfig::small(8);
        cfg.policy = SwitchPolicy::DropOnConflict;
        let mut net = OmegaNetwork::new(cfg);
        // Two PEs sharing a stage-0 switch target the same output port.
        // PEs 0 and 4 share switch 0; MMs 0..4 route out port 0.
        for (id, pe) in [(1u64, 0usize), (2, 4)] {
            let msg = Message::request(
                MsgId(id),
                MsgKind::Load,
                MemAddr::new(MmId(1), 0),
                0,
                PeId(pe),
                0,
            );
            let _ = net.try_inject_request(msg, 0);
        }
        let ev = cyc(&mut net, 0);
        assert_eq!(ev.dropped.len(), 1, "the conflicting request is killed");
        assert_eq!(net.stats().drops.get(), 1);
    }

    #[test]
    fn replicated_round_robins_and_keeps_ids_disjoint() {
        let cfg = NetConfig::small(8);
        let mut rep = ReplicatedOmega::new(cfg, 2);
        assert_eq!(rep.copies(), 2);
        let m = |id: u64| {
            Message::request(
                MsgId(id),
                MsgKind::Load,
                MemAddr::new(MmId(1), 0),
                0,
                PeId(0),
                0,
            )
        };
        let c1 = rep.try_inject_request(m(1), 0).unwrap();
        let c2 = rep.try_inject_request(m(2), 0).unwrap();
        assert_ne!(c1, c2, "round robin alternates copies");
        // Both copies advance; both deliver.
        let mut total = 0;
        for now in 0..30 {
            for (_i, ev) in rep_cyc(&mut rep, now) {
                total += ev.requests_at_mm.len();
            }
        }
        assert_eq!(total, 2);
    }

    #[test]
    fn dead_copy_fails_over_to_the_survivor() {
        let cfg = NetConfig::small(8);
        let mut rep = ReplicatedOmega::new(cfg, 2);
        rep.copy_mut(0).kill();
        let m = |id: u64| {
            Message::request(
                MsgId(id),
                MsgKind::Load,
                MemAddr::new(MmId(1), id as usize), // distinct words: no combining
                0,
                PeId(0),
                0,
            )
        };
        // PE 0's round robin starts at copy 0, which is dead: both
        // requests must land on copy 1 (the second on a later cycle, once
        // copy 1's PE link is free again).
        let c1 = rep.try_inject_request(m(1), 0).unwrap();
        let c2 = rep.try_inject_request(m(2), 10).unwrap();
        assert_eq!((c1, c2), (1, 1));
        assert!(rep.failovers() >= 1, "dead copy forced a failover");
        assert_eq!(rep.copy(0).stats().fault_refusals.get(), 2);
        assert_eq!(rep.copy(0).stats().injected_requests.get(), 0);
        let mut total = 0;
        for now in 0..40 {
            for (_i, ev) in rep_cyc(&mut rep, now) {
                total += ev.requests_at_mm.len();
            }
        }
        assert_eq!(total, 2, "all traffic completes through the survivor");
    }

    #[test]
    fn dead_port_blocks_exactly_the_routes_crossing_it() {
        let mut net = OmegaNetwork::new(NetConfig::small(8));
        // Kill the stage-0 output port PE 0's route to MM 1 uses.
        let t = Topology::new(8, 2);
        let (sw, _) = t.pe_entry(PeId(0));
        let dead_port = t.forward_out_port(MmId(1), 0);
        let mut mask = FaultMask::healthy();
        mask.kill_port(0, sw, dead_port);
        net.set_fault_mask(mask);
        let blocked = Message::request(
            MsgId(1),
            MsgKind::Load,
            MemAddr::new(MmId(1), 0),
            0,
            PeId(0),
            0,
        );
        assert!(net.fault_refuses(&blocked));
        assert!(net.try_inject_request(blocked, 0).is_err());
        assert_eq!(net.stats().fault_refusals.get(), 1);
        // The same PE reaching an MM through the other port is unaffected.
        let other_mm = MmId((dead_port * 4) ^ 4); // flips the stage-0 digit
        let clear = Message::request(
            MsgId(2),
            MsgKind::Load,
            MemAddr::new(other_mm, 0),
            0,
            PeId(0),
            0,
        );
        assert!(!net.fault_refuses(&clear));
        net.try_inject_request(clear, 0).unwrap();
    }

    #[test]
    fn lossy_link_swallows_deterministically() {
        let run = |seed: u64| {
            let mut net = OmegaNetwork::new(NetConfig::small(8));
            let mut mask = FaultMask::healthy();
            mask.set_link_loss(0.5, seed);
            net.set_fault_mask(mask);
            let mut delivered = 0;
            for i in 0..20u64 {
                let msg = Message::request(
                    MsgId(i + 1),
                    MsgKind::Load,
                    MemAddr::new(MmId((i % 8) as usize), 0),
                    0,
                    PeId((i % 8) as usize),
                    i * 10,
                );
                net.try_inject_request(msg, i * 10).unwrap();
                for now in i * 10..i * 10 + 10 {
                    delivered += cyc(&mut net, now).requests_at_mm.len();
                }
            }
            (delivered, net.stats().fault_dropped.get())
        };
        let (delivered, lost) = run(7);
        assert_eq!(
            delivered as u64 + lost,
            20,
            "every request lost or delivered"
        );
        assert!(lost > 0, "p = 0.5 must lose some of 20");
        assert!(delivered > 0, "p = 0.5 must deliver some of 20");
        assert_eq!((delivered, lost), run(7), "same seed, same losses");
    }

    #[test]
    fn replicated_state_round_trips_through_wire() {
        // Build a replicated network with traffic mid-flight (queues,
        // egress links, wait buffers all non-empty), snapshot it, and check
        // that the decoded twin is byte-identical and behaves identically.
        let mut rep = ReplicatedOmega::new(NetConfig::small(16), 2);
        let mut id = 0u64;
        for pe in 0..16 {
            id += 1;
            let msg = Message::request(
                MsgId(id),
                MsgKind::fetch_add(),
                MemAddr::new(MmId(6), 0),
                1,
                PeId(pe),
                0,
            );
            let _ = rep.try_inject_request(msg, 0);
        }
        let pool = WorkerPool::new(1);
        for now in 0..3 {
            rep.cycle_inplace(now, &pool);
        }

        let mut w = WireWriter::new();
        rep.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut twin = ReplicatedOmega::decode_state(&mut r).expect("decode");
        assert!(r.is_empty(), "decode consumed every byte");

        let mut w2 = WireWriter::new();
        twin.encode_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "re-encode is byte-identical");

        // Both instances must produce the same event stream from here on.
        for now in 3..40 {
            rep.cycle_inplace(now, &pool);
            twin.cycle_inplace(now, &pool);
            for i in 0..rep.copies() {
                assert_eq!(rep.events_mut(i).clone(), {
                    let ev = twin.events_mut(i);
                    ev.clone()
                });
            }
        }
        assert_eq!(
            rep.total_stat(|s| s.combines.get()),
            twin.total_stat(|s| s.combines.get())
        );
    }

    #[test]
    fn corrupt_network_snapshot_is_an_error_not_a_panic() {
        let rep = ReplicatedOmega::new(NetConfig::small(8), 1);
        let mut w = WireWriter::new();
        rep.encode_state(&mut w);
        let bytes = w.into_bytes();
        // Truncation at every prefix length must error cleanly.
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(ReplicatedOmega::decode_state(&mut r).is_err());
        }
    }

    #[test]
    fn queue_backpressure_never_loses_messages() {
        // Tiny queues + a hot MM: every request must still eventually arrive
        // (no drops under the queued policies).
        let mut cfg = NetConfig::small(16);
        cfg.request_queue_packets = 3;
        cfg.policy = SwitchPolicy::QueuedNoCombine;
        let mut net = OmegaNetwork::new(cfg);
        let total = 32;
        let mut injected = 0;
        let mut arrived = 0;
        let mut next_payload = Vec::new();
        for pe in 0..16 {
            for j in 0..2 {
                next_payload.push((pe, j));
            }
        }
        let mut now = 0;
        let mut idcount = 0;
        while arrived < total && now < 5000 {
            while injected < total {
                let (pe, j) = next_payload[injected];
                idcount += 1;
                let msg = Message::request(
                    MsgId(idcount),
                    MsgKind::Store,
                    MemAddr::new(MmId(3), pe * 10 + j),
                    1,
                    PeId(pe),
                    now,
                );
                if net.try_inject_request(msg, now).is_err() {
                    break;
                }
                injected += 1;
            }
            arrived += cyc(&mut net, now).requests_at_mm.len();
            now += 1;
        }
        assert_eq!(arrived, total, "backpressure must not lose messages");
        assert_eq!(net.stats().drops.get(), 0);
    }
}

//! Network messages: memory requests, replies, and the fetch-and-phi
//! operation set.
//!
//! The paper's sole synchronization primitive is fetch-and-add (§2.2), a
//! special case of the more general *fetch-and-phi* (§2.4): atomically fetch
//! the old value of `V` and replace it with `phi(V, e)`. Any **associative**
//! `phi` can be combined in the network switches exactly like addition
//! (§3.1.3 "a straightforward generalization of the above design yields a
//! network implementing the fetch-and-phi primitive for any associative
//! operator phi"); this module implements that generalization.
//!
//! Packet lengths follow the §4.2 NETSIM model: a message that carries no
//! data (a load request, a store acknowledgement) is **one** packet; a
//! message with a data word is **three** packets.

use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Cycle, InlineVec, MemAddr, PeId, Value};

/// The folded-id list of a [`Message`].
///
/// Uncombined messages hold exactly one id; combining merges the lists, so
/// the length only exceeds the inline capacity in deep combining trees.
/// Inline storage keeps `Message` construction — the cycle engine's hot
/// path — free of per-message heap allocation.
pub type FoldedIds = InlineVec<MsgId, 4>;

/// Unique identifier of an outstanding memory request.
///
/// Combining keeps the *surviving* request's id on the wire; wait-buffer
/// entries are keyed by the survivor id, and each absorbed request's own id
/// is regenerated on the reply spawned during decombining.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl Wire for MsgId {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self(r.u64()?))
    }
}

/// The associative operators accepted by fetch-and-phi (§2.4).
///
/// All of these are associative, which is the property the combining proof
/// requires; the subset that is also commutative yields final memory values
/// independent of serialization order (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhiOp {
    /// Integer addition — the paper's fetch-and-add (wrapping).
    Add,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// The projection π₂(a, b) = b, which makes fetch-and-phi a `swap`
    /// (§2.4). Associative but not commutative.
    Second,
}

impl PhiOp {
    /// Applies the operator: `phi(a, b)`.
    #[must_use]
    pub fn apply(self, a: Value, b: Value) -> Value {
        match self {
            PhiOp::Add => a.wrapping_add(b),
            PhiOp::And => a & b,
            PhiOp::Or => a | b,
            PhiOp::Xor => a ^ b,
            PhiOp::Max => a.max(b),
            PhiOp::Min => a.min(b),
            PhiOp::Second => b,
        }
    }

    /// The right identity of the operator, if one exists: `phi(a, id) = a`.
    ///
    /// Used to combine a load with a fetch-and-phi by treating the load as
    /// `FetchPhi(op, identity)` — the generalization of the paper's
    /// "Treat Load(X) as FetchAdd(X, 0)" rule (§3.1.3 item 2).
    #[must_use]
    pub fn identity(self) -> Option<Value> {
        match self {
            PhiOp::Add | PhiOp::Xor | PhiOp::Or => Some(0),
            PhiOp::And => Some(-1),
            PhiOp::Max => Some(Value::MIN),
            PhiOp::Min => Some(Value::MAX),
            PhiOp::Second => None,
        }
    }

    /// Whether the operator is commutative (all but [`PhiOp::Second`]).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        !matches!(self, PhiOp::Second)
    }
}

impl Wire for PhiOp {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            Self::Add => 0,
            Self::And => 1,
            Self::Or => 2,
            Self::Xor => 3,
            Self::Max => 4,
            Self::Min => 5,
            Self::Second => 6,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::Add,
            1 => Self::And,
            2 => Self::Or,
            3 => Self::Xor,
            4 => Self::Max,
            5 => Self::Min,
            6 => Self::Second,
            _ => return Err(WireError::Invalid("phi-op tag")),
        })
    }
}

/// The function indicator of a memory request (§3.3: "load, store, or
/// fetch-and-add", generalized to fetch-and-phi).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Read a word; carries no data on the forward trip.
    Load,
    /// Write a word; acknowledged with a dataless reply.
    Store,
    /// Atomically fetch the old value and store `phi(old, e)`.
    FetchPhi(PhiOp),
}

impl MsgKind {
    /// The paper's fetch-and-add.
    #[must_use]
    pub fn fetch_add() -> Self {
        MsgKind::FetchPhi(PhiOp::Add)
    }

    /// Whether the forward message carries a data word.
    #[must_use]
    pub fn carries_data(self) -> bool {
        !matches!(self, MsgKind::Load)
    }

    /// Whether the reply carries a data word (loads and fetch-and-phis do;
    /// store acknowledgements do not).
    #[must_use]
    pub fn reply_carries_data(self) -> bool {
        !matches!(self, MsgKind::Store)
    }
}

impl Wire for MsgKind {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Self::Load => w.u8(0),
            Self::Store => w.u8(1),
            Self::FetchPhi(op) => {
                w.u8(2);
                op.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::Load,
            1 => Self::Store,
            2 => Self::FetchPhi(PhiOp::decode(r)?),
            _ => return Err(WireError::Invalid("msg-kind tag")),
        })
    }
}

/// A memory request travelling from a PE toward an MM.
///
/// `amalgam` is the §3.1.1 routing register: it enters the network holding
/// the destination MM number; each stage consumes one destination digit to
/// pick an output port and replaces it with the input-port digit, so that on
/// arrival at the MM it holds the originating PE number. The simulator
/// routes using `addr`/`src` directly and *checks* the amalgam against them
/// (see `route::tests`), mirroring how the real hardware would get by with a
/// single D-digit address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Unique request id (survives combining).
    pub id: MsgId,
    /// Function indicator.
    pub kind: MsgKind,
    /// Destination memory word.
    pub addr: MemAddr,
    /// Store datum or fetch-and-phi operand (ignored for loads).
    pub value: Value,
    /// Originating PE.
    pub src: PeId,
    /// Cycle at which the PNI injected the request.
    pub issued_at: Cycle,
    /// The origin/destination amalgam address (§3.1.1).
    pub amalgam: usize,
    /// Retry attempt: 0 for the original issue, incremented by the PNI on
    /// each timeout re-issue (the id doubles as the sequence number).
    /// Retried messages are never combined — the original may still be
    /// alive, and two live copies of one id must not meet in a wait buffer.
    pub attempt: u32,
    /// Every logical request folded into this message by combining (its
    /// own id plus each absorbed message's folded list). The MM's dedup
    /// cache records all of them, so a retry of any constituent of an
    /// already-applied combined request is recognized as a duplicate.
    pub folded: FoldedIds,
}

impl Message {
    /// Builds a request about to enter the network; the amalgam starts as
    /// the destination MM number.
    #[must_use]
    pub fn request(
        id: MsgId,
        kind: MsgKind,
        addr: MemAddr,
        value: Value,
        src: PeId,
        issued_at: Cycle,
    ) -> Self {
        Self {
            id,
            kind,
            addr,
            value,
            src,
            issued_at,
            amalgam: addr.mm.0,
            attempt: 0,
            folded: FoldedIds::one(id),
        }
    }

    /// Marks this message as retry attempt `attempt` of the same logical
    /// request (same id/sequence number), re-entering the network at
    /// `now`.
    #[must_use]
    pub fn as_retry(mut self, attempt: u32, now: Cycle) -> Self {
        self.attempt = attempt;
        self.issued_at = now;
        self.amalgam = self.addr.mm.0;
        self.folded.clear();
        self.folded.push(self.id);
        self
    }

    /// Length of the forward message in packets under the §4.2 model.
    #[must_use]
    pub fn packets(&self, data_packets: u8, ctl_packets: u8) -> u8 {
        if self.kind.carries_data() {
            data_packets
        } else {
            ctl_packets
        }
    }
}

impl Wire for Message {
    fn encode(&self, w: &mut WireWriter) {
        self.id.encode(w);
        self.kind.encode(w);
        self.addr.encode(w);
        w.i64(self.value);
        self.src.encode(w);
        w.u64(self.issued_at);
        w.usize(self.amalgam);
        w.u32(self.attempt);
        self.folded.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            id: MsgId::decode(r)?,
            kind: MsgKind::decode(r)?,
            addr: MemAddr::decode(r)?,
            value: r.i64()?,
            src: PeId::decode(r)?,
            issued_at: r.u64()?,
            amalgam: r.usize()?,
            attempt: r.u32()?,
            folded: FoldedIds::decode(r)?,
        })
    }
}

/// What a reply delivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplyKind {
    /// A data word (load result or the fetched old value).
    Value,
    /// A dataless store acknowledgement.
    Ack,
}

/// A reply travelling from an MM back to a PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Id of the request being answered.
    pub id: MsgId,
    /// The PE this reply must reach.
    pub dst: PeId,
    /// The memory word that was accessed (wait-buffer key component).
    pub addr: MemAddr,
    /// Loaded/fetched value; meaningless for acknowledgements.
    pub value: Value,
    /// Whether a data word is carried.
    pub kind: ReplyKind,
    /// Cycle at which the original request was injected (latency tracking).
    pub request_issued_at: Cycle,
    /// Cycle at which the MNI injected this reply into the reverse network
    /// (set by the network on injection; used for reverse-transit stats).
    pub mm_injected_at: Cycle,
    /// The reverse-trip amalgam: starts as the destination PE number and is
    /// consumed digit-by-digit on the way back (§3.1.1).
    pub amalgam: usize,
    /// Which attempt of the request this reply answers (copied from the
    /// request; lets the PNI/machine pair replies with retried issues).
    pub attempt: u32,
}

impl Wire for ReplyKind {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            Self::Value => 0,
            Self::Ack => 1,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::Value,
            1 => Self::Ack,
            _ => return Err(WireError::Invalid("reply-kind tag")),
        })
    }
}

impl Wire for Reply {
    fn encode(&self, w: &mut WireWriter) {
        self.id.encode(w);
        self.dst.encode(w);
        self.addr.encode(w);
        w.i64(self.value);
        self.kind.encode(w);
        w.u64(self.request_issued_at);
        w.u64(self.mm_injected_at);
        w.usize(self.amalgam);
        w.u32(self.attempt);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            id: MsgId::decode(r)?,
            dst: PeId::decode(r)?,
            addr: MemAddr::decode(r)?,
            value: r.i64()?,
            kind: ReplyKind::decode(r)?,
            request_issued_at: r.u64()?,
            mm_injected_at: r.u64()?,
            amalgam: r.usize()?,
            attempt: r.u32()?,
        })
    }
}

impl Reply {
    /// Builds the MM-side reply to `req` carrying `value`.
    #[must_use]
    pub fn to_request(req: &Message, value: Value) -> Self {
        Self {
            id: req.id,
            dst: req.src,
            addr: req.addr,
            value,
            kind: if req.kind.reply_carries_data() {
                ReplyKind::Value
            } else {
                ReplyKind::Ack
            },
            request_issued_at: req.issued_at,
            mm_injected_at: 0,
            amalgam: req.src.0,
            attempt: req.attempt,
        }
    }

    /// Length of the reply in packets under the §4.2 model.
    #[must_use]
    pub fn packets(&self, data_packets: u8, ctl_packets: u8) -> u8 {
        match self.kind {
            ReplyKind::Value => data_packets,
            ReplyKind::Ack => ctl_packets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_sim::MmId;

    fn msg(kind: MsgKind) -> Message {
        Message::request(MsgId(1), kind, MemAddr::new(MmId(3), 4), 9, PeId(2), 5)
    }

    #[test]
    fn phi_apply_matches_definitions() {
        assert_eq!(PhiOp::Add.apply(3, 4), 7);
        assert_eq!(PhiOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(PhiOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(PhiOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(PhiOp::Max.apply(-3, 4), 4);
        assert_eq!(PhiOp::Min.apply(-3, 4), -3);
        assert_eq!(PhiOp::Second.apply(1, 2), 2);
    }

    #[test]
    fn phi_identities_are_right_identities() {
        for op in [
            PhiOp::Add,
            PhiOp::And,
            PhiOp::Or,
            PhiOp::Xor,
            PhiOp::Max,
            PhiOp::Min,
        ] {
            let id = op.identity().unwrap();
            for a in [-17, 0, 3, Value::MAX, Value::MIN] {
                assert_eq!(op.apply(a, id), a, "{op:?}");
            }
        }
        assert_eq!(PhiOp::Second.identity(), None);
    }

    #[test]
    fn phi_associativity_spot_checks() {
        let ops = [
            PhiOp::Add,
            PhiOp::And,
            PhiOp::Or,
            PhiOp::Xor,
            PhiOp::Max,
            PhiOp::Min,
            PhiOp::Second,
        ];
        for op in ops {
            for a in [-5, 0, 7] {
                for b in [-2, 1, 9] {
                    for c in [-8, 0, 3] {
                        assert_eq!(
                            op.apply(op.apply(a, b), c),
                            op.apply(a, op.apply(b, c)),
                            "{op:?} not associative"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn add_wraps_instead_of_panicking() {
        assert_eq!(PhiOp::Add.apply(Value::MAX, 1), Value::MIN);
    }

    #[test]
    fn packet_lengths_follow_netsim_model() {
        assert_eq!(msg(MsgKind::Load).packets(3, 1), 1);
        assert_eq!(msg(MsgKind::Store).packets(3, 1), 3);
        assert_eq!(msg(MsgKind::fetch_add()).packets(3, 1), 3);

        let load_reply = Reply::to_request(&msg(MsgKind::Load), 42);
        assert_eq!(load_reply.kind, ReplyKind::Value);
        assert_eq!(load_reply.packets(3, 1), 3);

        let store_reply = Reply::to_request(&msg(MsgKind::Store), 0);
        assert_eq!(store_reply.kind, ReplyKind::Ack);
        assert_eq!(store_reply.packets(3, 1), 1);
    }

    #[test]
    fn request_amalgam_starts_as_destination() {
        let m = msg(MsgKind::Load);
        assert_eq!(m.amalgam, 3);
    }

    #[test]
    fn reply_inherits_request_identity() {
        let m = msg(MsgKind::fetch_add());
        let r = Reply::to_request(&m, 100);
        assert_eq!(r.id, m.id);
        assert_eq!(r.dst, m.src);
        assert_eq!(r.addr, m.addr);
        assert_eq!(r.value, 100);
        assert_eq!(r.request_issued_at, 5);
        assert_eq!(r.amalgam, m.src.0);
    }
}

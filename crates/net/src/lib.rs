//! The combining Omega network of the NYU Ultracomputer (paper §3.1–§3.3).
//!
//! The paper's chief hardware novelty is an `N`-input, `N`-output,
//! message-switched, pipelined network with the geometry of Lawrie's
//! Omega-network whose switches *combine* memory requests directed at the
//! same cell — loads, stores and, crucially, **fetch-and-add** — so that any
//! number of simultaneous references to one memory location are satisfied in
//! the time required for just one (§3.1.2). Combined requests are decombined
//! on the return trip using per-switch *wait buffers* (§3.3).
//!
//! This crate is a cycle-level behavioural model of that network:
//!
//! * [`message`] — requests, replies, packet lengths, the fetch-and-phi
//!   operation set (§2.4 generalization).
//! * [`route`] — perfect-shuffle wiring, destination-tag routing, and the
//!   origin/destination *amalgam* address of §3.1.1.
//! * [`queue`] — the ToMM/ToPE output queues (systolic-queue semantics:
//!   FIFO order plus associative search, §3.3.1) with packet-granularity
//!   capacity and link timing.
//! * [`combine`] — the pairwise combining rules (Load/Store/Fetch-and-phi,
//!   homogeneous and heterogeneous) and the reply rules used to decombine.
//! * [`switch`] — a k×k bidirectional switch: k ToMM queues, k ToPE queues
//!   and a wait buffer.
//! * [`omega`] — the assembled network (plus [`omega::ReplicatedOmega`] for
//!   the `d`-copy configurations of §4.1) with per-cycle advancement,
//!   backpressure, and egress events.
//! * [`active`] — per-stage sparse worklists so a cycle's cost follows
//!   the messages in flight, not the switches built.
//! * [`config`] / [`stats`] — configuration and instrumentation.
//!
//! # Example: one fetch-and-add through an 8-PE network
//!
//! ```
//! use ultra_net::config::NetConfig;
//! use ultra_net::message::{Message, MsgKind, PhiOp};
//! use ultra_net::omega::OmegaNetwork;
//! use ultra_sim::{MemAddr, MmId, PeId};
//!
//! let mut net = OmegaNetwork::new(NetConfig::small(8));
//! let msg = Message::request(
//!     net.next_msg_id(),
//!     MsgKind::FetchPhi(PhiOp::Add),
//!     MemAddr::new(MmId(5), 0),
//!     7,
//!     PeId(2),
//!     0,
//! );
//! assert!(net.try_inject_request(msg, 0).is_ok());
//! let mut arrived = None;
//! let mut events = ultra_net::omega::NetworkEvents::default();
//! for now in 0..32 {
//!     net.cycle_into(now, &mut events);
//!     if let Some(m) = events.requests_at_mm.drain(..).next() {
//!         arrived = Some(m);
//!         break;
//!     }
//! }
//! let m = arrived.expect("request must reach its MM");
//! assert_eq!(m.addr.mm, MmId(5));
//! ```

pub mod active;
pub mod combine;
pub mod config;
pub mod message;
pub mod omega;
pub mod queue;
pub mod route;
pub mod stats;
pub mod switch;

pub use active::ActiveSet;
pub use config::{NetConfig, SweepMode, SwitchPolicy};
pub use message::{Message, MsgId, MsgKind, PhiOp, Reply, ReplyKind};
pub use omega::{NetworkEvents, OmegaNetwork, ReplicatedOmega};
pub use route::{RouteTables, Topology};
pub use stats::NetStats;

//! Edge-case tests of the switch's combining machinery that the unit
//! tests don't reach: kind mutation changing packet counts, heterogeneous
//! combines resolved across a full network round trip, and wait-buffer
//! exhaustion under sustained hot traffic.

use ultra_net::config::NetConfig;
use ultra_net::message::{Message, MsgId, MsgKind, PhiOp, Reply, ReplyKind};
use ultra_net::omega::OmegaNetwork;
use ultra_sim::{MemAddr, MmId, PeId, Value};

/// Cycles `net` through a fresh event buffer (the non-deprecated path).
fn cyc(net: &mut ultra_net::omega::OmegaNetwork, now: u64) -> ultra_net::omega::NetworkEvents {
    let mut events = ultra_net::omega::NetworkEvents::default();
    net.cycle_into(now, &mut events);
    events
}

fn request(id: u64, pe: usize, kind: MsgKind, value: Value, addr: MemAddr) -> Message {
    Message::request(MsgId(id), kind, addr, value, PeId(pe), 0)
}

/// Drives the network until `want` replies return; panics after a budget.
fn collect_replies(net: &mut OmegaNetwork, mm_value: Value, want: usize) -> Vec<Reply> {
    let mut got = Vec::new();
    let mut served = false;
    let mut mem = mm_value;
    for now in 0..500 {
        let events = cyc(net, now);
        for req in events.requests_at_mm {
            assert!(!served || got.is_empty(), "single-request harness");
            let old = mem;
            let value = match req.kind {
                MsgKind::Load => old,
                MsgKind::Store => {
                    mem = req.value;
                    0
                }
                MsgKind::FetchPhi(op) => {
                    mem = op.apply(old, req.value);
                    old
                }
            };
            served = true;
            net.try_inject_reply(Reply::to_request(&req, value), now + 1)
                .expect("reverse path free");
        }
        got.extend(events.replies_at_pe);
        if got.len() == want {
            return got;
        }
    }
    panic!("only {} of {want} replies returned", got.len());
}

/// Load + Store combining changes the surviving slot from a 1-packet to a
/// 3-packet message; the queue's packet accounting must follow, and both
/// PEs must be answered with the right kinds.
#[test]
fn load_store_combine_resizes_and_answers_both() {
    let mut net = OmegaNetwork::new(NetConfig::small(8));
    let addr = MemAddr::new(MmId(3), 5);
    // PEs 0 and 4 share the stage-0 switch; inject in the same cycle so
    // the two requests meet there.
    net.try_inject_request(request(1, 0, MsgKind::Load, 0, addr), 0)
        .unwrap();
    net.try_inject_request(request(2, 4, MsgKind::Store, 77, addr), 0)
        .unwrap();
    let replies = collect_replies(&mut net, 0, 2);
    assert_eq!(net.stats().combines.get(), 1, "they must meet and combine");
    let load_reply = replies.iter().find(|r| r.id == MsgId(1)).expect("load");
    let store_reply = replies.iter().find(|r| r.id == MsgId(2)).expect("store");
    assert_eq!(load_reply.kind, ReplyKind::Value);
    assert_eq!(
        load_reply.value, 77,
        "combined load must observe the store's datum"
    );
    assert_eq!(store_reply.kind, ReplyKind::Ack);
}

/// Store + FetchAdd heterogeneous combining across the full round trip:
/// memory must end at f+e and the fetch must observe f.
#[test]
fn store_faa_combine_round_trip() {
    let mut net = OmegaNetwork::new(NetConfig::small(8));
    let addr = MemAddr::new(MmId(6), 2);
    net.try_inject_request(request(1, 1, MsgKind::Store, 50, addr), 0)
        .unwrap();
    net.try_inject_request(request(2, 5, MsgKind::FetchPhi(PhiOp::Add), 4, addr), 0)
        .unwrap();
    let mut mem_final = None;
    let mut got = Vec::new();
    let mut mem = 0i64;
    for now in 0..500 {
        let events = cyc(&mut net, now);
        for req in events.requests_at_mm {
            let old = mem;
            let v = match req.kind {
                MsgKind::Load => old,
                MsgKind::Store => {
                    mem = req.value;
                    0
                }
                MsgKind::FetchPhi(op) => {
                    mem = op.apply(old, req.value);
                    old
                }
            };
            mem_final = Some(mem);
            net.try_inject_reply(Reply::to_request(&req, v), now + 1)
                .unwrap();
        }
        got.extend(events.replies_at_pe);
        if got.len() == 2 {
            break;
        }
    }
    assert_eq!(got.len(), 2);
    assert_eq!(net.stats().combines.get(), 1);
    assert_eq!(mem_final, Some(54), "memory ends at f + e");
    let faa = got.iter().find(|r| r.id == MsgId(2)).expect("faa reply");
    assert_eq!(faa.value, 50, "fetch-and-add observes the store's datum");
    let store = got.iter().find(|r| r.id == MsgId(1)).expect("store ack");
    assert_eq!(store.kind, ReplyKind::Ack);
}

/// Swap + Swap (the non-commutative fetch-and-phi) across the round trip:
/// one swap observes the old memory, the other observes the first swap's
/// datum, memory keeps one of the two inserted values.
#[test]
fn swap_swap_combine_round_trip() {
    let mut net = OmegaNetwork::new(NetConfig::small(8));
    let addr = MemAddr::new(MmId(2), 9);
    net.try_inject_request(
        request(1, 2, MsgKind::FetchPhi(PhiOp::Second), 111, addr),
        0,
    )
    .unwrap();
    net.try_inject_request(
        request(2, 6, MsgKind::FetchPhi(PhiOp::Second), 222, addr),
        0,
    )
    .unwrap();
    let replies = collect_replies(&mut net, 999, 2);
    assert_eq!(net.stats().combines.get(), 1);
    let mut values: Vec<Value> = replies.iter().map(|r| r.value).collect();
    values.sort_unstable();
    // One observer sees the original 999; the other sees whichever datum
    // was serialized first (111, by queue order).
    assert_eq!(values, vec![111, 999]);
}

/// Finite *reverse* queues: decombining doubles reply traffic inside the
/// fabric, and `can_accept_reply` must reserve room for both the incoming
/// reply and its spawn. A hot-spot storm with tight ToPE queues must
/// still drain completely with correct prefix-sum replies.
#[test]
fn finite_reply_queues_survive_decombining_storm() {
    let mut cfg = NetConfig::small(16);
    cfg.reply_queue_packets = 6; // exactly two data replies per port
    let mut net = OmegaNetwork::new(cfg);
    let addr = MemAddr::new(MmId(5), 1);
    for pe in 0..16 {
        net.try_inject_request(
            request(200 + pe as u64, pe, MsgKind::FetchPhi(PhiOp::Add), 1, addr),
            0,
        )
        .unwrap();
    }
    let mut mem = 0i64;
    let mut replies = Vec::new();
    let mut outbox: Option<Reply> = None;
    for now in 0..5_000 {
        if let Some(r) = outbox.take() {
            if let Err(back) = net.try_inject_reply(r, now) {
                outbox = Some(back);
            }
        }
        let events = cyc(&mut net, now);
        for req in events.requests_at_mm {
            let old = mem;
            mem += req.value;
            let r = Reply::to_request(&req, old);
            if let Err(back) = net.try_inject_reply(r, now + 1) {
                assert!(outbox.is_none(), "one-outstanding MM harness");
                outbox = Some(back);
            }
        }
        replies.extend(events.replies_at_pe);
        if replies.len() == 16 {
            break;
        }
    }
    assert_eq!(replies.len(), 16, "tight reverse queues must not wedge");
    let mut vals: Vec<Value> = replies.iter().map(|r| r.value).collect();
    vals.sort_unstable();
    assert_eq!(vals, (0..16).collect::<Vec<Value>>());
    assert!(net.stats().combines.get() > 0);
}

/// With a zero-entry wait buffer, hot traffic still completes — just
/// without combining (every request serializes at the MM).
#[test]
fn wait_buffer_exhaustion_degrades_gracefully() {
    let mut cfg = NetConfig::small(16);
    cfg.wait_entries = 0;
    let mut net = OmegaNetwork::new(cfg);
    let addr = MemAddr::new(MmId(0), 0);
    for pe in 0..16 {
        net.try_inject_request(
            request(100 + pe as u64, pe, MsgKind::FetchPhi(PhiOp::Add), 1, addr),
            0,
        )
        .unwrap();
    }
    // Serve the MM one request at a time.
    let mut mem = 0i64;
    let mut got = 0;
    let mut observed = Vec::new();
    for now in 0..2_000 {
        let events = cyc(&mut net, now);
        for req in events.requests_at_mm {
            let old = mem;
            mem += req.value;
            net.try_inject_reply(Reply::to_request(&req, old), now + 1)
                .unwrap();
        }
        for r in events.replies_at_pe {
            observed.push(r.value);
            got += 1;
        }
        if got == 16 {
            break;
        }
    }
    assert_eq!(got, 16, "all requests served without combining");
    assert_eq!(net.stats().combines.get(), 0);
    assert!(net.stats().wait_buffer_declines.get() > 0);
    observed.sort_unstable();
    assert_eq!(observed, (0..16).collect::<Vec<i64>>());
    assert_eq!(mem, 16);
}

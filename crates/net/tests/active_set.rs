//! Property test of the sparse sweep's occupancy bookkeeping: after *any*
//! sequence of injections, cycles, backpressure stalls and fault events,
//! each stage's active set must contain exactly the switches whose queues
//! hold traffic in that direction — no stale members (wasted visits are
//! harmless but the set is specified as exact) and, critically, no missing
//! ones (a missing member is a switch the sparse sweep would never visit,
//! i.e. stuck traffic).
//!
//! Fault events exercised mid-sequence: dead switch ports (blocks routes
//! at injection time), lossy PE links (message consumes the wire but never
//! enters the fabric), poisoned wait-buffer entries (permanently shrinks a
//! switch's combining capacity without ever counting as traffic), and a
//! mid-run copy kill.

use ultra_faults::FaultMask;
use ultra_net::config::{NetConfig, SwitchPolicy};
use ultra_net::message::{Message, MsgId, MsgKind, PhiOp, Reply};
use ultra_net::omega::{NetworkEvents, OmegaNetwork};
use ultra_sim::rng::{Rng, SplitMix64};
use ultra_sim::{MemAddr, MmId, PeId};

/// Asserts the invariant and the sparse visit lists' shape.
fn check_exact(net: &OmegaNetwork, what: &str) {
    if let Err(e) = net.active_sets_exact() {
        panic!("active-set invariant broken {what}: {e}");
    }
    let stages = net.topology().stages();
    for s in 0..stages {
        let fwd = net.active_forward_switches(s);
        assert!(
            fwd.windows(2).all(|w| w[0] < w[1]),
            "fwd list sorted+unique"
        );
        let rev = net.active_reverse_switches(s);
        assert!(
            rev.windows(2).all(|w| w[0] < w[1]),
            "rev list sorted+unique"
        );
    }
}

fn random_request(rng: &mut SplitMix64, n: usize, next_id: &mut u64) -> Message {
    let pe = rng.below(n);
    let mm = rng.below(n);
    let kind = match rng.below(4) {
        0 => MsgKind::Load,
        1 => MsgKind::Store,
        _ => MsgKind::FetchPhi(PhiOp::Add),
    };
    let id = *next_id;
    *next_id += 1;
    Message::request(
        MsgId(id),
        kind,
        MemAddr {
            mm: MmId(mm),
            offset: rng.below(4),
        },
        rng.below(100) as i64,
        PeId(pe),
        0,
    )
}

#[test]
fn active_sets_stay_exact_under_arbitrary_sequences() {
    for case in 0..40u64 {
        let mut rng = SplitMix64::new(0xAC71_5E70 ^ case.wrapping_mul(0x9e37_79b9));
        let n = 1usize << (2 + rng.below(3)); // 4..16 PEs
        let mut cfg = NetConfig::small(n);
        // Small queues + tiny wait buffers force backpressure, combining
        // declines, and (for the drop policy below) real drops.
        cfg.request_queue_packets = 3 + rng.below(6);
        cfg.reply_queue_packets = 6 + rng.below(8);
        cfg.wait_entries = 1 + rng.below(3);
        cfg.policy = match rng.below(3) {
            0 => SwitchPolicy::QueuedCombining,
            1 => SwitchPolicy::QueuedNoCombine,
            _ => SwitchPolicy::DropOnConflict,
        };
        let mut net = OmegaNetwork::new(cfg);

        // Static fault flavour for some cases: a dead port and a lossy
        // PE link, both exercised at injection time.
        if rng.below(2) == 0 {
            let topo = net.topology();
            let mut mask = FaultMask::healthy();
            mask.kill_port(
                rng.below(topo.stages()),
                rng.below(topo.switches_per_stage()),
                rng.below(2),
            );
            if rng.below(2) == 0 {
                mask.set_link_loss(0.15, rng.next_u64());
            }
            net.set_fault_mask(mask);
        }

        let mut next_id = 1u64;
        let mut events = NetworkEvents::default();
        let mut mm_queue: Vec<Vec<Message>> = vec![Vec::new(); n];
        let steps = 60 + rng.below(120) as u64;
        for now in 0..steps {
            // A burst of injection attempts (backpressure rejections are
            // part of the sequence being tested).
            for _ in 0..rng.below(4) {
                let msg = random_request(&mut rng, n, &mut next_id);
                let _ = net.try_inject_request(msg, now);
                check_exact(&net, "after try_inject_request");
            }
            // MMs answer some queued arrivals (LIFO here on purpose — the
            // invariant must not depend on service order).
            for queue in mm_queue.iter_mut() {
                if !queue.is_empty() && rng.below(3) == 0 {
                    let req = queue.pop().expect("non-empty");
                    let reply = Reply::to_request(&req, 7);
                    let _ = net.try_inject_reply(reply, now);
                    check_exact(&net, "after try_inject_reply");
                }
            }
            // Mid-sequence fault events.
            if rng.below(24) == 0 {
                let topo = net.topology();
                let stage = rng.below(topo.stages());
                let sw = rng.below(topo.switches_per_stage());
                let _ = net.poison_wait_entry(stage, sw);
                check_exact(&net, "after poison_wait_entry");
            }
            if case % 7 == 0 && now == steps / 2 {
                net.kill();
                check_exact(&net, "after kill");
            }
            net.cycle_into(now, &mut events);
            check_exact(&net, "after cycle_into");
            for msg in events.requests_at_mm.drain(..) {
                mm_queue[msg.addr.mm.0].push(msg);
            }
            events.replies_at_pe.clear();
            events.dropped.clear();
        }
        // Drain: stop injecting, keep answering, and run until quiet; the
        // invariant must hold through the emptying transitions too, and
        // `is_drained` (which *trusts* the active sets) must agree with
        // the ground truth the checker scans.
        for now in steps..steps + 10 * steps + 500 {
            for queue in mm_queue.iter_mut() {
                if let Some(req) = queue.pop() {
                    let reply = Reply::to_request(&req, 7);
                    if net.try_inject_reply(reply, now).is_err() {
                        queue.push(req); // retry next cycle
                    }
                }
            }
            net.cycle_into(now, &mut events);
            check_exact(&net, "while draining");
            for msg in events.requests_at_mm.drain(..) {
                mm_queue[msg.addr.mm.0].push(msg);
            }
            events.replies_at_pe.clear();
            events.dropped.clear();
            if net.is_drained() && mm_queue.iter().all(Vec::is_empty) {
                break;
            }
        }
        assert!(
            net.is_drained() && mm_queue.iter().all(Vec::is_empty),
            "case {case}: traffic failed to drain (stuck switch would mean \
             a missing active-set member)"
        );
        check_exact(&net, "after drain");
    }
}

//! Property tests of the combining network: for arbitrary request
//! batches, the fabric must deliver every request, return every reply to
//! its issuer, and — when requests share addresses — produce results
//! consistent with *some* serialization (§2.1's principle, implemented by
//! §3's combining hardware).

use proptest::prelude::*;
use std::collections::HashMap;

use ultra_net::config::{NetConfig, SwitchPolicy};
use ultra_net::message::{Message, MsgId, MsgKind, PhiOp, Reply};
use ultra_net::omega::OmegaNetwork;
use ultra_sim::{MemAddr, MmId, PeId, Value};

/// A little closed-world harness: drives requests through the network and
/// a flat memory, returning (final_memory, replies_by_id).
fn run_network(
    cfg: NetConfig,
    requests: Vec<(usize, MsgKind, MemAddr, Value)>,
    mm_service: u64,
) -> (HashMap<MemAddr, Value>, HashMap<u64, Value>) {
    let mut net = OmegaNetwork::new(cfg);
    let mut mem: HashMap<MemAddr, Value> = HashMap::new();
    let mut replies: HashMap<u64, Value> = HashMap::new();
    // One pending slot per PE.
    let mut pending: Vec<std::collections::VecDeque<Message>> = (0..cfg.pes)
        .map(|_| std::collections::VecDeque::new())
        .collect();
    let mut next_id = 1u64;
    for (pe, kind, addr, value) in requests {
        let msg = Message::request(MsgId(next_id), kind, addr, value, PeId(pe), 0);
        next_id += 1;
        pending[pe].push_back(msg);
    }
    let total = next_id - 1;
    // Simple MM model: serve arrivals after `mm_service` cycles, FIFO;
    // a reply that cannot inject (busy reverse link) waits in an outbox.
    let mut mm_busy: HashMap<usize, u64> = HashMap::new();
    let mut mm_outbox: Vec<Option<Reply>> = vec![None; cfg.pes];
    let mut mm_queue: Vec<std::collections::VecDeque<Message>> = (0..cfg.pes)
        .map(|_| std::collections::VecDeque::new())
        .collect();
    let mut done = 0u64;
    let mut now = 0u64;
    // Outstanding-location guard (the PNI rule the switches rely on).
    let mut outstanding: Vec<std::collections::HashSet<MemAddr>> = (0..cfg.pes)
        .map(|_| std::collections::HashSet::new())
        .collect();

    while done < total {
        assert!(now < 1_000_000, "network property harness wedged");
        // Inject.
        for pe in 0..cfg.pes {
            if let Some(msg) = pending[pe].front() {
                if outstanding[pe].contains(&msg.addr) {
                    // respect one-outstanding-per-location
                } else {
                    let msg = pending[pe].pop_front().expect("front");
                    let addr = msg.addr;
                    match net.try_inject_request(msg, now) {
                        Ok(()) => {
                            outstanding[pe].insert(addr);
                        }
                        Err(m) => pending[pe].push_front(m),
                    }
                }
            }
        }
        // Serve MMs.
        for mm in 0..cfg.pes {
            if let Some(r) = mm_outbox[mm].take() {
                if let Err(back) = net.try_inject_reply(r, now) {
                    mm_outbox[mm] = Some(back);
                }
            }
            if mm_outbox[mm].is_some() {
                continue; // stalled on the reverse link
            }
            let free_at = mm_busy.entry(mm).or_insert(0);
            if *free_at <= now {
                if let Some(req) = mm_queue[mm].pop_front() {
                    let slot = mem.entry(req.addr).or_insert(0);
                    let reply_value = match req.kind {
                        MsgKind::Load => *slot,
                        MsgKind::Store => {
                            *slot = req.value;
                            0
                        }
                        MsgKind::FetchPhi(op) => {
                            let old = *slot;
                            *slot = op.apply(old, req.value);
                            old
                        }
                    };
                    let reply = Reply::to_request(&req, reply_value);
                    if let Err(back) = net.try_inject_reply(reply, now) {
                        mm_outbox[mm] = Some(back);
                    }
                    *free_at = now + mm_service;
                }
            }
        }
        let events = net.cycle(now);
        for msg in events.requests_at_mm {
            mm_queue[msg.addr.mm.0].push_back(msg);
        }
        for reply in events.replies_at_pe {
            outstanding[reply.dst.0].remove(&reply.addr);
            replies.insert(reply.id.0, reply.value);
            done += 1;
        }
        assert!(events.dropped.is_empty(), "queued policies never drop");
        now += 1;
    }
    (mem, replies)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Disjoint-address traffic: every store lands, every load of an
    /// untouched word reads zero, every reply returns.
    #[test]
    fn disjoint_stores_all_land(
        n_exp in 2u32..5, // 4..16 PEs
        payload in prop::collection::vec((0usize..64, -100i64..100), 1..40),
        combining in any::<bool>(),
    ) {
        let n = 1usize << n_exp;
        let mut cfg = NetConfig::small(n);
        cfg.policy = if combining {
            SwitchPolicy::QueuedCombining
        } else {
            SwitchPolicy::QueuedNoCombine
        };
        // Give each (pe, i) a unique address so stores never collide.
        let requests: Vec<_> = payload
            .iter()
            .enumerate()
            .map(|(i, &(raw, v))| {
                let pe = raw % n;
                let addr = MemAddr::new(MmId(i % n), 1000 + i);
                (pe, MsgKind::Store, addr, v)
            })
            .collect();
        let (mem, replies) = run_network(cfg, requests.clone(), 2);
        prop_assert_eq!(replies.len(), requests.len());
        for (i, &(_, _, addr, v)) in requests.iter().enumerate() {
            prop_assert_eq!(mem.get(&addr), Some(&v), "request {}", i);
        }
    }

    /// Hot-word fetch-and-adds: final memory is the exact total and the
    /// replies are the prefix sums of some serialization — with and
    /// without combining.
    #[test]
    fn hot_fetch_adds_serialize(
        n_exp in 2u32..5,
        increments in prop::collection::vec(1i64..10, 1..32),
        combining in any::<bool>(),
    ) {
        let n = 1usize << n_exp;
        let mut cfg = NetConfig::small(n);
        cfg.policy = if combining {
            SwitchPolicy::QueuedCombining
        } else {
            SwitchPolicy::QueuedNoCombine
        };
        let hot = MemAddr::new(MmId(1), 7);
        // At most one outstanding per (pe, location): spread over PEs,
        // extra requests queue behind in `pending` and trickle in.
        let requests: Vec<_> = increments
            .iter()
            .enumerate()
            .map(|(i, &e)| (i % n, MsgKind::FetchPhi(PhiOp::Add), hot, e))
            .collect();
        let (mem, replies) = run_network(cfg, requests, 2);
        let total: i64 = increments.iter().sum();
        prop_assert_eq!(mem.get(&hot).copied().unwrap_or(0), total);
        // Reply multiset must be a prefix-sum chain of some permutation:
        // sort ascending and rebuild.
        let mut vals: Vec<Value> = replies.values().copied().collect();
        vals.sort_unstable();
        prop_assert_eq!(vals[0], 0, "someone observed the initial value");
        // Each observed value must be a partial sum of the increments:
        // check the chain property via the multiset identity.
        let mut lhs: Vec<Value> = Vec::new();
        // Pair each reply with its increment: ids were assigned in order.
        let mut sorted_ids: Vec<u64> = replies.keys().copied().collect();
        sorted_ids.sort_unstable();
        for (id, &inc) in sorted_ids.iter().zip(increments.iter()) {
            lhs.push(replies[id] + inc);
        }
        let mut rhs: Vec<Value> = replies.values().copied().collect();
        let zero_pos = rhs.iter().position(|&v| v == 0).expect("initial observer");
        rhs.remove(zero_pos);
        rhs.push(total);
        lhs.sort_unstable();
        rhs.sort_unstable();
        prop_assert_eq!(lhs, rhs, "replies are not a serialization chain");
    }

    /// Mixed loads and stores on one word: every load observes zero or
    /// some store's value; the final value is one of the stores'.
    #[test]
    fn mixed_hot_loads_and_stores_are_coherent(
        n_exp in 2u32..4,
        ops in prop::collection::vec((any::<bool>(), 1i64..1000), 2..24),
    ) {
        let n = 1usize << n_exp;
        let cfg = NetConfig::small(n);
        let hot = MemAddr::new(MmId(0), 3);
        let requests: Vec<_> = ops
            .iter()
            .enumerate()
            .map(|(i, &(is_load, v))| {
                let kind = if is_load { MsgKind::Load } else { MsgKind::Store };
                (i % n, kind, hot, v)
            })
            .collect();
        let store_values: Vec<Value> = ops
            .iter()
            .filter(|(is_load, _)| !is_load)
            .map(|&(_, v)| v)
            .collect();
        let (mem, replies) = run_network(cfg, requests.clone(), 2);
        let final_v = mem.get(&hot).copied().unwrap_or(0);
        if store_values.is_empty() {
            prop_assert_eq!(final_v, 0);
        } else {
            prop_assert!(store_values.contains(&final_v), "final {final_v} never stored");
        }
        let mut sorted_ids: Vec<u64> = replies.keys().copied().collect();
        sorted_ids.sort_unstable();
        for (id, (is_load, _)) in sorted_ids.iter().zip(ops.iter()) {
            if *is_load {
                let seen = replies[id];
                prop_assert!(
                    seen == 0 || store_values.contains(&seen),
                    "load observed {seen}, never stored"
                );
            }
        }
    }
}

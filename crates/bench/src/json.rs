//! Shared JSON rendering for the bench binaries.
//!
//! Every artifact the harness writes (`BENCH_engine.json`, the
//! `--metrics-out` files, the `--trace-out` Perfetto traces) is
//! hand-serialized — the workspace takes no serde dependency — so this
//! module centralizes the one correct way to do it: strings pass through
//! [`ultra_obs::json_escape`], object keys are emitted in sorted order
//! (stable diffs regardless of insertion order), and row objects render
//! on a single line so the engine bench's line-based baseline parser
//! keeps working.

use ultra_obs::{json_escape, ChromeTraceBuilder, HeatmapSnapshot, TimeSeries};

/// A JSON object builder: values render immediately, keys sort at
/// [`JsonObject::render`] time.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, key: &str, rendered: String) -> Self {
        self.fields.push((key.to_owned(), rendered));
        self
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn uint(self, key: &str, value: u64) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a signed integer field.
    #[must_use]
    pub fn int(self, key: &str, value: i64) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a float field with a fixed number of decimals.
    #[must_use]
    pub fn float(self, key: &str, value: f64, decimals: usize) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.decimals$}")
        } else {
            "0".to_owned()
        };
        self.push(key, rendered)
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn str(self, key: &str, value: &str) -> Self {
        let escaped = json_escape(value);
        self.push(key, format!("\"{escaped}\""))
    }

    /// Adds a field whose value is already-rendered JSON (an array or a
    /// nested object).
    #[must_use]
    pub fn raw(self, key: &str, rendered: String) -> Self {
        self.push(key, rendered)
    }

    /// Renders `{"a": ..., "b": ...}` with keys in sorted order, on one
    /// line (embedded raw values may span lines).
    #[must_use]
    pub fn render(mut self) -> String {
        self.fields.sort_by(|a, b| a.0.cmp(&b.0));
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Renders a JSON array with one item per line at the given indent —
/// the layout the engine baseline's line-based parser expects.
#[must_use]
pub fn array_lines(items: &[String], indent: usize) -> String {
    if items.is_empty() {
        return "[]".to_owned();
    }
    let pad = " ".repeat(indent);
    let close = " ".repeat(indent.saturating_sub(2));
    let body: Vec<String> = items.iter().map(|i| format!("{pad}{i}")).collect();
    format!("[\n{}\n{close}]", body.join(",\n"))
}

/// Renders a [`HeatmapSnapshot`] as a JSON object of stage-major value
/// grids.
#[must_use]
pub fn heatmap_json(h: &HeatmapSnapshot) -> String {
    let grid = |values: &[u64]| {
        let rows: Vec<String> = values
            .chunks(h.width().max(1))
            .map(|row| {
                let cells: Vec<String> = row.iter().map(u64::to_string).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        format!("[{}]", rows.join(", "))
    };
    JsonObject::new()
        .uint("stages", h.stages() as u64)
        .uint("width", h.width() as u64)
        .raw("combines", grid(h.combines()))
        .raw("queue_high_water", grid(h.queue_high_water()))
        .raw("wait_occupancy", grid(h.wait_occupancy()))
        .render()
}

/// Renders a recorded [`TimeSeries`] (plus an optional heatmap) as the
/// `--metrics-out` document: per-window counter deltas and gauges, the
/// re-aggregated totals, and ring bookkeeping.
#[must_use]
pub fn metrics_json(bench: &str, series: &TimeSeries, heatmap: Option<&HeatmapSnapshot>) -> String {
    let windows: Vec<String> = series
        .samples()
        .map(|s| {
            let mut row = JsonObject::new().uint("start", s.start).uint("len", s.len);
            for (key, value) in s.counters.fields() {
                row = row.uint(key, value);
            }
            for (key, value) in s.gauges.fields() {
                row = row.uint(key, value);
            }
            row.render()
        })
        .collect();
    let mut totals = JsonObject::new();
    for (key, value) in series.totals().fields() {
        totals = totals.uint(key, value);
    }
    let mut top = JsonObject::new()
        .str("bench", bench)
        .uint("window", series.window())
        .uint("dropped_windows", series.dropped())
        .raw("windows", array_lines(&windows, 4))
        .raw("totals", totals.render());
    if let Some(h) = heatmap {
        top = top.raw("heatmap", heatmap_json(h));
    }
    let mut text = top.render();
    text.push('\n');
    text
}

/// Renders a bare [`TimeSeries`] as a Chrome `trace_event` JSON document
/// of counter tracks — the `--trace-out` format for the open-loop bins,
/// which have no machine event trace or engine phase spans to add.
#[must_use]
pub fn series_chrome_trace(bench: &str, series: &TimeSeries) -> String {
    let mut b = ChromeTraceBuilder::new();
    b.process_name(1, &format!("{bench} telemetry (per window)"));
    for s in series.samples() {
        let ts = (s.start + s.len) as f64;
        let counters: Vec<(&str, f64)> = s
            .counters
            .fields()
            .iter()
            .map(|&(k, v)| (k, v as f64))
            .collect();
        b.counter("window rates", 1, ts, &counters);
        let gauges: Vec<(&str, f64)> = s
            .gauges
            .fields()
            .iter()
            .map(|&(k, v)| (k, v as f64))
            .collect();
        b.counter("gauges", 1, ts, &gauges);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_obs::{CounterSnapshot, GaugeSnapshot};

    #[test]
    fn object_sorts_keys_and_escapes_strings() {
        let text = JsonObject::new()
            .uint("zeta", 3)
            .str("alpha", "a\"b")
            .float("mid", 1.25, 2)
            .render();
        assert_eq!(text, "{\"alpha\": \"a\\\"b\", \"mid\": 1.25, \"zeta\": 3}");
    }

    #[test]
    fn array_lines_lays_one_item_per_line() {
        let text = array_lines(&["{\"a\": 1}".to_owned(), "{\"b\": 2}".to_owned()], 4);
        assert_eq!(text, "[\n    {\"a\": 1},\n    {\"b\": 2}\n  ]");
        assert_eq!(array_lines(&[], 4), "[]");
    }

    #[test]
    fn metrics_json_embeds_windows_and_totals() {
        let mut series = TimeSeries::new();
        series.enable(10, 8, 0);
        let cum = CounterSnapshot {
            injected_requests: 7,
            ..CounterSnapshot::default()
        };
        series.sample(cum, GaugeSnapshot::default());
        let text = metrics_json("unit", &series, None);
        assert!(text.contains("\"bench\": \"unit\""));
        assert!(text.contains("\"injected_requests\": 7"));
        assert!(text.contains("\"totals\""));
        assert!(!text.contains("heatmap"));
        let mut h = HeatmapSnapshot::new(1, 2);
        h.record(0, 1, 5, 2, 0);
        let with_map = metrics_json("unit", &series, Some(&h));
        assert!(with_map.contains("\"heatmap\": {"));
        assert!(with_map.contains("\"combines\": [[0, 5]]"));
    }
}

//! Shared measurement harness for the table/figure binaries and Criterion
//! benches.
//!
//! The paper's §4 network studies are *open loop*: each PE offers
//! Bernoulli(p) traffic regardless of outstanding replies. [`run_open_loop`]
//! drives an [`ultra_net::OmegaNetwork`] (or several copies) against real
//! [`ultra_mem::MemBank`]s with that traffic and reports transit and
//! round-trip statistics — the simulated counterpart of the §4.1 analytic
//! model and the engine behind the Figure 7 validation points, the
//! hot-spot ablation (E6), the queue-depth study (E7) and the bandwidth
//! scaling study (E8).

pub mod json;
pub mod microbench;

use ultra_faults::FaultPlan;
use ultra_mem::{AddressHasher, MemBank, TranslationMode};
use ultra_net::config::NetConfig;
use ultra_net::message::{Message, MsgId};
use ultra_net::omega::ReplicatedOmega;
use ultra_obs::{CounterSnapshot, GaugeSnapshot, HeatmapSnapshot, TimeSeries};
use ultra_pe::traffic::TrafficPattern;
use ultra_sim::{Cycle, Histogram, MmId, PeId, WorkerPool};

/// Configuration of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Network geometry/policy.
    pub net: NetConfig,
    /// Network copies `d`.
    pub copies: usize,
    /// MM service time in cycles.
    pub mm_service: Cycle,
    /// Cycles to run before measuring (pipeline fill).
    pub warmup: Cycle,
    /// Measurement window in cycles.
    pub measure: Cycle,
}

impl OpenLoopConfig {
    /// A small default: `n` PEs, 2×2 switches, one copy, §4.2 timing.
    #[must_use]
    pub fn small(n: usize) -> Self {
        Self {
            net: NetConfig::small(n),
            copies: 1,
            mm_service: 2,
            warmup: 200,
            measure: 2_000,
        }
    }
}

/// What an open-loop run measured.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Requests injected during the measurement window.
    pub injected: u64,
    /// Replies received for requests issued in the window.
    pub completed: u64,
    /// Round-trip times (issue → reply) for those requests.
    pub round_trip: Histogram,
    /// Forward transit mean from the network's own stats (all traffic).
    pub forward_transit_mean: f64,
    /// Requests killed (DropOnConflict only).
    pub drops: u64,
    /// Combines performed.
    pub combines: u64,
    /// Delivered-request throughput in messages per PE per cycle.
    pub throughput: f64,
    /// Generator attempts that could not inject (backpressure/saturation).
    pub stalled_attempts: u64,
    /// Largest forward-queue packet occupancy observed anywhere.
    pub queue_high_water: usize,
    /// Injections refused by a dead copy or dead port (fault plans only).
    pub fault_refusals: u64,
    /// Refused requests a later network copy carried instead.
    pub failovers: u64,
    /// Requests abandoned because every copy's route to their MM was
    /// dead — the open-loop stand-in for the OS remapping that memory.
    pub unroutable: u64,
}

/// Runs `traffic` against the configured network + memory and measures.
///
/// Every PE holds at most one un-injected request (the PNI outbound
/// buffer); generator emissions while the buffer is full are counted in
/// `stalled_attempts` and discarded — the open-loop convention.
///
/// # Panics
///
/// Panics on internal inconsistencies (lost replies).
#[must_use]
pub fn run_open_loop(cfg: OpenLoopConfig, traffic: &mut dyn TrafficPattern) -> OpenLoopReport {
    run_open_loop_faulty(cfg, &FaultPlan::none(), traffic)
}

/// [`run_open_loop`] under a static [`FaultPlan`]: per-copy fault masks
/// are installed (dead copies/ports refuse injections and fail over),
/// dead MMs are killed and the generated traffic is re-hashed around
/// them exactly as the machine's degraded translation would. With
/// [`FaultPlan::none`] this is identical to the healthy runner.
///
/// # Panics
///
/// Panics on internal inconsistencies (lost replies).
#[must_use]
pub fn run_open_loop_faulty(
    cfg: OpenLoopConfig,
    plan: &FaultPlan,
    traffic: &mut dyn TrafficPattern,
) -> OpenLoopReport {
    let mut unused = TimeSeries::new();
    run_open_loop_inner(cfg, plan, traffic, &mut unused).0
}

/// Telemetry captured alongside an observed open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopObservation {
    /// Per-window counter deltas and gauges over the whole run
    /// (including warmup and drain — the open loop has no reason to hide
    /// the fill).
    pub series: TimeSeries,
    /// Per-switch combine/queue/wait totals at end of run.
    pub heatmap: HeatmapSnapshot,
}

/// [`run_open_loop_faulty`] with cycle-windowed telemetry: samples the
/// fabric's cumulative counters every `window` cycles into a ring of
/// `capacity` windows and snapshots the per-switch heatmap at the end.
/// Observation only reads simulator state, so the report is bit-identical
/// to the unobserved runner's.
///
/// # Panics
///
/// Panics on internal inconsistencies (lost replies) and on zero
/// `window`/`capacity`.
#[must_use]
pub fn run_open_loop_observed(
    cfg: OpenLoopConfig,
    plan: &FaultPlan,
    traffic: &mut dyn TrafficPattern,
    window: u64,
    capacity: usize,
) -> (OpenLoopReport, OpenLoopObservation) {
    let mut series = TimeSeries::new();
    series.enable(window, capacity, 0);
    let (report, heatmap) = run_open_loop_inner(cfg, plan, traffic, &mut series);
    (report, OpenLoopObservation { series, heatmap })
}

fn open_loop_counters(nets: &ReplicatedOmega) -> CounterSnapshot {
    let mut c = CounterSnapshot::default();
    for i in 0..nets.copies() {
        let s = nets.copy(i).stats();
        c.injected_requests += s.injected_requests.get();
        c.delivered_requests += s.delivered_requests.get();
        c.injected_replies += s.injected_replies.get();
        c.delivered_replies += s.delivered_replies.get();
        c.combines += s.combines.get();
        c.decombines += s.decombines.get();
        c.inject_stalls += s.inject_stalls.get();
        c.fault_dropped += s.fault_dropped.get();
        c.fault_refusals += s.fault_refusals.get();
    }
    c
}

fn open_loop_gauges(nets: &ReplicatedOmega, banks: &[MemBank]) -> GaugeSnapshot {
    GaugeSnapshot {
        mm_queue_depth_max: banks
            .iter()
            .map(|b| b.queue_depth() as u64)
            .max()
            .unwrap_or(0),
        wait_occupancy: nets.total_wait_occupancy(),
    }
}

fn run_open_loop_inner(
    cfg: OpenLoopConfig,
    plan: &FaultPlan,
    traffic: &mut dyn TrafficPattern,
    series: &mut TimeSeries,
) -> (OpenLoopReport, HeatmapSnapshot) {
    let n = cfg.net.pes;
    let mut nets = ReplicatedOmega::new(cfg.net, cfg.copies);
    for c in 0..cfg.copies {
        let mask = plan.mask_for_copy(c);
        if !mask.is_healthy() {
            nets.copy_mut(c).set_fault_mask(mask);
        }
    }
    let mut hasher = AddressHasher::new(n, TranslationMode::Interleaved);
    let dead = plan.dead_mms();
    if !dead.is_empty() {
        hasher.set_dead_mms(&dead);
    }
    let mut banks: Vec<MemBank> = (0..n)
        .map(|i| MemBank::new(MmId(i), cfg.mm_service))
        .collect();
    for mm in &dead {
        banks[mm.0].kill();
    }
    let mut copy_of: std::collections::HashMap<MsgId, usize> = std::collections::HashMap::new();
    let mut pending: Vec<Option<Message>> = vec![None; n];
    let mut next_id: u64 = 1;
    let mut report = OpenLoopReport {
        injected: 0,
        completed: 0,
        round_trip: Histogram::new(),
        forward_transit_mean: 0.0,
        drops: 0,
        combines: 0,
        throughput: 0.0,
        stalled_attempts: 0,
        queue_high_water: 0,
        fault_refusals: 0,
        failovers: 0,
        unroutable: 0,
    };
    let pool = WorkerPool::new(1);
    let horizon = cfg.warmup + cfg.measure;
    // Drain window: let in-flight traffic finish (no new injections).
    let drain = horizon + 4 * (cfg.warmup + 100);

    for now in 0..drain {
        // 1. Flush pending injections.
        for slot in pending.iter_mut() {
            if let Some(msg) = slot.take() {
                // A request every copy refuses outright (dead copy or a
                // dead port on its only route) can never inject: abandon
                // it instead of wedging this PE's buffer forever.
                if (0..nets.copies()).all(|c| nets.copy(c).fault_refuses(&msg)) {
                    report.unroutable += 1;
                    continue;
                }
                let id = msg.id;
                let issued_at = msg.issued_at;
                match nets.try_inject_request(msg, now) {
                    Ok(copy) => {
                        copy_of.insert(id, copy);
                        if (cfg.warmup..horizon).contains(&issued_at) {
                            report.injected += 1;
                        }
                    }
                    Err(m) => *slot = Some(m),
                }
            }
        }
        // 2. Memory banks serve and reply.
        for bank in &mut banks {
            bank.cycle(now);
            while let Some(r) = bank.peek_reply() {
                let copy = copy_of[&r.id];
                let reply = r.clone();
                match nets.try_inject_reply(copy, reply, now) {
                    Ok(()) => {
                        let _ = bank.pop_reply();
                    }
                    Err(_) => break,
                }
            }
        }
        // 3. The fabric moves.
        nets.cycle_inplace(now, &pool);
        for copy in 0..nets.copies() {
            let events = nets.events_mut(copy);
            for msg in events.requests_at_mm.drain(..) {
                banks[msg.addr.mm.0].push_request(msg);
            }
            for reply in events.replies_at_pe.drain(..) {
                copy_of.remove(&reply.id);
                if reply.request_issued_at >= cfg.warmup && reply.request_issued_at < horizon {
                    report.completed += 1;
                    report
                        .round_trip
                        .record(now.saturating_sub(reply.request_issued_at));
                }
            }
            let dropped = std::mem::take(&mut events.dropped);
            for dropped in dropped {
                // Retry from the PE (its buffer is free: the drop came from
                // a message already injected).
                let pe = dropped.src.0;
                if pending[pe].is_none() {
                    pending[pe] = Some(dropped);
                }
            }
        }
        // 4. Generators emit (only before the horizon).
        if now < horizon {
            for (pe, slot) in pending.iter_mut().enumerate() {
                if let Some(spec) = traffic.generate(PeId(pe)) {
                    if slot.is_none() {
                        let msg = Message::request(
                            MsgId(next_id),
                            spec.kind,
                            hasher.remap(spec.addr),
                            spec.value,
                            PeId(pe),
                            now,
                        );
                        next_id += 1;
                        *slot = Some(msg);
                    } else {
                        report.stalled_attempts += 1;
                    }
                }
            }
        }
        // 5. Window boundary: record the delta (no-op unless observed).
        while series.due(now + 1) {
            let cum = open_loop_counters(&nets);
            let gauges = open_loop_gauges(&nets, &banks);
            series.sample(cum, gauges);
        }
    }
    series.flush(
        drain,
        open_loop_counters(&nets),
        open_loop_gauges(&nets, &banks),
    );

    report.forward_transit_mean = {
        let mut h = Histogram::new();
        for i in 0..nets.copies() {
            h.merge(&nets.copy(i).stats().forward_transit);
        }
        h.mean()
    };
    report.queue_high_water = nets.request_queue_high_water();
    report.drops = nets.total_stat(|s| s.drops.get());
    report.combines = nets.total_stat(|s| s.combines.get());
    report.fault_refusals = nets.total_stat(|s| s.fault_refusals.get());
    report.failovers = nets.failovers();
    report.throughput = report.completed as f64 / (n as f64 * cfg.measure as f64);
    (report, nets.heatmap())
}

/// Formats a value/percent cell for the table binaries.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:>4.0}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_pe::traffic::UniformTraffic;

    #[test]
    fn light_uniform_load_round_trip_near_minimum() {
        // 64 PEs, 6 stages of 2x2: min round trip = 6 (fwd load) + 2 (MM)
        // + 8 (reverse data) = 16 cycles, plus queueing at p = 0.05.
        let cfg = OpenLoopConfig::small(64);
        let mut traffic = UniformTraffic::new(64, 0.05, 1.0, 11);
        let r = run_open_loop(cfg, &mut traffic);
        assert!(r.completed > 3000, "completed = {}", r.completed);
        let mean = r.round_trip.mean();
        assert!(
            (16.0..26.0).contains(&mean),
            "mean round trip {mean} should be a little above the 16-cycle floor"
        );
        assert_eq!(r.completed, r.injected, "all measured traffic drains");
    }

    #[test]
    fn saturation_shows_as_stalls() {
        // p = 0.5 with 3-packet messages exceeds capacity 1/3: the
        // generator must be throttled by backpressure.
        let cfg = OpenLoopConfig::small(16);
        let mut traffic = UniformTraffic::new(16, 0.5, 0.0, 5);
        let r = run_open_loop(cfg, &mut traffic);
        assert!(r.stalled_attempts > 0);
        assert!(
            r.throughput < 0.40,
            "throughput {} is capacity-bound",
            r.throughput
        );
    }
}

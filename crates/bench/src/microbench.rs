//! A tiny wall-clock micro-benchmark harness for the `harness = false`
//! benches.
//!
//! The container this repo builds in has no access to the crates registry,
//! so the benches cannot depend on an external statistics framework. This
//! module provides the minimal surface they need: named groups, a
//! configurable sample count, and median/min/mean reporting over samples.
//! It is intentionally simple — the benches compare *relative* costs of
//! the paper's coordination structures, not nanosecond-exact latencies.

use std::time::{Duration, Instant};

/// One named group of related measurements (mirrors a Criterion group).
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// Creates a group that takes `DEFAULT_SAMPLES` samples per bench.
    #[must_use]
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Self {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `f` (one warmup call, then `samples` timed calls) and prints
    /// `group/id: median min mean`.
    pub fn bench<F: FnMut()>(&mut self, id: &str, mut f: F) {
        f(); // warmup
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        let min = times[0];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{}: median {} | min {} | mean {} ({} samples)",
            self.name,
            id,
            fmt(median),
            fmt(min),
            fmt(mean),
            self.samples
        );
    }

    /// Finishes the group (parity with the Criterion API; prints nothing).
    pub fn finish(&mut self) {}
}

/// Default samples per measurement.
pub const DEFAULT_SAMPLES: usize = 20;

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

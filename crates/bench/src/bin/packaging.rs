//! Regenerates the **§3.6 packaging estimates**: chip counts, network
//! fraction, and the PE-board/MM-board partition of Figures 5–6.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin packaging
//! ```

use ultra_analysis::packaging::PackagingModel;

fn main() {
    println!("§3.6 machine packaging (1990 technology estimates)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9}",
        "PEs",
        "PE chips",
        "MM chips",
        "net chips",
        "total",
        "net %",
        "boards",
        "PE board",
        "MM board"
    );
    for pes in [16usize, 256, 4096] {
        let model = PackagingModel {
            pes,
            ..PackagingModel::paper_4096()
        };
        let r = model.report();
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>7.1}% {:>8} {:>9} {:>9}",
            pes,
            r.pe_chips,
            r.mm_chips,
            r.network_chips,
            r.total_chips,
            100.0 * r.network_fraction,
            r.boards_per_side * 2,
            r.chips_per_pe_board,
            r.chips_per_mm_board
        );
    }
    println!(
        "\nPaper's quotes for the 4096-PE machine: \"roughly 65,000 chips\",\n\
         \"only 19% of the chips are used for the network\", \"64 PE boards and\n\
         64 MM boards, with each PE board containing 352 chips and each MM\n\
         board containing 672 chips\"."
    );
}

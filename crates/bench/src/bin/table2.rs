//! Regenerates **Table 2**: measured and projected TRED2 efficiencies
//! (§5). Small (P, N) pairs are simulated directly on the ideal
//! paracomputer backend (the paper's WASHCLOTH setting); the constants of
//! `T(P,N) = aN + bN³/P + W(P,N)` are fitted from them; large cells are
//! projected from the fit and marked `*`, exactly as in the paper.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin table2
//! ```

use ultra_workloads::efficiency::{measure_tred2, EfficiencyModel, Measurement};

fn main() {
    // Measured pairs (kept small enough to simulate in seconds).
    let pairs: &[(usize, usize)] = &[
        (4, 16),
        (4, 24),
        (8, 16),
        (8, 32),
        (16, 16),
        (16, 32),
        (16, 48),
        (32, 32),
        (32, 48),
        (64, 48),
    ];
    eprintln!(
        "measuring {} (P,N) pairs on the paracomputer backend...",
        pairs.len()
    );
    let measurements: Vec<Measurement> = pairs
        .iter()
        .map(|&(p, n)| {
            let m = measure_tred2(p, n, 0xACE);
            eprintln!(
                "  P={p:<3} N={n:<3} T={:>10.0} W={:>8.0} (instruction times)",
                m.t, m.w
            );
            m
        })
        .collect();
    let model = EfficiencyModel::fit(&measurements);
    println!(
        "fitted: T(P,N) = {:.1}*N + {:.3}*N^3/P + W,  W = {:.2}*N + {:.2}*sqrt(P)\n",
        model.a, model.b, model.w_n, model.w_sqrt_p
    );

    let ns = [16usize, 32, 64, 128, 256, 512, 1024];
    let ps = [16usize, 64, 256, 1024, 4096];
    println!("Table 2 — TRED2 efficiencies E(P,N) = T(1,N)/(P*T(P,N));  * = projected");
    print!("{:>6} |", "N \\ P");
    for p in ps {
        print!("{p:>8}");
    }
    println!();
    println!("{}", "-".repeat(7 + 8 * ps.len()));
    for n in ns {
        print!("{n:>6} |");
        for p in ps {
            let e = model.efficiency(p, n);
            let measured = pairs.contains(&(p, n));
            print!("{:>6.0}%{}", 100.0 * e, if measured { ' ' } else { '*' });
        }
        println!();
    }
    println!(
        "\nPaper's Table 2 for comparison (N=matrix, P=PEs):\n\
         N=16:  62% 26%  7%  1%* 0%*   |   N=128: 99%* 96%* 86%* 59%* 24%*\n\
         N=64:  96% 86% 59% 27%* 7%*   |   N=1024: 100%* 100%* 100%* 99%* 96%*"
    );
}

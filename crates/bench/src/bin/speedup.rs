//! Experiment E13: §5 speedup/efficiency curves for every workload in the
//! suite, on the paracomputer backend — the generalized WASHCLOTH study
//! ("to measure the obtained parallelism").
//!
//! ```text
//! cargo run --release -p ultra-bench --bin speedup
//! ```

use ultra_workloads::speedup::speedup_curve;
use ultra_workloads::{Fluid, Multigrid, Particle, Tred2, Weather};
use ultracomputer::program::Program;

fn main() {
    let ladder = [1usize, 2, 4, 8, 16, 32];
    let workloads: Vec<(&str, Program)> = vec![
        ("tred2 N=32", Tred2::new(32).program()),
        ("weather 32x32 x4", Weather::new(32, 4).program()),
        ("multigrid 32 x2", Multigrid::new(32, 2).program()),
        ("particle 256x12", Particle::new(256, 12).program()),
        ("fluid 24/64 x3", Fluid::new(24, 64, 3).program()),
    ];
    println!("E13 — speedup and efficiency on the paracomputer backend\n");
    print!("{:<18}", "workload \\ P");
    for p in ladder {
        print!("{p:>10}");
    }
    println!();
    for (name, program) in workloads {
        let curve = speedup_curve(&program, &ladder, 0xC0FFEE);
        print!("{name:<18}");
        for pt in &curve {
            print!("{:>9.2}x", pt.speedup);
        }
        println!();
        print!("{:<18}", "");
        for pt in &curve {
            print!("{:>9.0}%", 100.0 * pt.efficiency);
        }
        println!();
    }
    println!(
        "\nEach pair of rows: speedup over P = 1, then efficiency. The paper's\n\
         thesis in curve form: self-scheduled MIMD workloads keep high\n\
         efficiency while the problem has enough parallel slack (cf. Table 2's\n\
         'big machines need big problems' diagonal)."
    );
}

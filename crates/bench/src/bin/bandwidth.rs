//! Experiment E8: design goals 1–2 (§3.1) — bandwidth linear in N,
//! latency logarithmic in N — and the Burroughs-style kill-on-conflict
//! baseline whose bandwidth the paper bounds at `O(N / log N)`.
//!
//! Uniform single-packet traffic below capacity; the queued network must
//! sustain per-PE throughput roughly flat in N (linear aggregate), while
//! the unbuffered drop-on-conflict network loses per-PE throughput as
//! stages multiply.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin bandwidth
//! ```

use ultra_bench::{run_open_loop, OpenLoopConfig};
use ultra_net::config::{NetConfig, SwitchPolicy};
use ultra_pe::traffic::UniformTraffic;

fn main() {
    println!("E8 — bandwidth and latency scaling with N (k = 2, loads only, p = 0.25)\n");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>14} {:>10}",
        "PEs", "stages", "policy", "per-PE thruput", "mean RT (cyc)", "drops"
    );
    for n in [16usize, 64, 256, 1024] {
        let stages = (n as f64).log2() as usize;
        for (policy, label) in [
            (SwitchPolicy::QueuedCombining, "queued"),
            (SwitchPolicy::DropOnConflict, "drop"),
        ] {
            let cfg = OpenLoopConfig {
                net: NetConfig {
                    policy,
                    ..NetConfig::small(n)
                },
                copies: 1,
                mm_service: 1,
                warmup: 500,
                measure: 4_000,
            };
            // Loads only (1 packet forward): capacity is set by the
            // 3-packet replies, 1/3 per PE per cycle.
            let mut traffic = UniformTraffic::new(n, 0.25, 1.0, 3);
            let r = run_open_loop(cfg, &mut traffic);
            println!(
                "{:>6} {:>8} {:>14} {:>14.4} {:>14.1} {:>10}",
                n,
                stages,
                label,
                r.throughput,
                r.round_trip.mean(),
                r.drops
            );
        }
        println!();
    }
    println!(
        "Expected shape: queued per-PE throughput stays ~flat in N (aggregate\n\
         bandwidth linear, goal 1) and latency grows ~log N (goal 2); the\n\
         drop-on-conflict baseline's per-PE throughput decays with the stage\n\
         count — the O(N/log N) ceiling of §3.1.2."
    );
}

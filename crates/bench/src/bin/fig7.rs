//! Regenerates **Figure 7**: network transit time vs. traffic intensity
//! for different configurations (§4.1), plus event-level simulation
//! points validating the analytic curves.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin fig7
//! ```

use ultra_analysis::queueing::NetworkModel;
use ultra_bench::{run_open_loop, OpenLoopConfig};
use ultra_net::config::NetConfig;
use ultra_pe::traffic::UniformTraffic;

fn main() {
    println!("Figure 7 — transit time T (switch cycles) vs. traffic intensity p");
    println!("n = 4096 PEs, B = k/m = 1; configurations (k, d) with cost C = d/(k lg k)\n");

    let configs = [
        (
            "k=2 d=1 (C=0.50)",
            NetworkModel::with_unit_bandwidth(4096, 2, 1),
        ),
        (
            "k=2 d=2 (C=1.00)",
            NetworkModel::with_unit_bandwidth(4096, 2, 2),
        ),
        (
            "k=4 d=1 (C=0.13)",
            NetworkModel::with_unit_bandwidth(4096, 4, 1),
        ),
        (
            "k=4 d=2 (C=0.25)",
            NetworkModel::with_unit_bandwidth(4096, 4, 2),
        ),
        (
            "k=8 d=6 (C=0.25)",
            NetworkModel::with_unit_bandwidth(4096, 8, 6),
        ),
    ];

    print!("{:>6}", "p");
    for (name, _) in &configs {
        print!("  {name:>18}");
    }
    println!();
    for i in 1..=14 {
        let p = 0.025 * f64::from(i);
        print!("{p:>6.3}");
        for (_, model) in &configs {
            match model.transit_time(p) {
                Some(t) => print!("  {t:>18.2}"),
                None => print!("  {:>18}", "saturated"),
            }
        }
        println!();
    }

    println!(
        "\nPaper's reading: for reasonable traffic intensities the duplexed 4x4\n\
         network is best; the 8x8 d=6 network (same cost C=0.25) is acceptable\n\
         and, with bandwidth 0.75 vs 0.50, less loaded at a given p.\n"
    );

    // Event-level validation at a simulable scale (N = 256, k = 4, d = 1):
    // same formulas, same shape — simulated forward transit should track
    // the analytic curve until near saturation.
    println!("Simulation check (N=256, k=4, d=1, 3-packet messages, m=3):");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "p", "analytic T", "simulated T", "ratio"
    );
    let model = NetworkModel::new(256, 4, 3, 1);
    for &p in &[0.02, 0.05, 0.10, 0.15, 0.20, 0.25] {
        let mut cfg = OpenLoopConfig {
            net: NetConfig {
                request_queue_packets: usize::MAX,
                ..NetConfig::paper_section42_scaled(256)
            },
            copies: 1,
            mm_service: 2,
            warmup: 500,
            measure: 6_000,
        };
        cfg.net.wait_entries = 0; // analytic model assumes no combining
        let mut traffic = UniformTraffic::new(256, p, 0.0, 42);
        let r = run_open_loop(cfg, &mut traffic);
        let analytic = model.transit_time(p).unwrap_or(f64::NAN);
        let simulated = r.forward_transit_mean;
        println!(
            "{:>8.3} {:>12.2} {:>12.2} {:>10.2}",
            p,
            analytic,
            simulated,
            simulated / analytic
        );
    }
}

//! Cycle-engine throughput harness.
//!
//! Measures simulated-cycles/sec and PE·cycles/sec for the sequential and
//! parallel engines at N ∈ {64, 256, 1024, 4096, 16384, 65536} on two
//! workloads, and writes the rows to `BENCH_engine.json` at the repo root:
//!
//! * `ticket` — every PE hammers one combinable hot word (traffic scales
//!   with N; measures the whole engine under load). The 65536 row runs in
//!   full mode only — at that size a single run is ~10 s of wall time.
//! * `idle` — 16 ticket PEs inside the full fabric, every other PE halts
//!   immediately (traffic is constant while topology grows; isolates the
//!   word-packed sweep's *scale with traffic, not switches* claim).
//!   Measured under both engines: the parallel rows price the masked
//!   dispatch — `run_sparse` must collapse to the inline word-skip walk
//!   when only 16 of 65536 shards are live, not fan out over dead air.
//!
//! Flags (combine freely):
//!
//! * `--quick` — CI-sized iteration counts (~10× shorter runs).
//! * `--check` — instead of (over)writing the baseline: assert the
//!   parallel engine is bit-identical to the sequential one on the E8 and
//!   E14 harness configurations, assert every measured N produced the
//!   same cycle count under both engines, fail if any row regressed more
//!   than 35% in cycles/sec against the committed `BENCH_engine.json`
//!   (matched by N + engine + workload), and — on multi-core hosts —
//!   gate parallel against sequential at N ≥ 1024: with ≥ 4 cores
//!   parallel must be at least as fast, with 2–3 cores it gets a 10%
//!   noise margin. Exits non-zero on any violation.
//! * `--out <path>` — also write the freshly measured rows to `<path>`
//!   (CI uploads this as an artifact so regressions can be diffed).
//! * `--metrics-out <path>` — run one instrumented N = 1024 ticket
//!   machine with cycle-windowed telemetry (window 1024) and write the
//!   per-window counter series + hot-spot heatmap as JSON.
//! * `--trace-out <path>` — same instrumented run, written as Chrome
//!   `trace_event` JSON: load it at <https://ui.perfetto.dev>.
//! * `--workload <name>` — measure only that workload (`ticket` or
//!   `idle`); an unknown name exits with an error listing the known
//!   workloads instead of panicking mid-run.
//!
//! The committed baseline records the machine it was measured on; the
//! regression gate is only meaningful across runs on comparable hardware.

use std::path::PathBuf;
use std::thread;
use std::time::Instant;

use ultra_bench::json::{array_lines, metrics_json, JsonObject};
use ultra_faults::FaultPlan;
use ultracomputer::machine::{MachineBuilder, RunOutcome};
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::{chrome_trace, MachineReport};

/// PEs that stay busy in the `idle` workload (matches the paper's §4.2
/// setting of a few active PEs inside a big fabric).
const IDLE_ACTIVE_PES: usize = 16;

/// Workloads this harness knows how to build; `--workload` accepts any of
/// these, and anything else is a usage error, not a panic.
const KNOWN_WORKLOADS: &[&str] = &["ticket", "idle"];

/// Prints a usage error naming the known workloads and exits non-zero.
fn unknown_workload(name: &str) -> ! {
    eprintln!(
        "error: unknown workload `{name}` (known workloads: {})",
        KNOWN_WORKLOADS.join(", ")
    );
    std::process::exit(2);
}

/// On 2–3-core hosts, how much slower than sequential the parallel
/// engine may measure at N ≥ 1024 before the gate fails (noise margin:
/// with so little fan-out headroom, merge overhead can eat the gain).
const PARALLEL_TOLERANCE: f64 = 0.9;

/// On hosts with ≥ 4 cores the parallel engine must actually *win*: at
/// N ≥ 1024 on the ticket workload it may not measure below sequential
/// at all.
const PARALLEL_TOLERANCE_WIDE: f64 = 1.0;

/// Every PE draws `iters` tickets from one combinable hot word and writes
/// each ticket into a private slot — serialization-heavy, so the network,
/// banks, and PE shards all stay busy.
fn ticket_program(iters: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(iters),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: Some(0),
                    },
                    Op::Store {
                        addr: Expr::add(Expr::mul(Expr::PeIndex, 64), Expr::Reg(1)),
                        value: Expr::Reg(0),
                    },
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

/// The `idle` workload: the first [`IDLE_ACTIVE_PES`] run the ticket
/// loop, the rest halt on cycle one. Per-cycle engine cost is then
/// dominated by how the network sweep scales with *topology* rather than
/// traffic — the dense scan pays for every switch of every stage, the
/// sparse walk only for the handful carrying tickets.
fn idle_programs(n: usize, iters: i64) -> Vec<Program> {
    let active = ticket_program(iters);
    let parked = Program::new(body(vec![Op::Halt]), vec![]);
    (0..n)
        .map(|pe| {
            if pe < IDLE_ACTIVE_PES.min(n) {
                active.clone()
            } else {
                parked.clone()
            }
        })
        .collect()
}

struct Row {
    n: usize,
    engine: &'static str,
    workload: &'static str,
    threads: usize,
    iters: i64,
    cycles: u64,
    wall_secs: f64,
    cycles_per_sec: f64,
}

impl Row {
    fn pe_cycles_per_sec(&self) -> f64 {
        self.cycles_per_sec * self.n as f64
    }
}

/// Best-of-`reps` measurement (minimum wall time): simulated cycles are
/// deterministic across repetitions — asserted — so the fastest rep is
/// the least-noisy estimate of the engine's cost.
fn measure(
    n: usize,
    iters: i64,
    workload: &'static str,
    engine: &'static str,
    threads: usize,
    reps: u32,
) -> (Row, RunOutcome) {
    let build = || {
        let b = MachineBuilder::new(n).threads(threads);
        match workload {
            "ticket" => b.build_spmd(&ticket_program(iters)),
            "idle" => {
                // Only the active PEs partake in barriers (none here) and
                // the stats range; the parked ones just halt.
                b.build(idle_programs(n, iters))
            }
            other => unknown_workload(other),
        }
    };
    if reps == 1 {
        // Single-rep rows still need the process heap warmed at this
        // fabric size: the first-ever run at a new N pays first-touch
        // page faults for gigabyte-scale shard state, which would bill
        // whichever engine happens to run first ~2x the steady cost.
        let mut warm = build();
        warm.run();
    }
    let mut best: Option<(f64, RunOutcome)> = None;
    for _ in 0..reps {
        let mut m = build();
        let t0 = Instant::now();
        let out = m.run();
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        assert!(
            out.completed,
            "engine bench workload must complete (n={n} workload={workload})"
        );
        if let Some((_, prev)) = &best {
            assert_eq!(prev.cycles, out.cycles, "nondeterministic run at n={n}");
        }
        if best.as_ref().map_or(true, |(w, _)| wall < *w) {
            best = Some((wall, out));
        }
    }
    let (wall, out) = best.expect("reps >= 1");
    let row = Row {
        n,
        engine,
        workload,
        threads,
        iters,
        cycles: out.cycles,
        wall_secs: wall,
        cycles_per_sec: out.cycles as f64 / wall,
    };
    (row, out)
}

fn host_threads() -> usize {
    thread::available_parallelism().map_or(1, |p| p.get())
}

fn parallel_threads() -> usize {
    host_threads().clamp(2, 4)
}

fn render_json(rows: &[Row]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .uint("n", r.n as u64)
                .str("engine", r.engine)
                .str("workload", r.workload)
                .uint("threads", r.threads as u64)
                .int("iters", r.iters)
                .uint("cycles", r.cycles)
                .float("wall_secs", r.wall_secs, 6)
                .float("cycles_per_sec", r.cycles_per_sec, 1)
                .float("pe_cycles_per_sec", r.pe_cycles_per_sec(), 1)
                .render()
        })
        .collect();
    let mut text = JsonObject::new()
        .str("bench", "engine")
        .uint("host_threads", host_threads() as u64)
        .uint("host_cores", host_threads() as u64)
        // The harness does not pin worker threads to cores; recorded so a
        // future pinned baseline is distinguishable from these rows.
        .bool("pinned", false)
        .raw("rows", array_lines(&items, 4))
        .render();
    text.push('\n');
    text
}

/// Pulls `"key": <number>` out of one baseline row line. The baseline is
/// always written by [`render_json`] (one row object per line), so a
/// line-based scan is a full parser for it.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// Finds the committed cycles/sec for `(n, engine, workload)`. Baselines
/// written before the workload field existed implicitly measured the
/// ticket workload, so a row without one matches `"ticket"` only.
fn committed_rate(baseline: &str, n: usize, engine: &str, workload: &str) -> Option<f64> {
    baseline.lines().find_map(|line| {
        let engine_tag = format!("\"engine\": \"{engine}\"");
        if !line.contains(&engine_tag) || field_f64(line, "n") != Some(n as f64) {
            return None;
        }
        let row_workload = if line.contains("\"workload\": ") {
            ["ticket", "idle"]
                .into_iter()
                .find(|w| line.contains(&format!("\"workload\": \"{w}\"")))?
        } else {
            "ticket"
        };
        (row_workload == workload)
            .then(|| field_f64(line, "cycles_per_sec"))
            .flatten()
    })
}

/// Fails if any measured row regressed more than 35% in cycles/sec
/// against the committed baseline row with the same (N, engine,
/// workload). Missing baseline rows are skipped — a new N or workload is
/// not a regression. On hosts with ≥ 4 cores, additionally fails unless
/// the parallel engine measured at least as fast as sequential at
/// N ≥ 1024 on the ticket workload (the persistent pool's reason to
/// exist); 2–3-core hosts get a 10% noise margin instead, and
/// single-core hosts skip that comparison — there is nothing to fan out
/// over.
fn regression_gate(rows: &[Row]) -> Result<(), String> {
    let path = baseline_path();
    match std::fs::read_to_string(&path) {
        Ok(baseline) => {
            for row in rows {
                let Some(committed) = committed_rate(&baseline, row.n, row.engine, row.workload)
                else {
                    continue;
                };
                let floor = 0.65 * committed;
                println!(
                    "gate n={} {} {}: {:.0} cycles/s vs committed {:.0} (floor {:.0})",
                    row.n, row.engine, row.workload, row.cycles_per_sec, committed, floor
                );
                if row.cycles_per_sec < floor {
                    return Err(format!(
                        "{} n={} ({}) regressed >35%: {:.0} cycles/s vs committed {:.0}",
                        row.engine, row.n, row.workload, row.cycles_per_sec, committed
                    ));
                }
            }
        }
        Err(_) => println!(
            "no committed baseline at {} — skipping gate",
            path.display()
        ),
    }
    if host_threads() >= 2 {
        let tolerance = if host_threads() >= 4 {
            PARALLEL_TOLERANCE_WIDE
        } else {
            PARALLEL_TOLERANCE
        };
        for seq in rows
            .iter()
            .filter(|r| r.engine == "sequential" && r.workload == "ticket" && r.n >= 1024)
        {
            let Some(par) = rows
                .iter()
                .find(|r| r.engine == "parallel" && r.workload == "ticket" && r.n == seq.n)
            else {
                continue;
            };
            println!(
                "gate n={} parallel({}) {:.0} cycles/s vs sequential {:.0} (must be >= {tolerance}x)",
                seq.n, par.threads, par.cycles_per_sec, seq.cycles_per_sec
            );
            if par.cycles_per_sec < tolerance * seq.cycles_per_sec {
                return Err(format!(
                    "parallel({}) below {tolerance}x sequential at n={}: {:.0} vs {:.0} cycles/s",
                    par.threads, seq.n, par.cycles_per_sec, seq.cycles_per_sec
                ));
            }
        }
    } else {
        println!("single-core host — skipping parallel-vs-sequential gate");
    }
    Ok(())
}

/// Bit-identity spot checks on the E8 (64 PEs, d = 1) and E14 (16 PEs,
/// d = 2, copy 0 dead) harness configurations: sequential, parallel, and
/// fast-forward-off runs must digest identically.
fn parity_check() -> Result<(), String> {
    type MakeBuilder = Box<dyn Fn() -> MachineBuilder>;
    let threads = parallel_threads();
    let cases: [(&str, MakeBuilder, i64); 2] = [
        ("E8 n=64 d=1", Box::new(|| MachineBuilder::new(64)), 8),
        (
            "E14 n=16 d=2 dead-copy",
            Box::new(|| {
                MachineBuilder::new(16)
                    .network(2)
                    .faults(FaultPlan::none().dead_copy(0))
            }),
            20,
        ),
    ];
    for (label, make, iters) in &cases {
        let program = ticket_program(*iters);
        let digest = |b: MachineBuilder| {
            let mut m = b.build_spmd(&program);
            m.run();
            MachineReport::from_machine(&m).parity_string()
        };
        let seq = digest(make().threads(1));
        let par = digest(make().threads(threads));
        let stepped = digest(make().threads(1).fast_forward(false));
        if seq != par {
            return Err(format!(
                "{label}: parallel({threads}) diverged from sequential"
            ));
        }
        if seq != stepped {
            return Err(format!("{label}: fast-forward changed the simulation"));
        }
        println!("parity {label}: sequential == parallel({threads}) == no-fast-forward");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let flag_path = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            PathBuf::from(
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("{name} needs a path")),
            )
        })
    };
    let out_path = flag_path("--out");
    let metrics_path = flag_path("--metrics-out");
    let trace_path = flag_path("--trace-out");
    // `--workload <name>` restricts the matrix to one workload; a name
    // the harness does not know is a usage error listing the known ones.
    let workload_filter = args.iter().position(|a| a == "--workload").map(|i| {
        let name = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("error: --workload needs a name");
            std::process::exit(2);
        });
        if !KNOWN_WORKLOADS.contains(&name.as_str()) {
            unknown_workload(name);
        }
        name.clone()
    });
    let runs = |workload: &str| workload_filter.as_deref().map_or(true, |w| w == workload);
    // Quick rows must still run long enough (≳ 0.1 s) that host jitter
    // cannot swing a best-of-reps row past the regression gate. The
    // 65536 ticket row is full-mode only: one run is ~10 s of wall
    // time, which would dominate a CI --quick pass for one data point.
    let ticket_sizes: &[(usize, i64)] = if quick {
        &[(64, 100), (256, 40), (1024, 10), (4096, 2), (16384, 1)]
    } else {
        &[
            (64, 200),
            (256, 100),
            (1024, 40),
            (4096, 10),
            (16384, 2),
            (65536, 1),
        ]
    };
    // Big-fabric idle rows keep full-size iteration counts even under
    // --quick: the runs are milliseconds either way, and shortening them
    // shifts the rate enough to graze the 35% regression floor.
    let idle_sizes: &[(usize, i64)] = if quick {
        &[(1024, 120), (4096, 25), (16384, 20), (65536, 5)]
    } else {
        &[(1024, 200), (4096, 50), (16384, 20), (65536, 5)]
    };
    let threads = parallel_threads();
    // Big-fabric ticket rows run once: a single run is seconds long, so
    // best-of-reps buys nothing but triples the wall time.
    let reps_for = |n: usize| if n >= 16384 { 1 } else { 3 };

    let print_row = |r: &Row| {
        println!(
            "n={:<5} {:<8} {:<10} threads={} cycles={:<8} wall={:.3}s  {:>10.0} cycles/s  {:>12.0} PE·cycles/s",
            r.n, r.workload, r.engine, r.threads, r.cycles, r.wall_secs, r.cycles_per_sec,
            r.pe_cycles_per_sec()
        );
    };
    let mut rows = Vec::new();
    for &(n, iters) in ticket_sizes {
        if !runs("ticket") {
            break;
        }
        let reps = reps_for(n);
        let (seq, seq_out) = measure(n, iters, "ticket", "sequential", 1, reps);
        let (par, par_out) = measure(n, iters, "ticket", "parallel", threads, reps);
        assert_eq!(
            seq_out.cycles, par_out.cycles,
            "engines disagreed on simulated time at n={n}"
        );
        print_row(&seq);
        print_row(&par);
        rows.push(seq);
        rows.push(par);
    }
    // Idle-heavy rows run under both engines: the sequential row prices
    // the word-packed sweep itself, the parallel row checks that masked
    // dispatch degrades to the same walk (16 live shards must not be
    // scattered across a thread fan-out) instead of taxing it.
    for &(n, iters) in idle_sizes {
        if !runs("idle") {
            break;
        }
        let reps = reps_for(n);
        let (seq, seq_out) = measure(n, iters, "idle", "sequential", 1, reps);
        let (par, par_out) = measure(n, iters, "idle", "parallel", threads, reps);
        assert_eq!(
            seq_out.cycles, par_out.cycles,
            "engines disagreed on simulated time at n={n} (idle)"
        );
        print_row(&seq);
        print_row(&par);
        rows.push(seq);
        rows.push(par);
    }

    if let Some(path) = &out_path {
        std::fs::write(path, render_json(&rows)).expect("write --out file");
        println!("wrote {}", path.display());
    }
    if metrics_path.is_some() || trace_path.is_some() {
        // One instrumented run of the N = 1024 ticket machine: telemetry
        // at the acceptance window of 1024 cycles, the event trace, and
        // engine phase spans, all on at once.
        let (n, iters) = if quick { (1024, 8) } else { (1024, 40) };
        let mut m = MachineBuilder::new(n).build_spmd(&ticket_program(iters));
        m.enable_telemetry(1024, 1 << 16);
        m.enable_trace(1 << 16);
        m.enable_phase_spans(1 << 16);
        let out = m.run();
        assert!(out.completed, "instrumented run must complete");
        println!(
            "instrumented n={n}: {} cycles, {} telemetry windows, {} phase spans",
            out.cycles,
            m.telemetry().len(),
            m.phase_spans().len()
        );
        if let Some(path) = &metrics_path {
            let heatmap = m.heatmap();
            std::fs::write(
                path,
                metrics_json("engine", m.telemetry(), heatmap.as_ref()),
            )
            .expect("write --metrics-out file");
            println!("wrote {}", path.display());
        }
        if let Some(path) = &trace_path {
            std::fs::write(path, chrome_trace(&m)).expect("write --trace-out file");
            println!("wrote {}", path.display());
        }
    }
    if check {
        let mut failed = false;
        if let Err(e) = parity_check() {
            eprintln!("PARITY FAILURE: {e}");
            failed = true;
        }
        if let Err(e) = regression_gate(&rows) {
            eprintln!("REGRESSION: {e}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("engine check passed: parity holds, no >35% cycles/sec regression");
    } else if workload_filter.is_some() {
        // A filtered matrix is not a full baseline; refuse to clobber the
        // committed rows with a partial set.
        println!("--workload filter active — not rewriting the committed baseline");
    } else {
        let path = baseline_path();
        std::fs::write(&path, render_json(&rows)).expect("write BENCH_engine.json");
        println!("wrote {}", path.display());
    }
}

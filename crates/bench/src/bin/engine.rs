//! Cycle-engine throughput harness.
//!
//! Measures simulated-cycles/sec and PE·cycles/sec for the sequential and
//! parallel engines at N ∈ {64, 256, 1024} on the hot-counter ticket
//! workload, and writes the rows to `BENCH_engine.json` at the repo root.
//!
//! Flags (combine freely):
//!
//! * `--quick` — CI-sized iteration counts (~10× shorter runs).
//! * `--check` — instead of (over)writing the baseline: assert the
//!   parallel engine is bit-identical to the sequential one on the E8 and
//!   E14 harness configurations, assert every measured N produced the
//!   same cycle count under both engines, and fail if sequential
//!   cycles/sec regressed more than 20% against the committed
//!   `BENCH_engine.json`. Exits non-zero on any violation.
//!
//! The committed baseline records the machine it was measured on; the
//! regression gate is only meaningful across runs on comparable hardware.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::thread;
use std::time::Instant;

use ultra_faults::FaultPlan;
use ultracomputer::machine::{MachineBuilder, RunOutcome};
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::MachineReport;

/// Every PE draws `iters` tickets from one combinable hot word and writes
/// each ticket into a private slot — serialization-heavy, so the network,
/// banks, and PE shards all stay busy.
fn workload(iters: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(iters),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: Some(0),
                    },
                    Op::Store {
                        addr: Expr::add(Expr::mul(Expr::PeIndex, 64), Expr::Reg(1)),
                        value: Expr::Reg(0),
                    },
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

struct Row {
    n: usize,
    engine: &'static str,
    threads: usize,
    iters: i64,
    cycles: u64,
    wall_secs: f64,
    cycles_per_sec: f64,
}

impl Row {
    fn pe_cycles_per_sec(&self) -> f64 {
        self.cycles_per_sec * self.n as f64
    }
}

/// Best-of-`reps` measurement (minimum wall time): simulated cycles are
/// deterministic across repetitions — asserted — so the fastest rep is
/// the least-noisy estimate of the engine's cost.
fn measure(
    n: usize,
    iters: i64,
    engine: &'static str,
    threads: usize,
    reps: u32,
) -> (Row, RunOutcome) {
    let program = workload(iters);
    let mut best: Option<(f64, RunOutcome)> = None;
    for _ in 0..reps {
        let mut m = MachineBuilder::new(n).threads(threads).build_spmd(&program);
        let t0 = Instant::now();
        let out = m.run();
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        assert!(out.completed, "engine bench workload must complete (n={n})");
        if let Some((_, prev)) = &best {
            assert_eq!(prev.cycles, out.cycles, "nondeterministic run at n={n}");
        }
        if best.as_ref().map_or(true, |(w, _)| wall < *w) {
            best = Some((wall, out));
        }
    }
    let (wall, out) = best.expect("reps >= 1");
    let row = Row {
        n,
        engine,
        threads,
        iters,
        cycles: out.cycles,
        wall_secs: wall,
        cycles_per_sec: out.cycles as f64 / wall,
    };
    (row, out)
}

fn parallel_threads() -> usize {
    thread::available_parallelism().map_or(2, |p| p.get().clamp(2, 4))
}

fn render_json(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"engine\",");
    let _ = writeln!(
        s,
        "  \"host_threads\": {},",
        thread::available_parallelism().map_or(1, |p| p.get())
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"n\": {}, \"engine\": \"{}\", \"threads\": {}, \"iters\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.1}, \"pe_cycles_per_sec\": {:.1}}}{comma}",
            r.n, r.engine, r.threads, r.iters, r.cycles, r.wall_secs, r.cycles_per_sec,
            r.pe_cycles_per_sec()
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pulls `"key": <number>` out of one baseline row line. The baseline is
/// always written by [`render_json`] (one row object per line), so a
/// line-based scan is a full parser for it.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// Fails (returns an error string) if any sequential row regressed more
/// than 20% in cycles/sec against the committed baseline row with the
/// same N. Missing baseline rows are skipped — a new N is not a
/// regression.
fn regression_gate(rows: &[Row]) -> Result<(), String> {
    let path = baseline_path();
    let Ok(baseline) = std::fs::read_to_string(&path) else {
        println!(
            "no committed baseline at {} — skipping gate",
            path.display()
        );
        return Ok(());
    };
    for row in rows.iter().filter(|r| r.engine == "sequential") {
        let committed = baseline.lines().find_map(|line| {
            (line.contains("\"engine\": \"sequential\"")
                && field_f64(line, "n") == Some(row.n as f64))
            .then(|| field_f64(line, "cycles_per_sec"))
            .flatten()
        });
        let Some(committed) = committed else { continue };
        let floor = 0.8 * committed;
        println!(
            "gate n={}: {:.0} cycles/s vs committed {:.0} (floor {:.0})",
            row.n, row.cycles_per_sec, committed, floor
        );
        if row.cycles_per_sec < floor {
            return Err(format!(
                "sequential n={} regressed >20%: {:.0} cycles/s vs committed {:.0}",
                row.n, row.cycles_per_sec, committed
            ));
        }
    }
    Ok(())
}

/// Bit-identity spot checks on the E8 (64 PEs, d = 1) and E14 (16 PEs,
/// d = 2, copy 0 dead) harness configurations: sequential, parallel, and
/// fast-forward-off runs must digest identically.
fn parity_check() -> Result<(), String> {
    type MakeBuilder = Box<dyn Fn() -> MachineBuilder>;
    let threads = parallel_threads();
    let cases: [(&str, MakeBuilder, i64); 2] = [
        ("E8 n=64 d=1", Box::new(|| MachineBuilder::new(64)), 8),
        (
            "E14 n=16 d=2 dead-copy",
            Box::new(|| {
                MachineBuilder::new(16)
                    .network(2)
                    .faults(FaultPlan::none().dead_copy(0))
            }),
            20,
        ),
    ];
    for (label, make, iters) in &cases {
        let program = workload(*iters);
        let digest = |b: MachineBuilder| {
            let mut m = b.build_spmd(&program);
            m.run();
            MachineReport::from_machine(&m).parity_string()
        };
        let seq = digest(make().threads(1));
        let par = digest(make().threads(threads));
        let stepped = digest(make().threads(1).fast_forward(false));
        if seq != par {
            return Err(format!(
                "{label}: parallel({threads}) diverged from sequential"
            ));
        }
        if seq != stepped {
            return Err(format!("{label}: fast-forward changed the simulation"));
        }
        println!("parity {label}: sequential == parallel({threads}) == no-fast-forward");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let sizes: &[(usize, i64)] = if quick {
        &[(64, 50), (256, 25), (1024, 8)]
    } else {
        &[(64, 200), (256, 100), (1024, 40)]
    };
    let threads = parallel_threads();
    let reps = if quick { 2 } else { 3 };

    let mut rows = Vec::new();
    for &(n, iters) in sizes {
        let (seq, seq_out) = measure(n, iters, "sequential", 1, reps);
        let (par, par_out) = measure(n, iters, "parallel", threads, reps);
        assert_eq!(
            seq_out.cycles, par_out.cycles,
            "engines disagreed on simulated time at n={n}"
        );
        for r in [&seq, &par] {
            println!(
                "n={:<5} {:<10} threads={} cycles={:<7} wall={:.3}s  {:>10.0} cycles/s  {:>12.0} PE·cycles/s",
                r.n, r.engine, r.threads, r.cycles, r.wall_secs, r.cycles_per_sec,
                r.pe_cycles_per_sec()
            );
        }
        rows.push(seq);
        rows.push(par);
    }

    if check {
        let mut failed = false;
        if let Err(e) = parity_check() {
            eprintln!("PARITY FAILURE: {e}");
            failed = true;
        }
        if let Err(e) = regression_gate(&rows) {
            eprintln!("REGRESSION: {e}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("engine check passed: parity holds, no >20% cycles/sec regression");
    } else {
        let path = baseline_path();
        std::fs::write(&path, render_json(&rows)).expect("write BENCH_engine.json");
        println!("wrote {}", path.display());
    }
}

//! Experiment E14: graceful degradation under faults — the fault-regime
//! analogue of E6/E8.
//!
//! Four studies:
//!
//! 1. **Healthy baseline**: the exact E8 `bandwidth` configuration
//!    (n = 64, p = 0.25, d = 1) run through the fault-aware runner with
//!    `FaultPlan::none()` — its numbers match that harness verbatim,
//!    demonstrating zero-cost idle injection.
//! 2. **Dead switch ports** (open loop, `d = 2` copies): bandwidth and
//!    transit time as a growing fraction of forward switch ports dies;
//!    routes refused by one copy fail over to the other, and words
//!    unreachable in every copy are abandoned (counted, not wedged).
//! 3. **Dead memory modules** (open loop): traffic re-hashes around the
//!    dead modules onto survivors, with a hot-spot column comparing
//!    combining on/off under the same faults.
//! 4. **Dead network copy** (closed loop, the full machine): with one of
//!    `d = 2` copies fail-stopped, every PE's fetch-and-adds still apply
//!    exactly once (the serialization principle holds) and the machine
//!    retains well over 40% of its healthy bandwidth.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin degradation
//! ```
//!
//! `--metrics-out <path>` / `--trace-out <path>` add one observed run of
//! the E14a configuration at 10% dead ports (d = 2) and write its
//! per-window telemetry + per-switch heatmap as JSON / Chrome
//! `trace_event` JSON. The default table output is unchanged.

use std::path::PathBuf;

use ultra_bench::json::{metrics_json, series_chrome_trace};
use ultra_bench::{run_open_loop_faulty, run_open_loop_observed, OpenLoopConfig};
use ultra_faults::{FaultPlan, NetShape};
use ultra_net::config::{NetConfig, SwitchPolicy};
use ultra_pe::traffic::{HotspotTraffic, UniformTraffic};
use ultra_sim::{MemAddr, MmId, Value};
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::{FaultSummary, MachineBuilder, MachineReport};

/// PEs for the open-loop sweeps (matches the E8 n = 64 row).
const N: usize = 64;
/// Offered load (matches E8).
const P: f64 = 0.25;

fn sweep_cfg(policy: SwitchPolicy, copies: usize) -> OpenLoopConfig {
    OpenLoopConfig {
        net: NetConfig {
            policy,
            ..NetConfig::small(N)
        },
        copies,
        mm_service: 1,
        warmup: 500,
        measure: 4_000,
    }
}

fn traffic() -> UniformTraffic {
    // Same stream as the E8 harness: loads only, seed 3.
    UniformTraffic::new(N, P, 1.0, 3)
}

fn shape(copies: usize) -> NetShape {
    NetShape {
        copies,
        stages: 6,
        switches_per_stage: N / 2,
        k: 2,
        mms: N,
    }
}

fn bar(rel: f64) -> String {
    let filled = (rel.clamp(0.0, 1.0) * 40.0).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(40 - filled))
}

fn e8_baseline() {
    println!("-- E14 baseline: FaultPlan::none() reproduces the E8 bandwidth rows (n = {N}) --\n");
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "policy", "per-PE thruput", "mean RT (cyc)", "drops"
    );
    for (policy, label) in [
        (SwitchPolicy::QueuedCombining, "queued"),
        (SwitchPolicy::DropOnConflict, "drop"),
    ] {
        let r = run_open_loop_faulty(sweep_cfg(policy, 1), &FaultPlan::none(), &mut traffic());
        println!(
            "{:>10} {:>14.4} {:>14.1} {:>10}",
            label,
            r.throughput,
            r.round_trip.mean(),
            r.drops
        );
    }
    println!();
}

fn dead_port_sweep() {
    println!("-- E14a: dead forward switch ports (open loop, d = 2, p = {P}) --\n");
    println!(
        "{:>7} {:>14} {:>14} {:>10} {:>10} {:>11} {:>8}",
        "dead %", "per-PE thruput", "mean RT (cyc)", "refused", "failovers", "unroutable", "rel bw"
    );
    let mut curve: Vec<(f64, f64)> = Vec::new();
    let mut healthy = 0.0;
    for frac in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let plan = FaultPlan::random_static(0xE14, shape(2), 0.0, frac);
        let r = run_open_loop_faulty(
            sweep_cfg(SwitchPolicy::QueuedCombining, 2),
            &plan,
            &mut traffic(),
        );
        if frac == 0.0 {
            healthy = r.throughput;
        }
        let rel = r.throughput / healthy;
        println!(
            "{:>6.0}% {:>14.4} {:>14.1} {:>10} {:>10} {:>11} {:>7.0}%",
            100.0 * frac,
            r.throughput,
            r.round_trip.mean(),
            r.fault_refusals,
            r.failovers,
            r.unroutable,
            100.0 * rel
        );
        curve.push((frac, rel));
    }
    println!("\nrelative bandwidth vs dead-port fraction:");
    for (frac, rel) in curve {
        println!(
            "  {:>4.0}% |{}| {:>4.0}%",
            100.0 * frac,
            bar(rel),
            100.0 * rel
        );
    }
    println!();
}

fn dead_mm_sweep() {
    println!("-- E14b: dead memory modules, traffic re-hashed onto survivors (open loop) --\n");
    println!("uniform loads (d = 1) | hot-spot 20% F&A, combining on vs off:");
    println!(
        "{:>7} {:>9} {:>14} {:>14} {:>8} | {:>12} {:>12} {:>9}",
        "dead %",
        "dead MMs",
        "per-PE thruput",
        "mean RT (cyc)",
        "rel bw",
        "hot combine",
        "hot nocomb",
        "combines"
    );
    let mut healthy = 0.0;
    for frac in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let plan = FaultPlan::random_static(0xE14B, shape(1), frac, 0.0);
        let dead = plan.dead_mms().len();
        let r = run_open_loop_faulty(
            sweep_cfg(SwitchPolicy::QueuedCombining, 1),
            &plan,
            &mut traffic(),
        );
        if frac == 0.0 {
            healthy = r.throughput;
        }
        assert!(
            r.completed * 100 >= r.injected * 99,
            "re-hashing must lose no request to a dead module \
             ({} of {} completed)",
            r.completed,
            r.injected
        );
        // The E6-style ablation under the same dead-MM plan: 20% of the
        // offered load is a fetch-and-add on one hot word. Combining
        // keeps the hot module off the critical path even degraded.
        let hot = |policy| {
            let mut t = HotspotTraffic::new(N, P, 0.2, MemAddr::new(MmId(5), 9), 11);
            run_open_loop_faulty(sweep_cfg(policy, 1), &plan, &mut t)
        };
        let hc = hot(SwitchPolicy::QueuedCombining);
        let hn = hot(SwitchPolicy::QueuedNoCombine);
        println!(
            "{:>6.0}% {:>9} {:>14.4} {:>14.1} {:>7.0}% | {:>12.4} {:>12.4} {:>9}",
            100.0 * frac,
            dead,
            r.throughput,
            r.round_trip.mean(),
            100.0 * r.throughput / healthy,
            hc.throughput,
            hn.throughput,
            hc.combines
        );
    }
    println!();
}

/// Every PE claims `iters` tickets from one hot word and marks each
/// ticket's slot — exactness of both is the serialization principle.
fn ticket_program(iters: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(iters),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: Some(0),
                    },
                    Op::Store {
                        addr: Expr::add(Expr::Const(1000), Expr::Reg(0)),
                        value: Expr::Const(1),
                    },
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

fn machine_run(pes: usize, iters: i64, plan: FaultPlan) -> (u64, FaultSummary, bool) {
    let mut m = MachineBuilder::new(pes)
        .network(2)
        .faults(plan)
        .build_spmd(&ticket_program(iters));
    let out = m.run();
    let total = pes as i64 * iters;
    let mut exact = out.completed && m.read_shared(0) == total as Value;
    for slot in 0..total as usize {
        exact &= m.read_shared(1000 + slot) == 1;
    }
    // Captured output is diffed across runs by the repro suite; drop the
    // wall-clock footer so it stays byte-identical.
    let report = MachineReport::from_machine(&m).without_wall_clock();
    println!("{report}");
    (out.cycles, m.fault_summary(), exact)
}

fn dead_copy_machine() {
    let pes = 16;
    let iters = 20;
    println!("-- E14c: one of d = 2 network copies dead (closed loop, full machine) --\n");
    println!("{pes} PEs x {iters} fetch-and-add tickets each, healthy:");
    let (healthy_cycles, _, healthy_exact) = machine_run(pes, iters, FaultPlan::none());
    println!("\nsame workload, copy 0 fail-stopped at boot:");
    let (degraded_cycles, faults, degraded_exact) =
        machine_run(pes, iters, FaultPlan::none().dead_copy(0));
    let rel = healthy_cycles as f64 / degraded_cycles as f64;
    println!();
    assert!(healthy_exact, "healthy run must be exact");
    assert!(
        degraded_exact,
        "every ticket must still be claimed exactly once through the survivor"
    );
    assert!(faults.failovers > 0, "the survivor must carry refused work");
    println!(
        "correctness: all {} tickets exact in both runs (serialization principle holds)",
        pes as i64 * iters
    );
    println!(
        "bandwidth:   {healthy_cycles} healthy cycles vs {degraded_cycles} degraded \
         -> {:.0}% of healthy (criterion: >= 40%)",
        100.0 * rel
    );
    assert!(
        rel >= 0.40,
        "one dead copy of two must retain >= 40% of healthy bandwidth (got {:.0}%)",
        100.0 * rel
    );
}

/// The observed-telemetry export: the E14a dead-port configuration at
/// 10% (the most structured heatmap — fault-masked routes shift combines
/// and queueing onto the survivor paths).
fn export_observed(metrics_path: Option<&PathBuf>, trace_path: Option<&PathBuf>) {
    let plan = FaultPlan::random_static(0xE14, shape(2), 0.0, 0.10);
    let (_, obs) = run_open_loop_observed(
        sweep_cfg(SwitchPolicy::QueuedCombining, 2),
        &plan,
        &mut traffic(),
        512,
        4096,
    );
    if let Some(path) = metrics_path {
        std::fs::write(
            path,
            metrics_json("degradation", &obs.series, Some(&obs.heatmap)),
        )
        .expect("write --metrics-out file");
        println!("wrote {}", path.display());
    }
    if let Some(path) = trace_path {
        std::fs::write(path, series_chrome_trace("degradation", &obs.series))
            .expect("write --trace-out file");
        println!("wrote {}", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_path = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            PathBuf::from(
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("{name} needs a path")),
            )
        })
    };
    let metrics_path = flag_path("--metrics-out");
    let trace_path = flag_path("--trace-out");
    println!("E14 — graceful degradation under deterministic fault injection\n");
    e8_baseline();
    dead_port_sweep();
    dead_mm_sweep();
    dead_copy_machine();
    println!(
        "\nExpected shape: dead ports shave bandwidth roughly in proportion to\n\
         the routes they block (failover to the second copy absorbs most of\n\
         it), dead MMs cost the survivor fraction's worth of service rate\n\
         while combining still flattens the hot spot, and a whole dead copy\n\
         halves injection bandwidth at worst — the redundancy the paper\n\
         builds in (d copies, hashed MMs) degrades gracefully instead of\n\
         failing."
    );
    if metrics_path.is_some() || trace_path.is_some() {
        export_observed(metrics_path.as_ref(), trace_path.as_ref());
    }
}

//! Experiment E7: the §4.2 claim that "queues of modest size (18) gives
//! essentially the same performance as infinite queues".
//!
//! Uniform traffic at a healthy load through a 256-PE 4×4 network; the
//! per-port queue capacity sweeps from starved to unbounded.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin queue_depth
//! ```

use ultra_bench::{run_open_loop, OpenLoopConfig};
use ultra_net::config::NetConfig;
use ultra_pe::traffic::UniformTraffic;

fn main() {
    println!("E7 — finite switch queues vs. infinite (N = 256, k = 4, p = 0.15, stores)\n");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "capacity", "mean RT (cyc)", "p95 RT (cyc)", "throughput", "stalls", "max occ."
    );
    let caps: [(usize, &str); 6] = [
        (3, "3"),
        (6, "6"),
        (9, "9"),
        (15, "15"),
        (18, "18"),
        (usize::MAX, "inf"),
    ];
    let mut results = Vec::new();
    for (cap, label) in caps {
        let cfg = OpenLoopConfig {
            net: NetConfig {
                request_queue_packets: cap,
                ..NetConfig::paper_section42_scaled(256)
            },
            copies: 1,
            mm_service: 2,
            warmup: 1_000,
            measure: 8_000,
        };
        let mut traffic = UniformTraffic::new(256, 0.15, 0.0, 7);
        let r = run_open_loop(cfg, &mut traffic);
        println!(
            "{:>10} {:>14.1} {:>14} {:>12.4} {:>12} {:>10}",
            label,
            r.round_trip.mean(),
            r.round_trip.percentile(95.0),
            r.throughput,
            r.stalled_attempts,
            r.queue_high_water
        );
        results.push((label, r.round_trip.mean()));
    }
    let at_18 = results.iter().find(|(l, _)| *l == "18").unwrap().1;
    let at_inf = results.iter().find(|(l, _)| *l == "inf").unwrap().1;
    println!(
        "\n18-packet queues vs infinite: {:.1} vs {:.1} cycles ({:+.1}%) — the paper's\n\
         \"essentially the same performance\" claim.",
        at_18,
        at_inf,
        100.0 * (at_18 - at_inf) / at_inf
    );
}

//! Serving-tier load sweep: open-loop users vs. tail latency.
//!
//! Runs the [`ultra_workloads::Serving`] workload — seeded Poisson
//! arrivals, fetch-and-add ticket dispatch, KV records hashed across the
//! MMs — at a ladder of offered loads (descending mean inter-arrival
//! gap) on one machine shape, and prints the classic load-vs-latency
//! hockey stick: p50/p90/p99/max end-to-end request latency per point.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin serving
//! ```
//!
//! Every point is a deterministic function of `(pes, seed, requests,
//! mean_gap)` — the same curve on every engine and every run, which is
//! what lets CI diff the artifact byte-for-byte. Flags:
//!
//! * `--quick` — CI-sized run (fewer requests, fewer points).
//! * `--pes <n>` / `--requests <n>` / `--seed <n>` — machine shape.
//! * `--out <path>` — write the curve as a JSON artifact.
//! * `--check` — re-run every point under the parallel engine and with
//!   fast-forward disabled, and fail unless the rendered curve and the
//!   parity digest are identical in all three; exits non-zero otherwise.
//! * `--metrics-out <path>` / `--trace-out <path>` — re-run the
//!   highest-load point with cycle-windowed telemetry and write the
//!   per-window series + heatmap as JSON / Chrome `trace_event` JSON.
//! * `--prom-out <path>` — write the sweep's latency distributions as a
//!   Prometheus text exposition (one summary per offered load), the
//!   same format `ultra-serve` answers to `{"metrics"}`.

use std::path::PathBuf;

use ultra_bench::json::{array_lines, metrics_json, JsonObject};
use ultra_obs::metrics::PromWriter;
use ultra_sim::stats::Histogram;
use ultra_sim::wire::fnv1a;
use ultra_sim::Cycle;
use ultra_workloads::Serving;
use ultracomputer::machine::{Machine, MachineBuilder};
use ultracomputer::{chrome_trace, MachineReport};

/// One measured point on the load-vs-latency curve.
struct Point {
    mean_gap: u64,
    cycles: Cycle,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
    mean: f64,
    /// Completed requests per thousand cycles.
    throughput: f64,
    /// FNV-1a of the machine's canonical parity string.
    parity: u64,
    /// The full latency distribution behind the percentiles above.
    lat: Histogram,
}

/// How one sweep is configured: a fixed machine shape swept over gaps.
#[derive(Clone, Copy)]
struct Sweep {
    pes: usize,
    requests: usize,
    seed: u64,
}

/// Mirrors `JobSpec::machine` in ultra-serve (network backend, pinned
/// budget) so a sweep replayed through the service lands on the same
/// parity digest as this bin.
fn build(sweep: Sweep, gap: u64, threads: usize, fast_forward: bool) -> (Serving, Machine) {
    let s = Serving::new(sweep.requests, gap).seed(sweep.seed);
    let m = MachineBuilder::new(sweep.pes)
        .seed(sweep.seed)
        .threads(threads)
        .fast_forward(fast_forward)
        .max_cycles(Cycle::MAX)
        .build_spmd(&s.program());
    (s, m)
}

fn measure(sweep: Sweep, gap: u64, threads: usize, fast_forward: bool) -> Point {
    let (s, mut m) = build(sweep, gap, threads, fast_forward);
    s.install(&mut m);
    let out = m.run();
    assert!(out.completed, "a serving sweep point must drain");
    let lat = s.latencies(&m);
    let parity = fnv1a(MachineReport::from_machine(&m).parity_string().as_bytes());
    Point {
        mean_gap: gap,
        cycles: out.cycles,
        p50: lat.percentile(50.0),
        p90: lat.percentile(90.0),
        p99: lat.percentile(99.0),
        max: lat.max(),
        mean: lat.mean(),
        throughput: sweep.requests as f64 * 1000.0 / out.cycles.max(1) as f64,
        parity,
        lat,
    }
}

/// The sweep as a Prometheus text exposition: one latency summary and
/// one throughput gauge per offered load, rendered from each point's
/// exact [`Histogram`] (same format `ultra-serve` serves live).
fn render_prom(points: &[Point]) -> String {
    let mut w = PromWriter::new();
    w.family(
        "ultra_bench_serving_request_latency_cycles",
        "summary",
        "end-to-end request latency in cycles per offered load (quantile 1 is the max)",
    );
    for p in points {
        let gap = p.mean_gap.to_string();
        w.summary(
            "ultra_bench_serving_request_latency_cycles",
            &[("mean_gap", gap.as_str())],
            &[
                ("0.5", p.p50 as f64),
                ("0.9", p.p90 as f64),
                ("0.99", p.p99 as f64),
                ("1", p.max as f64),
            ],
            p.lat.sum() as f64,
            p.lat.count(),
        );
    }
    w.family(
        "ultra_bench_serving_throughput_per_kcycle",
        "gauge",
        "completed requests per thousand cycles at each offered load",
    );
    for p in points {
        let gap = p.mean_gap.to_string();
        w.sample(
            "ultra_bench_serving_throughput_per_kcycle",
            &[("mean_gap", gap.as_str())],
            p.throughput,
        );
    }
    w.finish()
}

fn point_json(p: &Point) -> String {
    JsonObject::new()
        .uint("mean_gap", p.mean_gap)
        .uint("cycles", p.cycles)
        .uint("p50", p.p50)
        .uint("p90", p.p90)
        .uint("p99", p.p99)
        .uint("max", p.max)
        .float("mean", p.mean, 2)
        .float("throughput_per_kcycle", p.throughput, 4)
        .str("parity", &format!("{:016x}", p.parity))
        .render()
}

fn render_curve(sweep: Sweep, points: &[Point]) -> String {
    let rows: Vec<String> = points.iter().map(point_json).collect();
    let mut text = JsonObject::new()
        .str("bench", "serving")
        .uint("pes", sweep.pes as u64)
        .uint("requests", sweep.requests as u64)
        .uint("seed", sweep.seed)
        .raw("points", array_lines(&rows, 4))
        .render();
    text.push('\n');
    text
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let flag_path = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            PathBuf::from(
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("{name} needs a path")),
            )
        })
    };
    let flag_num = |name: &str, default: u64| {
        args.iter().position(|a| a == name).map_or(default, |i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        })
    };
    let out_path = flag_path("--out");
    let metrics_path = flag_path("--metrics-out");
    let trace_path = flag_path("--trace-out");
    let prom_path = flag_path("--prom-out");
    let sweep = Sweep {
        pes: flag_num("--pes", 8) as usize,
        requests: flag_num("--requests", if quick { 256 } else { 1024 }) as usize,
        seed: flag_num("--seed", 42),
    };
    // Descending gap = ascending offered load; the last points push the
    // tier past saturation, where queueing delay dominates the tail.
    let gaps: &[u64] = if quick {
        &[200, 50, 12, 3]
    } else {
        &[400, 200, 100, 50, 25, 12, 6, 3]
    };

    println!(
        "serving sweep: {} PEs, {} requests, seed {}",
        sweep.pes, sweep.requests, sweep.seed
    );
    println!(
        "{:>9} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "mean gap", "cycles", "p50", "p90", "p99", "max", "mean", "req/kcycle"
    );
    let mut points = Vec::new();
    for &gap in gaps {
        let p = measure(sweep, gap, 1, true);
        println!(
            "{:>9} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10.1} {:>12.4}",
            p.mean_gap, p.cycles, p.p50, p.p90, p.p99, p.max, p.mean, p.throughput
        );
        points.push(p);
    }
    println!(
        "\nExpected shape: latency sits near the bare service time while the\n\
         offered load fits in {} PEs, then the p99 (and then the p50) blow up\n\
         as arrivals outpace capacity and queueing delay accumulates.",
        sweep.pes
    );

    if let Some(path) = &out_path {
        std::fs::write(path, render_curve(sweep, &points)).expect("write --out file");
        println!("wrote {}", path.display());
    }

    if let Some(path) = &prom_path {
        std::fs::write(path, render_prom(&points)).expect("write --prom-out file");
        println!("wrote {}", path.display());
    }

    if check {
        // Engine parity: the rendered point (and the parity digest inside
        // it) must be byte-identical under the parallel engine and with
        // fast-forward off.
        let threads = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        let mut failed = false;
        for (i, &gap) in gaps.iter().enumerate() {
            let base = point_json(&points[i]);
            for (label, threads, ff) in [
                ("parallel", threads.max(2), true),
                ("no-fast-forward", 1, false),
            ] {
                let other = point_json(&measure(sweep, gap, threads, ff));
                if other != base {
                    eprintln!(
                        "PARITY FAILURE at gap {gap} ({label}):\n  sequential: {base}\n  {label}: {other}"
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("parity: sequential == parallel == no-fast-forward on every point");
    }

    if metrics_path.is_some() || trace_path.is_some() {
        // One instrumented run of the highest-load point; observation
        // never perturbs the simulation.
        let gap = *gaps.last().expect("sweep has points");
        let (s, mut m) = build(sweep, gap, 1, true);
        s.install(&mut m);
        m.enable_telemetry(1024, 1 << 16);
        m.enable_trace(1 << 16);
        let out = m.run();
        assert!(out.completed, "instrumented run must complete");
        println!(
            "instrumented gap={gap}: {} cycles, {} telemetry windows",
            out.cycles,
            m.telemetry().len()
        );
        if let Some(path) = &metrics_path {
            let heatmap = m.heatmap();
            std::fs::write(
                path,
                metrics_json("serving", m.telemetry(), heatmap.as_ref()),
            )
            .expect("write --metrics-out file");
            println!("wrote {}", path.display());
        }
        if let Some(path) = &trace_path {
            std::fs::write(path, chrome_trace(&m)).expect("write --trace-out file");
            println!("wrote {}", path.display());
        }
    }
}

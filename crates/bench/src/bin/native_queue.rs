//! Experiment E9: the appendix's claim on real threads — the
//! critical-section-free fetch-and-add queue against a lock-based queue
//! under growing contention (plus counter and barrier comparisons).
//!
//! ```text
//! cargo run --release -p ultra-bench --bin native_queue
//! ```

use std::sync::Arc;
use std::time::Instant;

use ultra_algorithms::{FaaBarrier, FaaCounter, MutexCounter, MutexQueue, UltraQueue};

const OPS_PER_THREAD: usize = 200_000;

fn time_queue_ultra(threads: usize) -> f64 {
    let q = Arc::new(UltraQueue::new(1024));
    run_queue(threads, move |t| {
        let q = Arc::clone(&q);
        move || {
            for i in 0..OPS_PER_THREAD {
                if (t + i) % 2 == 0 {
                    let _ = q.try_enqueue(i as i64);
                } else {
                    let _ = q.try_dequeue();
                }
            }
        }
    })
}

fn time_queue_mutex(threads: usize) -> f64 {
    let q = Arc::new(MutexQueue::new(1024));
    run_queue(threads, move |t| {
        let q = Arc::clone(&q);
        move || {
            for i in 0..OPS_PER_THREAD {
                if (t + i) % 2 == 0 {
                    let _ = q.try_enqueue(i as i64);
                } else {
                    let _ = q.try_dequeue();
                }
            }
        }
    })
}

fn run_queue<F, G>(threads: usize, mk: F) -> f64
where
    F: Fn(usize) -> G,
    G: FnOnce() + Send + 'static,
{
    let bodies: Vec<G> = (0..threads).map(&mk).collect();
    let start = Instant::now();
    let handles: Vec<_> = bodies.into_iter().map(std::thread::spawn).collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    (threads * OPS_PER_THREAD) as f64 / secs / 1e6
}

fn time_counter(threads: usize, faa: bool) -> f64 {
    let fc = Arc::new(FaaCounter::new(0));
    let mc = Arc::new(MutexCounter::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let fc = Arc::clone(&fc);
            let mc = Arc::clone(&mc);
            std::thread::spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    if faa {
                        let _ = fc.fetch_add(1);
                    } else {
                        let _ = mc.fetch_add(1);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (threads * OPS_PER_THREAD) as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn time_barrier(threads: usize, faa: bool) -> f64 {
    let rounds = 5_000usize;
    let fb = Arc::new(FaaBarrier::new(threads));
    let sb = Arc::new(std::sync::Barrier::new(threads));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let fb = Arc::clone(&fb);
            let sb = Arc::clone(&sb);
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    if faa {
                        fb.wait();
                    } else {
                        sb.wait();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    rounds as f64 / start.elapsed().as_secs_f64() / 1e3
}

fn main() {
    println!("E9 — fetch-and-add coordination vs. locks (native threads)\n");
    println!("Mixed enqueue/dequeue throughput, Mops/s (queue capacity 1024):");
    println!(
        "{:>10} {:>12} {:>12} {:>9}",
        "threads", "UltraQueue", "MutexQueue", "ratio"
    );
    for threads in [1usize, 2, 4, 8] {
        let u = time_queue_ultra(threads);
        let m = time_queue_mutex(threads);
        println!("{threads:>10} {u:>12.2} {m:>12.2} {:>8.2}x", u / m);
    }

    println!("\nShared-counter throughput, Mops/s:");
    println!(
        "{:>10} {:>12} {:>12} {:>9}",
        "threads", "fetch_add", "mutex", "ratio"
    );
    for threads in [1usize, 2, 4, 8] {
        let f = time_counter(threads, true);
        let m = time_counter(threads, false);
        println!("{threads:>10} {f:>12.2} {m:>12.2} {:>8.2}x", f / m);
    }

    println!("\nBarrier rounds, Krounds/s:");
    println!(
        "{:>10} {:>12} {:>12}",
        "threads", "FaaBarrier", "std Barrier"
    );
    for threads in [2usize, 4, 8] {
        let f = time_barrier(threads, true);
        let s = time_barrier(threads, false);
        println!("{threads:>10} {f:>12.1} {s:>12.1}");
    }
    println!(
        "\nThe paper's claim is structural (no serial section), not absolute\n\
         speed on any given host; the queue and counter ratios under contention\n\
         are the relevant shape."
    );
}

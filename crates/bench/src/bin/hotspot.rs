//! Experiment E6: the value of combining under hot-spot fetch-and-add
//! traffic (§2.3/§3.1.2's claim that "any number of concurrent memory
//! references to the same location can be satisfied in the time required
//! for just one central memory access").
//!
//! Each PE offers Bernoulli(p) traffic of which a fraction targets a
//! single shared fetch-and-add word. With combining on, the hot requests
//! merge in the tree; with combining off they serialize at one MM.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin hotspot
//! ```
//!
//! `--metrics-out <path>` / `--trace-out <path>` re-run the n = 64
//! combining row with cycle-windowed telemetry and write the per-window
//! series + per-switch heatmap as JSON / Chrome `trace_event` JSON.

use std::path::PathBuf;

use ultra_bench::json::{metrics_json, series_chrome_trace};
use ultra_bench::{run_open_loop, run_open_loop_observed, OpenLoopConfig, OpenLoopObservation};
use ultra_faults::FaultPlan;
use ultra_net::config::{NetConfig, SwitchPolicy};
use ultra_pe::traffic::HotspotTraffic;
use ultra_sim::{MemAddr, MmId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_path = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            PathBuf::from(
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("{name} needs a path")),
            )
        })
    };
    let metrics_path = flag_path("--metrics-out");
    let trace_path = flag_path("--trace-out");
    let mut observed: Option<OpenLoopObservation> = None;
    println!("E6 — hot-spot fetch-and-add storm: combining vs. no combining");
    println!("(uniform background p = 0.08, hot fraction 30%, k = 2, 15-packet queues)\n");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>12} {:>11} {:>12}",
        "PEs", "policy", "mean RT (cyc)", "p95 RT (cyc)", "throughput", "offered srv", "combines"
    );
    for n in [16usize, 64, 256] {
        for (policy, label) in [
            (SwitchPolicy::QueuedCombining, "combining"),
            (SwitchPolicy::QueuedNoCombine, "no-combine"),
        ] {
            let cfg = OpenLoopConfig {
                net: NetConfig {
                    policy,
                    ..NetConfig::small(n)
                },
                copies: 1,
                mm_service: 2,
                warmup: 1_000,
                measure: 8_000,
            };
            let hot = MemAddr::new(MmId(0), 0);
            let mut traffic = HotspotTraffic::new(n, 0.08, 0.3, hot, 99);
            // Observation never perturbs the run, so the exported row is
            // the same row the table prints.
            let want_obs = (metrics_path.is_some() || trace_path.is_some())
                && n == 64
                && policy == SwitchPolicy::QueuedCombining;
            let r = if want_obs {
                let (r, obs) =
                    run_open_loop_observed(cfg, &FaultPlan::none(), &mut traffic, 256, 4096);
                observed = Some(obs);
                r
            } else {
                run_open_loop(cfg, &mut traffic)
            };
            println!(
                "{:>6} {:>12} {:>14.1} {:>14} {:>12.4} {:>8.0}% {:>12}",
                n,
                label,
                r.round_trip.mean(),
                r.round_trip.percentile(95.0),
                r.throughput,
                100.0 * r.completed as f64 / (r.injected + r.stalled_attempts).max(1) as f64,
                r.combines
            );
        }
        println!();
    }
    println!(
        "Expected shape: without combining the hot MM serializes the storm and\n\
         latency grows roughly linearly with N; with combining it stays near the\n\
         uncontended round trip at every N."
    );
    if let Some(obs) = &observed {
        if let Some(path) = &metrics_path {
            std::fs::write(
                path,
                metrics_json("hotspot", &obs.series, Some(&obs.heatmap)),
            )
            .expect("write --metrics-out file");
            println!("wrote {}", path.display());
        }
        if let Some(path) = &trace_path {
            std::fs::write(path, series_chrome_trace("hotspot", &obs.series))
                .expect("write --trace-out file");
            println!("wrote {}", path.display());
        }
    }
}

//! Regenerates **Table 3**: projected TRED2 efficiencies under the
//! optimistic assumption "that all the waiting time can be recovered"
//! (e.g. by sharing PEs among multiple tasks, §5) — the Table 2 model
//! with `W := 0`.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin table3
//! ```

use ultra_workloads::efficiency::{measure_tred2, EfficiencyModel, Measurement};

fn main() {
    let pairs: &[(usize, usize)] = &[
        (4, 16),
        (4, 24),
        (8, 16),
        (8, 32),
        (16, 16),
        (16, 32),
        (16, 48),
        (32, 32),
        (32, 48),
        (64, 48),
    ];
    eprintln!(
        "measuring {} (P,N) pairs on the paracomputer backend...",
        pairs.len()
    );
    let measurements: Vec<Measurement> = pairs
        .iter()
        .map(|&(p, n)| measure_tred2(p, n, 0xACE))
        .collect();
    let model = EfficiencyModel::fit(&measurements);
    println!(
        "fitted: T(P,N) = {:.1}*N + {:.3}*N^3/P (waiting time recovered)\n",
        model.a, model.b
    );

    let ns = [16usize, 32, 64, 128, 256, 512, 1024];
    let ps = [16usize, 64, 256, 1024, 4096];
    println!("Table 3 — projected efficiencies without waiting time");
    print!("{:>6} |", "N \\ P");
    for p in ps {
        print!("{p:>8}");
    }
    println!();
    println!("{}", "-".repeat(7 + 8 * ps.len()));
    for n in ns {
        print!("{n:>6} |");
        for p in ps {
            print!("{:>7.0}%", 100.0 * model.efficiency_no_wait(p, n));
        }
        println!();
    }
    println!(
        "\nPaper's Table 3 for comparison:\n\
         N=16:  71% 37% 12%  3%  0%   |   N=128: 99% 97% 90% 68% 35%\n\
         N=64:  97% 90% 68% 35% 12%   |   N=1024: 100% 100% 100% 99% 97%"
    );
}

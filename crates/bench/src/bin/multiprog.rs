//! Experiment E10: §3.5 hardware multiprogramming as latency tolerance.
//!
//! "If the latency remains an impediment to performance, we would
//! hardware-multiprogram the PEs (as in the CHOPP design and the Denelcor
//! HEP machine). Note that k-fold multiprogramming is equivalent to using
//! k times as many PEs — each having relative performance 1/k."
//!
//! A latency-bound program (every load immediately used, no prefetch
//! slack) runs with 1, 2 and 4 contexts per PE at constant *total*
//! virtual-PE work; context switching should absorb the memory stalls.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin multiprog
//! ```

use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::{body, Expr, Op, Program};

/// A pointer-chase-shaped loop: load, use, repeat — worst case for a
/// single-threaded PE.
fn latency_bound(rounds: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(rounds),
                body: body(vec![
                    Op::Load {
                        addr: Expr::add(Expr::mul(Expr::PeIndex, 4096), Expr::Reg(1)),
                        dst: 0,
                    },
                    Op::Set {
                        reg: 2,
                        value: Expr::add(Expr::Reg(0), Expr::Reg(2)),
                    },
                    Op::Compute(2),
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

fn main() {
    println!("E10 — §3.5 hardware multiprogramming on a latency-bound loop\n");
    println!(
        "{:>9} {:>9} {:>9} {:>10} {:>10} {:>12}",
        "contexts", "phys PEs", "virt PEs", "cycles", "idle %", "speedup"
    );
    let rounds = 400;
    let phys = 16;
    let mut baseline = 0.0;
    for contexts in [1usize, 2, 4, 8] {
        let mut m = MachineBuilder::new(phys)
            .multiprogramming(contexts)
            .build_spmd(&latency_bound(rounds / contexts as i64));
        let out = m.run();
        assert!(out.completed);
        let merged = m.merged_pe_stats();
        let idle = 100.0 * merged.idle_cycles.get() as f64 / (phys as u64 * out.cycles) as f64;
        if contexts == 1 {
            baseline = out.cycles as f64;
        }
        println!(
            "{:>9} {:>9} {:>9} {:>10} {:>9.0}% {:>11.2}x",
            contexts,
            phys,
            phys * contexts,
            out.cycles,
            idle,
            baseline / out.cycles as f64
        );
    }
    println!(
        "\nTotal work is constant (rounds divided across contexts); the speedup\n\
         is pure latency hiding. The paper calls multiprogramming \"a last\n\
         resort\" because the same effect needs k-fold larger problems."
    );
}

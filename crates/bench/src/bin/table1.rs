//! Regenerates **Table 1**: network traffic and performance of four
//! parallel scientific programs run through the combining network (§4.2).
//!
//! The paper ran 16–48 active PEs against a 4096-PE 6-stage 4×4 fabric;
//! simulating the full fabric is wasteful, so the active PEs here sit in a
//! 256-PE 4-stage 4×4 fabric (same switches, same queue limit of 15
//! packets, same 1/3-packet messages, same 2-cycle PE instruction and MM
//! times). The minimum CM access is therefore 12 cycles (6 instruction
//! times) instead of the paper's 16 (8); the *relationships* — access
//! times near the minimum, idle ordering across the programs, the
//! reference mixes — are the reproduction target.
//!
//! ```text
//! cargo run --release -p ultra-bench --bin table1
//! ```

use ultra_net::config::NetConfig;
use ultra_workloads::{Multigrid, Tred2, Weather};
use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::Program;
use ultracomputer::report::MachineReport;

struct Row {
    name: &'static str,
    active: usize,
    program: Program,
}

fn main() {
    let fabric = 256;
    let rows = vec![
        Row {
            name: "1 weather PDE, 16 PEs",
            active: 16,
            program: Weather::new(48, 6).program(),
        },
        Row {
            name: "2 weather PDE, 48 PEs",
            active: 48,
            program: Weather::new(48, 6).program(),
        },
        Row {
            name: "3 TRED2,       16 PEs",
            active: 16,
            program: Tred2::new(28).program(),
        },
        Row {
            name: "4 multigrid,   16 PEs",
            active: 16,
            program: Multigrid::new(32, 2).program(),
        },
    ];

    println!("Table 1 — network traffic and performance (time unit: PE instruction time)");
    println!(
        "{:<24} {:>10} {:>7} {:>12} {:>10} {:>11}",
        "program", "avg CM", "idle", "idle/CMload", "mem/instr", "shared/instr"
    );
    for row in rows {
        let mut programs = vec![Program::empty(); fabric];
        for p in programs.iter_mut().take(row.active) {
            *p = row.program.clone();
        }
        let mut machine = MachineBuilder::new(fabric)
            .net(NetConfig::paper_section42_scaled(fabric))
            .barrier_parties(row.active)
            .build(programs);
        let outcome = machine.run();
        assert!(outcome.completed, "{} timed out", row.name);
        let r = MachineReport::from_machine_active(&machine, row.active);
        println!(
            "{:<24} {:>10.2} {:>6.0}% {:>12.1} {:>10.2} {:>11.3}",
            row.name,
            r.avg_cm_access_instr(),
            r.idle_pct(),
            r.idle_per_cm_load_instr(),
            r.mem_refs_per_instr(),
            r.shared_refs_per_instr()
        );
    }
    println!(
        "\nPaper (4096-PE fabric, min CM access 8 instr): avg CM 8.81-8.94,\n\
         idle 19-39%, idle/CM-load 3.5-5.3, mem/instr 0.19-0.25, shared/instr .05-.08.\n\
         This fabric's floor is 6 instr, so absolute access times sit ~2 instr lower;\n\
         orderings and mixes are the comparison targets."
    );
}

//! Micro-bench: hot-spot fetch-and-add traffic with combining on vs.
//! off (experiment E6's engine) — wall-clock per simulated window, plus a
//! whole-machine hot-spot program on both backends.

use std::hint::black_box;
use ultra_bench::microbench::Group;
use ultra_bench::{run_open_loop, OpenLoopConfig};
use ultra_net::config::{NetConfig, SwitchPolicy};
use ultra_pe::traffic::HotspotTraffic;
use ultra_sim::{MemAddr, MmId};
use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::{body, Expr, Op, Program};

fn bench_hotspot_policies() {
    let mut group = Group::new("hotspot_window");
    group.sample_size(10);
    for (policy, name) in [
        (SwitchPolicy::QueuedCombining, "combining"),
        (SwitchPolicy::QueuedNoCombine, "no_combine"),
    ] {
        group.bench(&format!("{name}/64"), || {
            let cfg = OpenLoopConfig {
                net: NetConfig {
                    policy,
                    ..NetConfig::small(64)
                },
                copies: 1,
                mm_service: 2,
                warmup: 200,
                measure: 1_000,
            };
            let mut traffic = HotspotTraffic::new(64, 0.08, 0.3, MemAddr::new(MmId(0), 0), 5);
            black_box(run_open_loop(cfg, &mut traffic));
        });
    }
    group.finish();
}

fn hot_counter_program(rounds: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(rounds),
                body: body(vec![Op::FetchAdd {
                    addr: Expr::Const(0),
                    delta: Expr::Const(1),
                    dst: Some(0),
                }]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

fn bench_machine_hot_counter() {
    let mut group = Group::new("machine_hot_counter");
    group.sample_size(10);
    let prog = hot_counter_program(50);
    for (name, copies) in [("net_d1", 1usize), ("net_d2", 2)] {
        group.bench(name, || {
            let mut m = MachineBuilder::new(32).network(copies).build_spmd(&prog);
            let out = m.run();
            assert!(out.completed);
            black_box(m.read_shared(0));
        });
    }
    group.bench("ideal", || {
        let mut m = MachineBuilder::new(32).ideal(2).build_spmd(&prog);
        let out = m.run();
        assert!(out.completed);
        black_box(m.read_shared(0));
    });
    group.finish();
}

fn main() {
    bench_hotspot_policies();
    bench_machine_hot_counter();
}

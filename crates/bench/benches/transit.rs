//! Micro-bench: network transit under uniform load (Figure 7's
//! engine) — measures simulator throughput and pins the analytic model's
//! evaluation cost.

use std::hint::black_box;
use ultra_analysis::queueing::NetworkModel;
use ultra_bench::microbench::Group;
use ultra_bench::{run_open_loop, OpenLoopConfig};
use ultra_net::config::NetConfig;
use ultra_pe::traffic::UniformTraffic;

fn bench_open_loop() {
    let mut group = Group::new("open_loop_uniform");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        group.bench(&format!("simulate/{n}"), || {
            let cfg = OpenLoopConfig {
                net: NetConfig::small(n),
                copies: 1,
                mm_service: 2,
                warmup: 100,
                measure: 500,
            };
            let mut traffic = UniformTraffic::new(n, 0.10, 0.5, 7);
            black_box(run_open_loop(cfg, &mut traffic));
        });
    }
    group.finish();
}

fn bench_analytic() {
    let model = NetworkModel::with_unit_bandwidth(4096, 4, 2);
    let mut group = Group::new("analytic");
    group.bench("figure7_curve", || {
        black_box(model.figure7_curve(0.9, 100));
    });
    group.finish();
}

fn main() {
    bench_open_loop();
    bench_analytic();
}

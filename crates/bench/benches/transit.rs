//! Criterion bench: network transit under uniform load (Figure 7's
//! engine) — measures simulator throughput and pins the analytic model's
//! evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ultra_analysis::queueing::NetworkModel;
use ultra_bench::{run_open_loop, OpenLoopConfig};
use ultra_net::config::NetConfig;
use ultra_pe::traffic::UniformTraffic;

fn bench_open_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("open_loop_uniform");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::new("simulate", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = OpenLoopConfig {
                    net: NetConfig::small(n),
                    copies: 1,
                    mm_service: 2,
                    warmup: 100,
                    measure: 500,
                };
                let mut traffic = UniformTraffic::new(n, 0.10, 0.5, 7);
                black_box(run_open_loop(cfg, &mut traffic))
            });
        });
    }
    group.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let model = NetworkModel::with_unit_bandwidth(4096, 4, 2);
    c.bench_function("analytic_figure7_curve", |b| {
        b.iter(|| black_box(model.figure7_curve(0.9, 100)));
    });
}

criterion_group!(benches, bench_open_loop, bench_analytic);
criterion_main!(benches);

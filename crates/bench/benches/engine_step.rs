//! Micro-bench: the cost of a single `Machine::step()` at N = 256.
//!
//! Isolates the cycle engine's hot path — one full machine cycle over
//! the fanned-out shards, banks, and network copies — from whole-run
//! effects (program completion, drain tails). `machine_step` steps a
//! machine whose ticket traffic is in full flight, so the pooled buffers
//! (`NetworkEvents` lanes, PNI retry scratch, shard effect queues,
//! delivery staging) are warm and the path is allocation-free.
//! `merge_phase` steps a mostly-halted N = 1024 machine (16 live shards,
//! fast-forward off) so the row isolates the engine's occupancy-mask
//! bookkeeping — dirty-word effect drain, masked flush, masked bank
//! sweep — rather than the PE work itself.
//! `network_cycle` prices the seed's allocating `OmegaNetwork::cycle`
//! against the pooled `cycle_into` it was replaced with, under identical
//! hot-spot load. `sweep_occupancy` compares the sparse active-set walk
//! against the dense full-topology scan at 1%, 10% and 90% switch
//! occupancy — the data behind the sparse sweep's dense-fallback
//! threshold (sparse wins big at low occupancy, converges with dense as
//! occupancy saturates, so the fallback engages only near-saturation).

use std::hint::black_box;
use ultra_bench::microbench::Group;
use ultra_net::config::{NetConfig, SweepMode};
use ultra_net::message::{Message, MsgKind, PhiOp};
use ultra_net::omega::{NetworkEvents, OmegaNetwork};
use ultra_sim::{MemAddr, MmId, PeId};
use ultracomputer::machine::{Machine, MachineBuilder};
use ultracomputer::program::{body, Expr, Op, Program};

const N: usize = 256;
const STEPS_PER_SAMPLE: usize = 200;

fn ticket_program() -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(1_000_000),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: Some(0),
                    },
                    Op::Store {
                        addr: Expr::add(Expr::mul(Expr::PeIndex, 64), Expr::Reg(1)),
                        value: Expr::Reg(0),
                    },
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

/// A machine mid-flight: warmed past the cold start so queues, pools and
/// scratch buffers hold their steady-state capacity.
fn warmed_machine() -> Machine {
    let mut m = MachineBuilder::new(N).build_spmd(&ticket_program());
    for _ in 0..500 {
        m.step();
    }
    m
}

fn bench_machine_step() {
    let mut group = Group::new("engine_step_n256");
    group.sample_size(10);
    let mut m = warmed_machine();
    group.bench("steady_state", || {
        for _ in 0..STEPS_PER_SAMPLE {
            m.step();
        }
        black_box(m.now());
    });
    group.finish();
}

/// The merge phase in isolation: a mostly-halted N = 1024 machine where
/// only 16 shards produce effects each cycle. Per-step cost here is
/// dominated by the engine's bookkeeping around the live work — the
/// dirty-word drain of shard effects, the masked outgoing flush, the
/// masked bank/network sweep — not by the work itself. Before the
/// occupancy masks this path walked all 1024 shards (and every bank)
/// per cycle; with them it touches only the 16 live lanes' words, so
/// this row is the direct price of the merge machinery at low occupancy.
fn bench_merge_phase() {
    const IDLE_N: usize = 1024;
    const ACTIVE: usize = 16;
    let mut group = Group::new("merge_phase_n1024_16live");
    group.sample_size(10);
    let parked = Program::new(body(vec![Op::Halt]), vec![]);
    let programs: Vec<Program> = (0..IDLE_N)
        .map(|pe| {
            if pe < ACTIVE {
                ticket_program()
            } else {
                parked.clone()
            }
        })
        .collect();
    // Fast-forward off: the point is per-step merge cost, and idle-cycle
    // skipping would collapse the steps being measured.
    let mut m = MachineBuilder::new(IDLE_N)
        .fast_forward(false)
        .build(programs);
    for _ in 0..500 {
        m.step();
    }
    group.bench("steady_state", || {
        for _ in 0..STEPS_PER_SAMPLE {
            m.step();
        }
        black_box(m.now());
    });
    group.finish();
}

/// Drives one network copy under hot-spot fetch-and-add load with the
/// given per-cycle advance function.
fn drive_network(mut advance: impl FnMut(&mut OmegaNetwork, u64)) {
    let mut net = OmegaNetwork::new(NetConfig::small(N));
    let hot = MemAddr::new(MmId(0), 0);
    for now in 0..STEPS_PER_SAMPLE as u64 {
        for pe in 0..N {
            let id = net.next_msg_id();
            let msg = Message::request(id, MsgKind::FetchPhi(PhiOp::Add), hot, 1, PeId(pe), now);
            let _ = net.try_inject_request(msg, now);
        }
        advance(&mut net, now);
    }
}

fn bench_network_cycle() {
    let mut group = Group::new("network_cycle_n256");
    group.sample_size(10);
    // Reproduces the seed's removed allocating `cycle` API (a fresh event
    // buffer per call): this row *is* the price of that path.
    group.bench("allocating_seed_path", || {
        drive_network(|net, now| {
            let mut events = NetworkEvents::default();
            net.cycle_into(now, &mut events);
            black_box(events);
        });
    });
    let mut events = NetworkEvents::default();
    group.bench("pooled", || {
        drive_network(|net, now| {
            net.cycle_into(now, &mut events);
            black_box(events.replies_at_pe.len());
        });
    });
    group.finish();
}

/// Drives one network copy with `active` PEs sending uniform (pe → mm =
/// pe) traffic, so the fraction of switches carrying messages tracks the
/// fraction of active PEs.
fn drive_network_occupancy(net: &mut OmegaNetwork, active: usize) {
    let mut events = NetworkEvents::default();
    for now in 0..STEPS_PER_SAMPLE as u64 {
        for pe in 0..active {
            let id = net.next_msg_id();
            let msg = Message::request(
                id,
                MsgKind::FetchPhi(PhiOp::Add),
                MemAddr::new(MmId(pe), 0),
                1,
                PeId(pe),
                now,
            );
            let _ = net.try_inject_request(msg, now);
        }
        net.cycle_into(now, &mut events);
        black_box(events.requests_at_mm.len());
    }
}

/// Sparse vs dense sweeps at 1%, 10% and 90% occupancy — the measured
/// basis for the dense-fallback threshold baked into the network.
fn bench_sweep_occupancy() {
    let mut group = Group::new("sweep_occupancy_n256");
    group.sample_size(10);
    for (label, pct) in [("1pct", 1usize), ("10pct", 10), ("90pct", 90)] {
        let active = (N * pct / 100).max(1);
        for (mode_label, mode) in [("sparse", SweepMode::Sparse), ("dense", SweepMode::Dense)] {
            let name = format!("{label}_{mode_label}");
            group.bench(&name, || {
                let mut net = OmegaNetwork::new(NetConfig::small(N));
                net.set_sweep_mode(mode);
                drive_network_occupancy(&mut net, active);
            });
        }
    }
    group.finish();
}

fn main() {
    bench_machine_step();
    bench_merge_phase();
    bench_network_cycle();
    bench_sweep_occupancy();
}

//! Micro-bench: native fetch-and-add coordination vs. lock-based
//! baselines (experiment E9's engine).

use std::hint::black_box;
use std::sync::Arc;
use ultra_algorithms::{FaaBarrier, FaaCounter, MutexCounter, MutexQueue, UltraQueue};
use ultra_bench::microbench::Group;

fn bench_counters() {
    let mut group = Group::new("counter_contended");
    for &threads in &[2usize, 4, 8] {
        group.bench(&format!("fetch_add/{threads}"), || {
            let counter = Arc::new(FaaCounter::new(0));
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let counter = &counter;
                    s.spawn(move || {
                        for _ in 0..10_000 {
                            black_box(counter.fetch_add(1));
                        }
                    });
                }
            });
            assert_eq!(counter.get(), (threads * 10_000) as i64);
        });
        group.bench(&format!("mutex/{threads}"), || {
            let counter = Arc::new(MutexCounter::new(0));
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let counter = &counter;
                    s.spawn(move || {
                        for _ in 0..10_000 {
                            black_box(counter.fetch_add(1));
                        }
                    });
                }
            });
            assert_eq!(counter.get(), (threads * 10_000) as i64);
        });
    }
    group.finish();
}

fn bench_queues() {
    let mut group = Group::new("queue_mixed_ops");
    group.sample_size(20);
    for &threads in &[2usize, 4, 8] {
        group.bench(&format!("ultra/{threads}"), || {
            let q = UltraQueue::new(256);
            std::thread::scope(|s| {
                for tid in 0..threads {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..5_000 {
                            if (tid + i) % 2 == 0 {
                                let _ = q.try_enqueue(i as i64);
                            } else {
                                black_box(q.try_dequeue());
                            }
                        }
                    });
                }
            });
        });
        group.bench(&format!("mutex/{threads}"), || {
            let q = MutexQueue::new(256);
            std::thread::scope(|s| {
                for tid in 0..threads {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..5_000 {
                            if (tid + i) % 2 == 0 {
                                let _ = q.try_enqueue(i as i64);
                            } else {
                                black_box(q.try_dequeue());
                            }
                        }
                    });
                }
            });
        });
    }
    group.finish();
}

fn bench_barriers() {
    let mut group = Group::new("barrier_rounds");
    group.sample_size(10);
    for &threads in &[4usize, 8] {
        group.bench(&format!("faa/{threads}"), || {
            let bar = FaaBarrier::new(threads);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let bar = &bar;
                    s.spawn(move || {
                        for _ in 0..200 {
                            bar.wait();
                        }
                    });
                }
            });
        });
        group.bench(&format!("std/{threads}"), || {
            let bar = std::sync::Barrier::new(threads);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let bar = &bar;
                    s.spawn(move || {
                        for _ in 0..200 {
                            bar.wait();
                        }
                    });
                }
            });
        });
    }
    group.finish();
}

fn main() {
    bench_counters();
    bench_queues();
    bench_barriers();
}

//! Criterion bench: native fetch-and-add coordination vs. lock-based
//! baselines (experiment E9's engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use ultra_algorithms::{FaaBarrier, FaaCounter, MutexCounter, MutexQueue, UltraQueue};

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_contended");
    for &threads in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("fetch_add", threads), &threads, |b, &t| {
            b.iter(|| {
                let counter = Arc::new(FaaCounter::new(0));
                std::thread::scope(|s| {
                    for _ in 0..t {
                        let counter = &counter;
                        s.spawn(move || {
                            for _ in 0..10_000 {
                                black_box(counter.fetch_add(1));
                            }
                        });
                    }
                });
                assert_eq!(counter.get(), (t * 10_000) as i64);
            });
        });
        group.bench_with_input(BenchmarkId::new("mutex", threads), &threads, |b, &t| {
            b.iter(|| {
                let counter = Arc::new(MutexCounter::new(0));
                std::thread::scope(|s| {
                    for _ in 0..t {
                        let counter = &counter;
                        s.spawn(move || {
                            for _ in 0..10_000 {
                                black_box(counter.fetch_add(1));
                            }
                        });
                    }
                });
                assert_eq!(counter.get(), (t * 10_000) as i64);
            });
        });
    }
    group.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_mixed_ops");
    group.sample_size(20);
    for &threads in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("ultra", threads), &threads, |b, &t| {
            b.iter(|| {
                let q = UltraQueue::new(256);
                std::thread::scope(|s| {
                    for tid in 0..t {
                        let q = &q;
                        s.spawn(move || {
                            for i in 0..5_000 {
                                if (tid + i) % 2 == 0 {
                                    let _ = q.try_enqueue(i as i64);
                                } else {
                                    black_box(q.try_dequeue());
                                }
                            }
                        });
                    }
                });
            });
        });
        group.bench_with_input(BenchmarkId::new("mutex", threads), &threads, |b, &t| {
            b.iter(|| {
                let q = MutexQueue::new(256);
                std::thread::scope(|s| {
                    for tid in 0..t {
                        let q = &q;
                        s.spawn(move || {
                            for i in 0..5_000 {
                                if (tid + i) % 2 == 0 {
                                    let _ = q.try_enqueue(i as i64);
                                } else {
                                    black_box(q.try_dequeue());
                                }
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

fn bench_barriers(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_rounds");
    group.sample_size(10);
    for &threads in &[4usize, 8] {
        group.bench_with_input(BenchmarkId::new("faa", threads), &threads, |b, &t| {
            b.iter(|| {
                let bar = FaaBarrier::new(t);
                std::thread::scope(|s| {
                    for _ in 0..t {
                        let bar = &bar;
                        s.spawn(move || {
                            for _ in 0..200 {
                                bar.wait();
                            }
                        });
                    }
                });
            });
        });
        group.bench_with_input(BenchmarkId::new("std", threads), &threads, |b, &t| {
            b.iter(|| {
                let bar = std::sync::Barrier::new(t);
                std::thread::scope(|s| {
                    for _ in 0..t {
                        let bar = &bar;
                        s.spawn(move || {
                            for _ in 0..200 {
                                bar.wait();
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counters, bench_queues, bench_barriers);
criterion_main!(benches);

//! End-to-end service tests: the acceptance criteria of the
//! simulation-as-a-service milestone.
//!
//! * An 8-job concurrent batch (mixed PE counts, seeds, fault plans)
//!   produces per-job JSON byte-identical to one-shot runs of the same
//!   specs on a fresh server.
//! * At least one job resumes from the snapshot prefix cache, and says
//!   so in its log.
//! * Cancellation and timeout produce their statuses, never hangs.

use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::thread;

use ultra_obs::flight::FlightLevel;
use ultra_serve::obs::ObsOptions;
use ultra_serve::spec::{JobSpec, Workload};
use ultra_serve::{JobOutcome, JobStatus, Server};

/// Extracts `"key": "value"` or `"key": 123` from a rendered result line
/// (every value the protocol renders is a string or an integer).
fn field(line: &str, key: &str) -> String {
    let tag = format!("\"{key}\": ");
    let at = line
        .find(&tag)
        .unwrap_or_else(|| panic!("{line} lacks {key}"))
        + tag.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped[..stripped.find('"').unwrap()].to_owned()
    } else {
        rest[..rest.find([',', '}']).unwrap()].trim().to_owned()
    }
}

fn mixed_batch() -> Vec<JobSpec> {
    let mut jobs = Vec::new();

    // The sweep pair: same prefix key as the warm-up job below, bigger
    // budget — must resume from the cached checkpoint.
    let mut resume = JobSpec::new("resume");
    resume.pes = 8;
    resume.seed = 11;
    resume.workload = Workload::Ticket;
    resume.rounds = 40;
    resume.cycles = 200_000;
    resume.checkpoint_every = 512;
    jobs.push(resume);

    let mut small = JobSpec::new("small-counter");
    small.pes = 4;
    small.seed = 1;
    small.rounds = 8;
    jobs.push(small);

    let mut wide = JobSpec::new("wide-counter");
    wide.pes = 16;
    wide.seed = 2;
    wide.rounds = 6;
    jobs.push(wide);

    let mut ticket = JobSpec::new("ticket-99");
    ticket.pes = 8;
    ticket.seed = 99;
    ticket.workload = Workload::Ticket;
    ticket.rounds = 10;
    jobs.push(ticket);

    let mut barrier = JobSpec::new("barrier");
    barrier.pes = 8;
    barrier.seed = 5;
    barrier.workload = Workload::Barrier;
    barrier.rounds = 6;
    jobs.push(barrier);

    let mut dead_mm = JobSpec::new("dead-mm");
    dead_mm.pes = 8;
    dead_mm.seed = 3;
    dead_mm.rounds = 6;
    dead_mm.faults.dead_mms = vec![3];
    jobs.push(dead_mm);

    let mut dead_copy = JobSpec::new("dead-copy");
    dead_copy.pes = 8;
    dead_copy.seed = 4;
    dead_copy.copies = 2;
    dead_copy.rounds = 6;
    dead_copy.faults.dead_copies = vec![0];
    jobs.push(dead_copy);

    let mut lossy = JobSpec::new("lossy");
    lossy.pes = 8;
    lossy.seed = 6;
    lossy.rounds = 10;
    lossy.cycles = 2_000_000;
    lossy.faults.link_loss = 0.1;
    lossy.faults.fault_seed = 7;
    jobs.push(lossy);

    jobs
}

#[test]
fn concurrent_batch_matches_one_shot_runs_and_resumes_from_the_prefix_cache() {
    let server = Server::new();

    // Warm the cache: the prefix of the `resume` job, cut off after 600
    // cycles (the 40-round ticket workload runs far longer than that).
    let mut warm = JobSpec::new("warm");
    warm.pes = 8;
    warm.seed = 11;
    warm.workload = Workload::Ticket;
    warm.rounds = 40;
    warm.cycles = 600;
    warm.checkpoint_every = 512;
    let warm_out = server.run_job(&warm);
    assert_eq!(field(&warm_out.line, "status"), "budget-exhausted");
    assert!(
        !server.cache().is_empty(),
        "budget-exhausted job must leave checkpoints behind"
    );

    let jobs = mixed_batch();
    assert!(jobs.len() >= 8, "acceptance demands >= 8 jobs");
    let mut outcomes: HashMap<String, JobOutcome> = HashMap::new();
    let done = server.run_batch(jobs.clone(), 3, 16, |out| {
        outcomes.insert(out.id.clone(), out);
    });
    assert_eq!(done, jobs.len(), "every job must produce a result");

    // Every job's result line is byte-identical to a one-shot run of the
    // same spec on a fresh server (empty cache, no concurrency).
    for spec in &jobs {
        let solo = Server::new().run_job(spec);
        let served = &outcomes[&spec.id];
        assert_eq!(
            served.line, solo.line,
            "served result for `{}` diverged from its one-shot run",
            spec.id
        );
        assert_eq!(field(&served.line, "status"), "completed", "{}", spec.id);
    }

    // The sweep job resumed from the warm-up's checkpoint.
    assert!(server.cache().hits() >= 1, "prefix cache never hit");
    let resumed = &outcomes["resume"];
    assert!(
        resumed.log.iter().any(|l| l.contains("cache hit")),
        "resume job must log its cache hit, got {:?}",
        resumed.log
    );

    // Sanity on the physics: combining happened, and the lossy run
    // actually lost and retried messages.
    assert!(
        field(&outcomes["wide-counter"].line, "combines")
            .parse::<u64>()
            .unwrap()
            > 0
    );
    assert!(
        field(&outcomes["lossy"].line, "retries")
            .parse::<u64>()
            .unwrap()
            > 0
    );
    assert_eq!(field(&outcomes["small-counter"].line, "shared0"), "32");
}

#[test]
fn telemetry_jobs_attach_a_series_and_never_resume_from_cache() {
    let server = Server::new();
    let mut plain = JobSpec::new("plain");
    plain.seed = 21;
    plain.workload = Workload::Ticket;
    plain.rounds = 12;
    let _ = server.run_job(&plain);

    // Same prefix, telemetry on: must NOT consume the cached prefix (a
    // resumed series would be missing its head), but must still succeed.
    let mut observed = plain.clone();
    observed.id = "observed".into();
    observed.telemetry_window = Some(64);
    let hits_before = server.cache().hits();
    let out = server.run_job(&observed);
    assert_eq!(
        server.cache().hits(),
        hits_before,
        "telemetry job used the cache"
    );
    assert!(
        out.log.is_empty(),
        "no cache-hit log expected: {:?}",
        out.log
    );
    assert!(out.line.contains("\"telemetry\": {"), "series missing");
    assert!(out.line.contains("\"windows\": ["));
    assert!(out.line.contains("\"heatmap\": {"));
    assert!(!out.line.contains('\n'), "result must stay a single line");

    // Everything before the telemetry attachment matches the plain job's
    // simulation (same parity digest, different id).
    let solo = Server::new().run_job(&plain);
    assert_eq!(field(&out.line, "parity"), field(&solo.line, "parity"));
}

#[test]
fn serving_sweep_resumes_from_the_prefix_cache_with_identical_curve() {
    // A load-vs-p99 sweep through the service: one serving point per
    // offered load. For one point, a short-budget job warms the cache —
    // its checkpoint holds WaitUntil-parked worker contexts mid-sweep —
    // and the full-budget job must resume from it and still render the
    // exact result line (latency percentiles and parity digest included)
    // a fresh one-shot run produces.
    let serving_spec = |id: &str, gap: u64| {
        let mut spec = JobSpec::new(id);
        spec.pes = 4;
        spec.seed = 17;
        spec.workload = Workload::Serving;
        spec.rounds = 64;
        spec.mean_gap = gap;
        spec.checkpoint_every = 256;
        spec
    };

    let server = Server::new();
    let mut warm = serving_spec("warm", 120);
    warm.cycles = 1_500;
    let warm_out = server.run_job(&warm);
    assert_eq!(field(&warm_out.line, "status"), "budget-exhausted");
    assert!(
        !warm_out.line.contains("latency_p99"),
        "a truncated serving job must not report a latency tail"
    );

    // The sweep itself: three loads, the first sharing the warm prefix.
    let mut curve = Vec::new();
    for (i, gap) in [120u64, 30, 5].into_iter().enumerate() {
        let spec = serving_spec(&format!("point-{gap}"), gap);
        let out = server.run_job(&spec);
        assert_eq!(field(&out.line, "status"), "completed");
        if i == 0 {
            assert!(
                out.log.iter().any(|l| l.contains("cache hit")),
                "the warm point must resume from the snapshot cache, got {:?}",
                out.log
            );
        }
        let solo = Server::new().run_job(&spec);
        assert_eq!(
            out.line, solo.line,
            "resumed serving point at gap {gap} diverged from one-shot"
        );
        curve.push((gap, field(&out.line, "latency_p99").parse::<u64>().unwrap()));
    }
    assert!(server.cache().hits() >= 1, "prefix cache never hit");

    // The curve keeps the serving-tier shape: saturation inflates p99.
    let relaxed = curve[0].1;
    let saturated = curve[2].1;
    assert!(saturated > relaxed, "p99 must grow with load: {curve:?}");
}

#[test]
fn cancelled_jobs_report_cancelled_without_running() {
    let server = Server::new();
    server.cancel("doomed");
    let mut spec = JobSpec::new("doomed");
    spec.workload = Workload::Ticket;
    spec.rounds = 50;
    let out = server.run_job(&spec);
    assert_eq!(field(&out.line, "status"), "cancelled");
    assert_eq!(
        field(&out.line, "cycles"),
        "0",
        "cancelled before any slice"
    );
}

#[test]
fn timeouts_fire_between_checkpoints() {
    let server = Server::new();
    let mut spec = JobSpec::new("slowpoke");
    spec.workload = Workload::Ticket;
    spec.rounds = 50;
    spec.timeout_ms = Some(0);
    let out = server.run_job(&spec);
    assert_eq!(field(&out.line, "status"), "timeout");
}

#[test]
fn batch_respects_priority_order_with_one_worker() {
    let server = Server::new();
    let mut order = Vec::new();
    let mut jobs = Vec::new();
    for (id, priority) in [("low", 0), ("high", 9), ("mid", 4)] {
        let mut spec = JobSpec::new(id);
        spec.pes = 4;
        spec.rounds = 2;
        spec.priority = priority;
        jobs.push(spec);
    }
    server.run_batch(jobs, 1, 1, |out| order.push(out.id));
    // Capacity 1 + a single worker: "low" is claimed immediately (the
    // queue never holds more than one job), then the remaining two pop
    // by priority.
    assert_eq!(order, ["low", "high", "mid"]);
}

#[test]
fn cancelling_a_running_job_yields_exactly_one_cancelled_result() {
    // The race under test: the job has already been dequeued and is
    // mid-simulation when the cancel arrives. It must stop at the next
    // cancellation poll and emit exactly one terminal result line.
    let server = Arc::new(Server::new());
    let mut spec = JobSpec::new("marathon");
    spec.workload = Workload::Ticket;
    spec.rounds = 1_000_000; // far more work than any test should finish
    spec.cycles = u64::MAX / 2;
    spec.checkpoint_every = 64; // poll cancellation often

    let (tx, rx) = mpsc::channel::<JobOutcome>();
    let batch = {
        let server = Arc::clone(&server);
        let spec = spec.clone();
        thread::spawn(move || server.run_batch(vec![spec], 1, 1, |out| tx.send(out).unwrap()))
    };
    // The first checkpoint landing in the cache proves the job is past
    // dequeue and actively simulating — cancel exactly then.
    while server.cache().is_empty() {
        thread::yield_now();
    }
    server.cancel("marathon");
    assert_eq!(batch.join().unwrap(), 1);

    let outcomes: Vec<JobOutcome> = rx.iter().collect();
    assert_eq!(
        outcomes.len(),
        1,
        "a cancelled-while-running job must emit exactly one result line"
    );
    assert_eq!(outcomes[0].status, JobStatus::Cancelled);
    assert_eq!(field(&outcomes[0].line, "status"), "cancelled");
    assert!(
        field(&outcomes[0].line, "cycles").parse::<u64>().unwrap() > 0,
        "the job was running when cancelled, so it simulated some cycles"
    );
}

#[test]
fn observability_never_changes_result_lines() {
    // The determinism contract: metrics, spans and the flight recorder
    // observe the service without steering it. The same batch through an
    // instrumented server and a bare one must render byte-identical
    // result lines.
    let jobs = mixed_batch();
    let run = |server: &Server| {
        let mut lines = Vec::new();
        let done = server.run_batch(jobs.clone(), 3, 8, |out| {
            lines.push((out.id.clone(), out.line))
        });
        assert_eq!(done, jobs.len());
        lines.sort();
        lines
    };

    let bare = run(&Server::new());
    let observed_server = Server::with_obs(ObsOptions {
        flight_capacity: 64,
        log_level: FlightLevel::Error, // keep test stderr quiet
        trace_jobs: true,
    });
    let observed = run(&observed_server);
    assert_eq!(
        bare, observed,
        "observability must be invisible in result lines"
    );

    // The instrumented run produced a full exposition...
    let text = observed_server.render_metrics().expect("obs is on");
    for needle in [
        "ultra_serve_queue_depth",
        "ultra_serve_queue_enqueued_total",
        "ultra_serve_cache_hits_total",
        "ultra_serve_cache_misses_total",
        "ultra_serve_worker_busy_seconds_total",
        "ultra_serve_jobs_total{status=\"completed\"",
        "ultra_serve_job_latency_seconds{phase=\"total\"",
        "quantile=\"0.99\"",
    ] {
        assert!(text.contains(needle), "exposition lacks {needle}:\n{text}");
    }
    // ...and Chrome trace spans for every job phase.
    let trace = observed_server.trace_json().expect("trace_jobs is on");
    for phase in ["queue-wait", "restore", "slices", "report", "total"] {
        assert!(trace.contains(&format!("\"name\": \"{phase}\"")), "{trace}");
    }
    // The bare server exposes none of it.
    assert!(Server::new().render_metrics().is_none());
}

//! Job specifications: what one simulation request asks for.
//!
//! A job is one line of the NDJSON protocol. It names a machine shape
//! (PEs, network copies, seed, fault plan), a workload from the small
//! built-in registry, and execution controls (cycle budget, checkpoint
//! cadence, priority, timeout). Everything that affects *simulation
//! state* folds into [`JobSpec::prefix_key`] — two jobs with equal keys
//! walk bit-identical cycle sequences, which is what lets a sweep job
//! resume from another job's cached snapshot.

use std::collections::BTreeMap;

use ultra_faults::FaultPlan;
use ultra_sim::Cycle;
use ultracomputer::machine::{Machine, MachineBuilder};
use ultracomputer::program::{body, Expr, Op, Program};

use crate::json::Json;

/// Default checkpoint cadence in cycles: snapshots land in the prefix
/// cache (and cancellation/timeout are polled) every this many cycles.
pub const DEFAULT_CHECKPOINT_EVERY: Cycle = 4096;

/// Default total cycle budget when a job does not set `"cycles"`.
pub const DEFAULT_CYCLE_BUDGET: Cycle = 10_000_000;

/// The built-in workload registry.
///
/// Each workload is a deterministic function of `(pes, rounds)`, so the
/// name plus parameters fully identify the instruction streams — that
/// pair is all the prefix cache needs to key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Every PE fetch-and-adds 1 to one shared counter `rounds` times —
    /// the §2.2 hot-word idiom, maximal combining.
    Counter,
    /// Every PE draws `rounds` tickets from a counter and stores each
    /// into a private slot — serialization-heavy, network and banks busy.
    Ticket,
    /// `rounds` alternations of a fetch-and-add with a machine-assisted
    /// barrier — the phase structure of the §4.2 scientific codes.
    Barrier,
    /// The serving tier ([`ultra_workloads::Serving`]): `rounds` requests
    /// arrive open-loop on a seeded Poisson schedule (mean gap from the
    /// spec's `mean_gap` field), workers claim them from a fetch-and-add
    /// ticket queue, and completed jobs report end-to-end latency
    /// percentiles.
    Serving,
}

impl Workload {
    /// Every registry workload, in protocol order (used to pre-register
    /// per-workload metrics so expositions carry zeros from the start).
    pub const ALL: [Workload; 4] = [
        Workload::Counter,
        Workload::Ticket,
        Workload::Barrier,
        Workload::Serving,
    ];

    /// Every registry name, in protocol order — the list quoted by the
    /// unknown-workload parse error.
    pub const NAMES: &'static [&'static str] = &["counter", "ticket", "barrier", "serving"];

    /// The registry name used in the protocol.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Ticket => "ticket",
            Self::Barrier => "barrier",
            Self::Serving => "serving",
        }
    }

    /// Looks a workload up by protocol name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "counter" => Some(Self::Counter),
            "ticket" => Some(Self::Ticket),
            "barrier" => Some(Self::Barrier),
            "serving" => Some(Self::Serving),
            _ => None,
        }
    }

    /// Builds the per-PE program for this workload.
    #[must_use]
    pub fn program(self, rounds: i64) -> Program {
        if self == Self::Serving {
            // The serving program depends only on the request count; the
            // arrival schedule (which does depend on `mean_gap` and the
            // seed) is data, installed by [`JobSpec::machine`].
            return ultra_workloads::Serving::new(rounds.max(1) as usize, 1).program();
        }
        let ops = match self {
            Self::Counter => vec![
                Op::For {
                    reg: 1,
                    from: Expr::Const(0),
                    to: Expr::Const(rounds),
                    body: body(vec![Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: None,
                    }]),
                },
                Op::Halt,
            ],
            Self::Ticket => vec![
                Op::For {
                    reg: 1,
                    from: Expr::Const(0),
                    to: Expr::Const(rounds),
                    body: body(vec![
                        Op::FetchAdd {
                            addr: Expr::Const(0),
                            delta: Expr::Const(1),
                            dst: Some(0),
                        },
                        Op::Store {
                            // Slot base 1024 keeps PE 0's slots clear of
                            // the counter word at address 0.
                            addr: Expr::add(
                                Expr::add(Expr::Const(1024), Expr::mul(Expr::PeIndex, 64)),
                                Expr::Reg(1),
                            ),
                            value: Expr::Reg(0),
                        },
                    ]),
                },
                Op::Halt,
            ],
            Self::Barrier => vec![
                Op::For {
                    reg: 1,
                    from: Expr::Const(0),
                    to: Expr::Const(rounds),
                    body: body(vec![
                        Op::FetchAdd {
                            addr: Expr::Const(0),
                            delta: Expr::Const(1),
                            dst: Some(0),
                        },
                        Op::Barrier,
                    ]),
                },
                Op::Halt,
            ],
            Self::Serving => unreachable!("serving returns early above"),
        };
        Program::new(body(ops), vec![])
    }
}

/// The fault-plan slice of a job: static faults only, all seeded.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Memory modules dead at boot.
    pub dead_mms: Vec<usize>,
    /// Network copies dead at boot (requires `copies` > the index).
    pub dead_copies: Vec<usize>,
    /// Per-link loss probability in [0, 1).
    pub link_loss: f64,
    /// Seed for the loss process (and any other stochastic faults).
    pub fault_seed: u64,
}

impl FaultSpec {
    fn none() -> Self {
        Self {
            dead_mms: Vec::new(),
            dead_copies: Vec::new(),
            link_loss: 0.0,
            fault_seed: 0,
        }
    }

    fn is_none(&self) -> bool {
        self.dead_mms.is_empty() && self.dead_copies.is_empty() && self.link_loss == 0.0
    }

    fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none().seed(self.fault_seed);
        for &mm in &self.dead_mms {
            plan = plan.dead_mm(ultra_sim::MmId(mm));
        }
        for &copy in &self.dead_copies {
            plan = plan.dead_copy(copy);
        }
        if self.link_loss > 0.0 {
            plan = plan.link_loss(self.link_loss);
        }
        plan
    }
}

/// One simulation request, fully validated.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job identifier, echoed in the result line and used for
    /// cancellation. Unique per submission batch by convention.
    pub id: String,
    /// PE count (a power of two).
    pub pes: usize,
    /// Machine seed (serialization order etc.).
    pub seed: u64,
    /// Which registry workload to run.
    pub workload: Workload,
    /// Workload size parameter (for `serving`: the request count).
    pub rounds: i64,
    /// Mean inter-arrival gap in cycles for the `serving` workload
    /// (inverse offered load); ignored by the closed workloads.
    pub mean_gap: u64,
    /// Network copies `d` (1 = single copy).
    pub copies: usize,
    /// Engine thread budget for this job's machine (a speed knob — every
    /// value is bit-identical; the default 1 leaves server-level
    /// parallelism to the worker pool).
    pub threads: usize,
    /// Total cycle budget: the job runs until the workload completes or
    /// the machine reaches this cycle, whichever is first.
    pub cycles: Cycle,
    /// Checkpoint cadence: snapshot (and poll cancellation/timeout)
    /// every this many cycles.
    pub checkpoint_every: Cycle,
    /// Queue priority (higher runs first; FIFO among equals).
    pub priority: i64,
    /// Wall-clock timeout in milliseconds, polled between checkpoints.
    pub timeout_ms: Option<u64>,
    /// When set, attach cycle-windowed telemetry with this window to the
    /// result. Telemetry jobs never *resume* from the prefix cache (a
    /// snapshot carries no telemetry history) but still seed it.
    pub telemetry_window: Option<u64>,
    /// Static fault plan.
    pub faults: FaultSpec,
}

impl JobSpec {
    /// A baseline spec for `id` — 8 PEs, counter workload, defaults
    /// everywhere. Tests and callers override fields directly.
    #[must_use]
    pub fn new(id: &str) -> Self {
        Self {
            id: id.to_owned(),
            pes: 8,
            seed: 0x5eed,
            workload: Workload::Counter,
            rounds: 4,
            mean_gap: 50,
            copies: 1,
            threads: 1,
            cycles: DEFAULT_CYCLE_BUDGET,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            priority: 0,
            timeout_ms: None,
            telemetry_window: None,
            faults: FaultSpec::none(),
        }
    }

    /// Parses one protocol object into a validated spec. `fallback_id`
    /// names the job when the line omits `"id"`.
    pub fn from_json(obj: &BTreeMap<String, Json>, fallback_id: &str) -> Result<Self, String> {
        let mut spec = Self::new(fallback_id);
        let uint = |key: &str, v: &Json| {
            v.as_u64()
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
        };
        for (key, value) in obj {
            match key.as_str() {
                "id" => {
                    let id = value.as_str().ok_or("field `id` must be a string")?;
                    if id.is_empty() {
                        return Err("field `id` must not be empty".into());
                    }
                    spec.id = id.to_owned();
                }
                "pes" => spec.pes = uint(key, value)? as usize,
                "seed" => spec.seed = uint(key, value)?,
                "workload" => {
                    let name = value.as_str().ok_or("field `workload` must be a string")?;
                    spec.workload = Workload::by_name(name).ok_or_else(|| {
                        format!(
                            "unknown workload `{name}` (known workloads: {})",
                            Workload::NAMES.join(", ")
                        )
                    })?;
                }
                "rounds" => {
                    spec.rounds = value
                        .as_i64()
                        .filter(|&r| r >= 1)
                        .ok_or("field `rounds` must be a positive integer")?;
                }
                "mean_gap" => {
                    spec.mean_gap = value
                        .as_u64()
                        .filter(|&g| g >= 1)
                        .ok_or("field `mean_gap` must be a positive integer")?;
                }
                "copies" => spec.copies = uint(key, value)? as usize,
                "threads" => spec.threads = uint(key, value)? as usize,
                "cycles" => spec.cycles = uint(key, value)?,
                "checkpoint_every" => spec.checkpoint_every = uint(key, value)?,
                "priority" => {
                    spec.priority = value
                        .as_i64()
                        .ok_or("field `priority` must be an integer")?;
                }
                "timeout_ms" => spec.timeout_ms = Some(uint(key, value)?),
                "telemetry_window" => {
                    let window = uint(key, value)?;
                    if window == 0 {
                        return Err("field `telemetry_window` must be positive".into());
                    }
                    spec.telemetry_window = Some(window);
                }
                "dead_mms" => {
                    let items = value
                        .as_array()
                        .ok_or("field `dead_mms` must be an array")?;
                    spec.faults.dead_mms = items
                        .iter()
                        .map(|v| uint(key, v).map(|m| m as usize))
                        .collect::<Result<_, _>>()?;
                }
                "dead_copies" => {
                    let items = value
                        .as_array()
                        .ok_or("field `dead_copies` must be an array")?;
                    spec.faults.dead_copies = items
                        .iter()
                        .map(|v| uint(key, v).map(|c| c as usize))
                        .collect::<Result<_, _>>()?;
                }
                "link_loss" => {
                    spec.faults.link_loss = value
                        .as_f64()
                        .filter(|p| (0.0..1.0).contains(p))
                        .ok_or("field `link_loss` must be a probability in [0, 1)")?;
                }
                "fault_seed" => spec.faults.fault_seed = uint(key, value)?,
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        if !self.pes.is_power_of_two() || self.pes < 2 {
            return Err(format!("pes must be a power of two >= 2, got {}", self.pes));
        }
        if self.copies < 1 {
            return Err("copies must be >= 1".into());
        }
        if let Some(&copy) = self.faults.dead_copies.iter().find(|&&c| c >= self.copies) {
            return Err(format!(
                "dead copy {copy} out of range (copies={})",
                self.copies
            ));
        }
        if self.faults.dead_mms.iter().any(|&mm| mm >= self.pes) {
            return Err(format!("dead MM out of range (pes={})", self.pes));
        }
        if self.faults.dead_mms.len() >= self.pes {
            return Err("cannot kill every memory module".into());
        }
        if self.faults.dead_copies.len() >= self.copies {
            return Err("cannot kill every network copy".into());
        }
        if self.threads < 1 {
            return Err("threads must be >= 1".into());
        }
        if self.mean_gap < 1 {
            return Err("mean_gap must be >= 1".into());
        }
        if self.cycles < 1 {
            return Err("cycles must be >= 1".into());
        }
        if self.checkpoint_every < 1 {
            return Err("checkpoint_every must be >= 1".into());
        }
        Ok(())
    }

    /// Builds a fresh machine for this job at cycle 0.
    ///
    /// `max_cycles` is pinned to `Cycle::MAX` — the job's budget is
    /// enforced by the server through [`Machine::run_for`] slices, so
    /// jobs differing only in budget share one config identity (and
    /// therefore one snapshot-cache prefix).
    #[must_use]
    pub fn machine(&self) -> Machine {
        let mut b = MachineBuilder::new(self.pes)
            .seed(self.seed)
            .threads(self.threads)
            .max_cycles(Cycle::MAX);
        if self.copies > 1 {
            b = b.network(self.copies);
        }
        if !self.faults.is_none() {
            b = b.faults(self.faults.plan());
        }
        let mut m = b.build_spmd(&self.workload.program(self.rounds));
        if self.workload == Workload::Serving {
            self.serving_config().install(&mut m);
        }
        m
    }

    /// The serving-workload configuration this spec names: request count
    /// from `rounds`, arrival process from `mean_gap` and the machine
    /// seed. Meaningful only when `workload` is `serving`.
    #[must_use]
    pub fn serving_config(&self) -> ultra_workloads::Serving {
        ultra_workloads::Serving::new(self.rounds.max(1) as usize, self.mean_gap).seed(self.seed)
    }

    /// The snapshot-cache key: every field that shapes simulation state,
    /// and nothing that doesn't. Budget, priority, timeout, telemetry,
    /// checkpoint cadence, engine threads and the job id are all
    /// excluded — jobs differing only in those walk bit-identical cycle
    /// sequences and may share checkpoints.
    #[must_use]
    pub fn prefix_key(&self) -> String {
        format!(
            "pes={};seed={};workload={};rounds={};mean_gap={};copies={};dead_mms={:?};dead_copies={:?};link_loss={};fault_seed={}",
            self.pes,
            self.seed,
            self.workload.name(),
            self.rounds,
            // Only serving machines read the gap; normalizing it to 0
            // elsewhere lets closed-workload jobs keep sharing prefixes.
            if self.workload == Workload::Serving {
                self.mean_gap
            } else {
                0
            },
            self.copies,
            self.faults.dead_mms,
            self.faults.dead_copies,
            self.faults.link_loss,
            self.faults.fault_seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_object;

    fn spec_of(line: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&parse_object(line).unwrap(), "fallback")
    }

    #[test]
    fn parses_a_full_job_line() {
        let spec = spec_of(
            r#"{"id": "j1", "pes": 16, "seed": 9, "workload": "ticket", "rounds": 12,
                "copies": 2, "dead_copies": [1], "cycles": 5000, "checkpoint_every": 500,
                "priority": 3, "timeout_ms": 1000, "link_loss": 0.1, "fault_seed": 7}"#,
        )
        .unwrap();
        assert_eq!(spec.id, "j1");
        assert_eq!(spec.pes, 16);
        assert_eq!(spec.workload, Workload::Ticket);
        assert_eq!(spec.rounds, 12);
        assert_eq!(spec.copies, 2);
        assert_eq!(spec.faults.dead_copies, [1]);
        assert_eq!(spec.cycles, 5000);
        assert_eq!(spec.priority, 3);
        assert_eq!(spec.timeout_ms, Some(1000));
        assert_eq!(spec.faults.link_loss, 0.1);
    }

    #[test]
    fn defaults_fill_everything_optional() {
        let spec = spec_of(r#"{"pes": 4}"#).unwrap();
        assert_eq!(spec.id, "fallback");
        assert_eq!(spec.workload, Workload::Counter);
        assert_eq!(spec.cycles, DEFAULT_CYCLE_BUDGET);
        assert_eq!(spec.checkpoint_every, DEFAULT_CHECKPOINT_EVERY);
        assert!(spec.faults.is_none());
    }

    #[test]
    fn rejects_bad_fields() {
        for (line, needle) in [
            (r#"{"pes": 6}"#, "power of two"),
            (r#"{"pes": "eight"}"#, "non-negative integer"),
            (r#"{"workload": "fib"}"#, "unknown workload"),
            (
                r#"{"workload": "fib"}"#,
                "counter, ticket, barrier, serving",
            ),
            (r#"{"mean_gap": 0}"#, "positive"),
            (r#"{"rounds": 0}"#, "positive"),
            (r#"{"link_loss": 1.5}"#, "probability"),
            (r#"{"copies": 2, "dead_copies": [2]}"#, "out of range"),
            (r#"{"dead_mms": [9]}"#, "out of range"),
            (r#"{"dead_copies": [0]}"#, "every network copy"),
            (r#"{"cycles": 0}"#, "cycles"),
            (r#"{"telemetry_window": 0}"#, "positive"),
            (r#"{"frobnicate": 1}"#, "unknown field"),
            (r#"{"id": ""}"#, "empty"),
        ] {
            let err = spec_of(line).unwrap_err();
            assert!(
                err.contains(needle),
                "line {line}: error {err:?} lacks {needle:?}"
            );
        }
    }

    #[test]
    fn prefix_key_ignores_execution_knobs_only() {
        let base = spec_of(r#"{"pes": 8, "seed": 1, "workload": "ticket", "rounds": 5}"#).unwrap();
        let tuned = spec_of(
            r#"{"id": "other", "pes": 8, "seed": 1, "workload": "ticket", "rounds": 5,
                "cycles": 123, "priority": 9, "threads": 3, "checkpoint_every": 7,
                "timeout_ms": 5, "telemetry_window": 64}"#,
        )
        .unwrap();
        assert_eq!(base.prefix_key(), tuned.prefix_key());
        let other_seed =
            spec_of(r#"{"pes": 8, "seed": 2, "workload": "ticket", "rounds": 5}"#).unwrap();
        assert_ne!(base.prefix_key(), other_seed.prefix_key());
        let other_faults =
            spec_of(r#"{"pes": 8, "seed": 1, "workload": "ticket", "rounds": 5, "dead_mms": [3]}"#)
                .unwrap();
        assert_ne!(base.prefix_key(), other_faults.prefix_key());
    }

    #[test]
    fn serving_jobs_complete_and_stamp_every_request() {
        let spec = spec_of(
            r#"{"pes": 4, "seed": 9, "workload": "serving", "rounds": 32, "mean_gap": 40}"#,
        )
        .unwrap();
        let mut m = spec.machine();
        assert!(m.run().completed);
        let lat = spec.serving_config().latencies(&m);
        assert_eq!(lat.count(), 32);
    }

    #[test]
    fn serving_prefix_key_tracks_the_offered_load() {
        let at = |gap: u64| {
            let mut spec = JobSpec::new("s");
            spec.workload = Workload::Serving;
            spec.rounds = 64;
            spec.mean_gap = gap;
            spec.prefix_key()
        };
        assert_ne!(at(20), at(40), "the gap shapes serving state");
        // Closed workloads ignore the gap — and must keep sharing
        // snapshot prefixes across it.
        let closed = |gap: u64| {
            let mut spec = JobSpec::new("c");
            spec.mean_gap = gap;
            spec.prefix_key()
        };
        assert_eq!(closed(20), closed(40));
    }

    #[test]
    fn workloads_complete_and_count_correctly() {
        for (workload, expected_counter) in [
            (Workload::Counter, 4 * 6),
            (Workload::Ticket, 4 * 6),
            (Workload::Barrier, 4 * 6),
        ] {
            let mut spec = JobSpec::new("w");
            spec.pes = 4;
            spec.workload = workload;
            spec.rounds = 6;
            let mut m = spec.machine();
            assert!(m.run().completed, "{} must complete", workload.name());
            assert_eq!(
                m.read_shared(0),
                expected_counter,
                "{} counter",
                workload.name()
            );
        }
    }
}

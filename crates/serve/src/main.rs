//! `ultra-serve` — the Ultracomputer simulator as a resident service.
//!
//! ```text
//! ultra-serve --batch jobs.ndjson [--workers N] [--queue-cap N]
//!             [--metrics-out FILE] [--trace-out FILE]
//!             [--log-level debug|info|warn|error] [--flight-cap N]
//! ultra-serve --listen 127.0.0.1:7077 [same flags]
//! ```
//!
//! Both modes speak the same newline-delimited JSON protocol: one object
//! per line. A job line names a machine and a workload (see
//! `ultra_serve::spec::JobSpec`); `{"cancel": "<id>"}` cancels a queued
//! or running job; `{"metrics"}` (or `{"metrics": true}`) answers with
//! the Prometheus text exposition terminated by a `# EOF` line;
//! `{"dump"}` (or `{"dump": true}`) answers with the flight recorder's
//! NDJSON events terminated by a `{"dump_complete": N}` line;
//! `{"shutdown": true}` (socket mode) drains the queue and exits.
//!
//! **Result lines** go to stdout in batch mode and to the submitting
//! connection in socket mode — every input job yields exactly one.
//! **Diagnostics** are structured NDJSON events on stderr, filtered by
//! `--log-level` (everything is retained in the bounded flight recorder
//! regardless, and the ring is dumped to stderr on job error/timeout).
//!
//! Batch mode exits non-zero if any line failed to parse or validate,
//! or any job timed out (`cancelled` and `budget-exhausted` are
//! requested behavior, not failures); `--batch -` reads from stdin. On
//! exit, `--metrics-out` writes the metrics state as JSON and
//! `--trace-out` writes per-job lifecycle spans as Chrome `trace_event`
//! JSON (loadable in Perfetto).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

use ultra_obs::flight::FlightLevel;
use ultra_serve::json::{parse_object, Json};
use ultra_serve::obs::{JobPhase, ObsOptions, ServeObs};
use ultra_serve::queue::JobQueue;
use ultra_serve::spec::JobSpec;
use ultra_serve::{error_line, JobCtx, JobOutcome, JobStatus, Server};

const DEFAULT_WORKERS: usize = 2;
const DEFAULT_QUEUE_CAP: usize = 64;
const DEFAULT_FLIGHT_CAP: usize = 256;

fn usage() -> ! {
    eprintln!(
        "usage: ultra-serve --batch <file|-> [--workers N] [--queue-cap N]\n\
         \x20                 [--metrics-out FILE] [--trace-out FILE]\n\
         \x20                 [--log-level debug|info|warn|error] [--flight-cap N]\n\
         \x20      ultra-serve --listen <addr> [same flags]"
    );
    std::process::exit(2);
}

struct Options {
    batch: Option<String>,
    listen: Option<String>,
    workers: usize,
    queue_cap: usize,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    log_level: FlightLevel,
    flight_cap: usize,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        batch: None,
        listen: None,
        workers: DEFAULT_WORKERS,
        queue_cap: DEFAULT_QUEUE_CAP,
        metrics_out: None,
        trace_out: None,
        log_level: FlightLevel::Info,
        flight_cap: DEFAULT_FLIGHT_CAP,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--batch" => opts.batch = Some(value(i)),
            "--listen" => opts.listen = Some(value(i)),
            "--workers" => {
                opts.workers = value(i).parse().unwrap_or_else(|_| usage());
            }
            "--queue-cap" => {
                opts.queue_cap = value(i).parse().unwrap_or_else(|_| usage());
            }
            "--metrics-out" => opts.metrics_out = Some(value(i)),
            "--trace-out" => opts.trace_out = Some(value(i)),
            "--log-level" => {
                opts.log_level = FlightLevel::parse(&value(i)).unwrap_or_else(|| usage());
            }
            "--flight-cap" => {
                opts.flight_cap = value(i).parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
        i += 2;
    }
    if opts.batch.is_some() == opts.listen.is_some() {
        usage();
    }
    if opts.workers < 1 || opts.queue_cap < 1 || opts.flight_cap < 1 {
        usage();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let server = Server::with_obs(ObsOptions {
        flight_capacity: opts.flight_cap,
        log_level: opts.log_level,
        trace_jobs: opts.trace_out.is_some(),
    });
    let code = if let Some(path) = &opts.batch {
        run_batch_mode(&server, path, &opts)
    } else if let Some(addr) = &opts.listen {
        run_listen_mode(&server, addr, &opts)
    } else {
        usage()
    };
    write_artifacts(&server, &opts);
    code
}

/// Writes the `--metrics-out` / `--trace-out` files from the final
/// service state (both modes, on exit).
fn write_artifacts(server: &Server, opts: &Options) {
    let obs = server.obs().expect("main always enables obs");
    for (path, content, kind) in [
        (&opts.metrics_out, server.metrics_json(), "metrics"),
        (&opts.trace_out, server.trace_json(), "trace"),
    ] {
        let (Some(path), Some(content)) = (path, content) else {
            continue;
        };
        match std::fs::write(path, content) {
            Ok(()) => obs.log(
                FlightLevel::Info,
                "",
                "artifact",
                &format!("wrote {kind} to {path}"),
            ),
            Err(e) => obs.log(
                FlightLevel::Error,
                "",
                "artifact",
                &format!("writing {kind} to {path}: {e}"),
            ),
        }
    }
}

/// What one protocol line meant.
enum Classified {
    /// A job to enqueue.
    Job(JobSpec),
    /// A blank line, comment, or control line already acted on.
    Control,
    /// A `{"shutdown": true}` request (socket mode drains and exits; in
    /// a batch the end of file is the shutdown, so it is a no-op there).
    Shutdown,
    /// A `{"metrics"}` request for the Prometheus exposition.
    Metrics,
    /// A `{"dump"}` request for the flight recorder's contents.
    Dump,
}

/// Parses one protocol line, applying `{"cancel": ...}` control lines to
/// the server immediately. `Err` carries a rendered error result line.
fn classify_line(server: &Server, line: &str, lineno: usize) -> Result<Classified, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(Classified::Control);
    }
    // Bare control literals — accepted before JSON parsing because the
    // brace-only shorthand is not a valid JSON object.
    if trimmed == "{\"metrics\"}" {
        return Ok(Classified::Metrics);
    }
    if trimmed == "{\"dump\"}" {
        return Ok(Classified::Dump);
    }
    let fallback_id = format!("job-{lineno}");
    let obj = match parse_object(trimmed) {
        Ok(obj) => obj,
        Err(e) => return Err(error_line(&fallback_id, &format!("parse error: {e}"))),
    };
    if let Some(target) = obj.get("cancel") {
        return match target.as_str() {
            Some(id) => {
                server.cancel(id);
                Ok(Classified::Control)
            }
            None => Err(error_line(&fallback_id, "field `cancel` must be a job id")),
        };
    }
    if obj.get("metrics") == Some(&Json::Bool(true)) {
        return Ok(Classified::Metrics);
    }
    if obj.get("dump") == Some(&Json::Bool(true)) {
        return Ok(Classified::Dump);
    }
    if obj.get("shutdown") == Some(&Json::Bool(true)) {
        return Ok(Classified::Shutdown);
    }
    match JobSpec::from_json(&obj, &fallback_id) {
        Ok(spec) => Ok(Classified::Job(spec)),
        Err(e) => Err(error_line(&fallback_id, &e)),
    }
}

/// Classifies one line with parse-phase timing and protocol-error
/// accounting (shared by both modes).
fn classify_observed(
    server: &Server,
    obs: &ServeObs,
    line: &str,
    lineno: usize,
) -> Result<Classified, String> {
    let parse_started = Instant::now();
    let classified = classify_line(server, line, lineno);
    let parse_us = u64::try_from(parse_started.elapsed().as_micros()).unwrap_or(u64::MAX);
    match &classified {
        Ok(Classified::Job(spec)) => {
            obs.observe_phase(spec.workload.name(), JobPhase::Parse, 0, parse_us);
        }
        Ok(_) => {}
        Err(error) => {
            obs.observe_phase("invalid", JobPhase::Parse, 0, parse_us);
            obs.protocol_error();
            obs.log(
                FlightLevel::Error,
                "",
                "protocol",
                &format!("line {lineno} rejected: {error}"),
            );
            obs.dump_flight_to_stderr(&format!("protocol error on line {lineno}"));
        }
    }
    classified
}

fn run_batch_mode(server: &Server, path: &str, opts: &Options) -> ExitCode {
    let obs = server.obs().expect("main always enables obs");
    let text = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            obs.log(FlightLevel::Error, "", "io", &format!("reading stdin: {e}"));
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                obs.log(
                    FlightLevel::Error,
                    "",
                    "io",
                    &format!("reading {path}: {e}"),
                );
                return ExitCode::FAILURE;
            }
        }
    };

    let mut specs = Vec::new();
    let mut had_error = false;
    for (index, line) in text.lines().enumerate() {
        match classify_observed(server, obs, line, index + 1) {
            Ok(Classified::Job(spec)) => specs.push(spec),
            Ok(Classified::Control | Classified::Shutdown) => {}
            Ok(Classified::Metrics) => obs.log(
                FlightLevel::Warn,
                "",
                "protocol",
                "metrics control line is answered in --listen mode; use --metrics-out for batch runs",
            ),
            Ok(Classified::Dump) => obs.dump_flight_to_stderr("dump requested by batch line"),
            Err(error) => {
                // Every input job yields exactly one terminal result
                // line on stdout, parse failures included.
                println!("{error}");
                had_error = true;
            }
        }
    }

    let submitted = specs.len();
    let mut failed_jobs = 0usize;
    let done = server.run_batch(specs, opts.workers, opts.queue_cap, |outcome| {
        println!("{}", outcome.line);
        if outcome.status.is_failure() {
            failed_jobs += 1;
        }
    });
    obs.log(
        FlightLevel::Info,
        "",
        "batch",
        &format!(
            "{done}/{submitted} jobs done ({failed_jobs} failed); cache: {} hits, {} misses, {} evictions, {} checkpoints",
            server.cache().hits(),
            server.cache().misses(),
            server.cache().evictions(),
            server.cache().len()
        ),
    );
    if had_error || done != submitted || failed_jobs > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One queued unit in socket mode: the job, when it was enqueued, and
/// the channel back to the connection that submitted it.
struct Submission {
    spec: JobSpec,
    enqueued_at: Instant,
    reply: mpsc::Sender<JobOutcome>,
}

/// A non-job reply (metrics exposition, flight dump) routed through the
/// connection's writer channel.
fn raw_reply(line: String) -> JobOutcome {
    JobOutcome {
        id: String::new(),
        status: JobStatus::Completed,
        line,
        log: Vec::new(),
    }
}

fn run_listen_mode(server: &Server, addr: &str, opts: &Options) -> ExitCode {
    let obs = Arc::clone(server.obs().expect("main always enables obs"));
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(e) => {
            obs.log(
                FlightLevel::Error,
                "",
                "io",
                &format!("binding {addr}: {e}"),
            );
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().ok();
    obs.log(
        FlightLevel::Info,
        "",
        "listen",
        &format!(
            "listening on {}",
            local.map_or_else(|| addr.to_owned(), |a| a.to_string())
        ),
    );

    let queue = Arc::new(JobQueue::<Submission>::with_meter(
        opts.queue_cap,
        Some(obs.queue_meter()),
    ));
    let shutdown = Arc::new(AtomicBool::new(false));

    thread::scope(|scope| {
        let mut worker_handles = Vec::new();
        for worker in 0..opts.workers {
            let queue = Arc::clone(&queue);
            let obs = Arc::clone(&obs);
            worker_handles.push(scope.spawn(move || {
                let mut idle_since = Instant::now();
                while let Some(sub) = queue.pop() {
                    let busy_since = Instant::now();
                    obs.worker_idle(
                        worker,
                        u64::try_from(idle_since.elapsed().as_micros()).unwrap_or(u64::MAX),
                    );
                    let ctx = JobCtx {
                        worker,
                        enqueued_at: Some(sub.enqueued_at),
                    };
                    let outcome = server.run_job_ctx(&sub.spec, ctx);
                    obs.worker_busy(
                        worker,
                        u64::try_from(busy_since.elapsed().as_micros()).unwrap_or(u64::MAX),
                    );
                    idle_since = Instant::now();
                    // A disconnected client just drops its results.
                    let _ = sub.reply.send(outcome);
                }
            }));
        }

        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            scope.spawn(move || handle_connection(stream, server, &queue, &shutdown, local));
        }

        queue.close();
        for handle in worker_handles {
            let _ = handle.join();
        }
    });
    obs.log(FlightLevel::Info, "", "listen", "shut down");
    ExitCode::SUCCESS
}

fn handle_connection(
    stream: TcpStream,
    server: &Server,
    queue: &JobQueue<Submission>,
    shutdown: &AtomicBool,
    local: Option<std::net::SocketAddr>,
) {
    let obs = server.obs().expect("main always enables obs");
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<JobOutcome>();
    let writer = thread::spawn(move || {
        let mut out = write_half;
        for outcome in rx {
            if writeln!(out, "{}", outcome.line).is_err() {
                break;
            }
        }
    });

    let mut lineno = 0;
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        lineno += 1;
        match classify_observed(server, obs, &line, lineno) {
            Ok(Classified::Job(spec)) => {
                let priority = spec.priority;
                let submission = Submission {
                    spec,
                    enqueued_at: Instant::now(),
                    reply: tx.clone(),
                };
                if !queue.push(priority, submission) {
                    break;
                }
            }
            Ok(Classified::Control) => {}
            Ok(Classified::Metrics) => {
                // The exposition is multi-line; `# EOF` terminates it so
                // clients on the NDJSON stream know where it ends.
                let text = server.render_metrics().expect("main always enables obs");
                let _ = tx.send(raw_reply(format!("{text}# EOF")));
            }
            Ok(Classified::Dump) => {
                let mut lines = obs.dump_flight();
                let count = lines.len();
                lines.push(format!("{{\"dump_complete\": {count}}}"));
                let _ = tx.send(raw_reply(lines.join("\n")));
            }
            Ok(Classified::Shutdown) => {
                // Flag the whole server down, then poke the accept loop
                // awake with a throwaway connection.
                shutdown.store(true, Ordering::SeqCst);
                if let Some(addr) = local {
                    let _ = TcpStream::connect(addr);
                }
                break;
            }
            Err(error) => {
                let _ = tx.send(JobOutcome {
                    id: String::new(),
                    status: JobStatus::Error,
                    line: error,
                    log: Vec::new(),
                });
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

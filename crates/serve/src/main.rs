//! `ultra-serve` — the Ultracomputer simulator as a resident service.
//!
//! ```text
//! ultra-serve --batch jobs.ndjson [--workers N] [--queue-cap N]
//! ultra-serve --listen 127.0.0.1:7077 [--workers N] [--queue-cap N]
//! ```
//!
//! Both modes speak the same newline-delimited JSON protocol: one object
//! per line. A job line names a machine and a workload (see
//! `ultra_serve::spec::JobSpec`); `{"cancel": "<id>"}` cancels a queued
//! or running job; `{"shutdown": true}` (socket mode) drains the queue
//! and exits. Results stream back one JSON line per job — to stdout in
//! batch mode, to the submitting connection in socket mode — and
//! execution logs (cache hits, rejected snapshots) go to stderr.
//!
//! Batch mode exits non-zero if any line failed to parse or validate;
//! `--batch -` reads the batch from stdin.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use ultra_serve::json::{parse_object, Json};
use ultra_serve::queue::JobQueue;
use ultra_serve::spec::JobSpec;
use ultra_serve::{error_line, JobOutcome, Server};

const DEFAULT_WORKERS: usize = 2;
const DEFAULT_QUEUE_CAP: usize = 64;

fn usage() -> ! {
    eprintln!(
        "usage: ultra-serve --batch <file|-> [--workers N] [--queue-cap N]\n       ultra-serve --listen <addr> [--workers N] [--queue-cap N]"
    );
    std::process::exit(2);
}

struct Options {
    batch: Option<String>,
    listen: Option<String>,
    workers: usize,
    queue_cap: usize,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        batch: None,
        listen: None,
        workers: DEFAULT_WORKERS,
        queue_cap: DEFAULT_QUEUE_CAP,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--batch" => opts.batch = Some(value(i)),
            "--listen" => opts.listen = Some(value(i)),
            "--workers" => {
                opts.workers = value(i).parse().unwrap_or_else(|_| usage());
            }
            "--queue-cap" => {
                opts.queue_cap = value(i).parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
        i += 2;
    }
    if opts.batch.is_some() == opts.listen.is_some() {
        usage();
    }
    if opts.workers < 1 || opts.queue_cap < 1 {
        usage();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    if let Some(path) = &opts.batch {
        run_batch_mode(path, opts.workers, opts.queue_cap)
    } else if let Some(addr) = &opts.listen {
        run_listen_mode(addr, opts.workers, opts.queue_cap)
    } else {
        usage()
    }
}

/// What one protocol line meant.
enum Classified {
    /// A job to enqueue.
    Job(JobSpec),
    /// A blank line, comment, or control line already acted on.
    Control,
    /// A `{"shutdown": true}` request (socket mode drains and exits; in
    /// a batch the end of file is the shutdown, so it is a no-op there).
    Shutdown,
}

/// Parses one protocol line, applying `{"cancel": ...}` control lines to
/// the server immediately. `Err` carries a rendered error result line.
fn classify_line(server: &Server, line: &str, lineno: usize) -> Result<Classified, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(Classified::Control);
    }
    let fallback_id = format!("job-{lineno}");
    let obj = match parse_object(trimmed) {
        Ok(obj) => obj,
        Err(e) => return Err(error_line(&fallback_id, &format!("parse error: {e}"))),
    };
    if let Some(target) = obj.get("cancel") {
        return match target.as_str() {
            Some(id) => {
                server.cancel(id);
                Ok(Classified::Control)
            }
            None => Err(error_line(&fallback_id, "field `cancel` must be a job id")),
        };
    }
    if obj.get("shutdown") == Some(&Json::Bool(true)) {
        return Ok(Classified::Shutdown);
    }
    match JobSpec::from_json(&obj, &fallback_id) {
        Ok(spec) => Ok(Classified::Job(spec)),
        Err(e) => Err(error_line(&fallback_id, &e)),
    }
}

fn run_batch_mode(path: &str, workers: usize, queue_cap: usize) -> ExitCode {
    let text = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("ultra-serve: reading stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("ultra-serve: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let server = Server::new();
    let mut specs = Vec::new();
    let mut had_error = false;
    for (index, line) in text.lines().enumerate() {
        match classify_line(&server, line, index + 1) {
            Ok(Classified::Job(spec)) => specs.push(spec),
            Ok(Classified::Control | Classified::Shutdown) => {}
            Err(error) => {
                println!("{error}");
                had_error = true;
            }
        }
    }

    let submitted = specs.len();
    let done = server.run_batch(specs, workers, queue_cap, |outcome| {
        println!("{}", outcome.line);
        for entry in &outcome.log {
            eprintln!("ultra-serve: {entry}");
        }
    });
    eprintln!(
        "ultra-serve: {done}/{submitted} jobs done; cache: {} hits, {} misses, {} checkpoints",
        server.cache().hits(),
        server.cache().misses(),
        server.cache().len()
    );
    if had_error || done != submitted {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One queued unit in socket mode: the job plus the channel back to the
/// connection that submitted it.
struct Submission {
    spec: JobSpec,
    reply: mpsc::Sender<JobOutcome>,
}

fn run_listen_mode(addr: &str, workers: usize, queue_cap: usize) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("ultra-serve: binding {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().ok();
    eprintln!(
        "ultra-serve: listening on {}",
        local.map_or_else(|| addr.to_owned(), |a| a.to_string())
    );

    let server = Arc::new(Server::new());
    let queue = Arc::new(JobQueue::<Submission>::new(queue_cap));
    let shutdown = Arc::new(AtomicBool::new(false));

    let worker_handles: Vec<_> = (0..workers)
        .map(|_| {
            let server = Arc::clone(&server);
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                while let Some(sub) = queue.pop() {
                    let outcome = server.run_job(&sub.spec);
                    for entry in &outcome.log {
                        eprintln!("ultra-serve: {entry}");
                    }
                    // A disconnected client just drops its results.
                    let _ = sub.reply.send(outcome);
                }
            })
        })
        .collect();

    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(&server);
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || handle_connection(stream, &server, &queue, &shutdown, local));
    }

    queue.close();
    for handle in worker_handles {
        let _ = handle.join();
    }
    eprintln!("ultra-serve: shut down");
    ExitCode::SUCCESS
}

fn handle_connection(
    stream: TcpStream,
    server: &Server,
    queue: &JobQueue<Submission>,
    shutdown: &AtomicBool,
    local: Option<std::net::SocketAddr>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<JobOutcome>();
    let writer = thread::spawn(move || {
        let mut out = write_half;
        for outcome in rx {
            if writeln!(out, "{}", outcome.line).is_err() {
                break;
            }
        }
    });

    let mut lineno = 0;
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        lineno += 1;
        match classify_line(server, &line, lineno) {
            Ok(Classified::Job(spec)) => {
                let priority = spec.priority;
                let submission = Submission {
                    spec,
                    reply: tx.clone(),
                };
                if !queue.push(priority, submission) {
                    break;
                }
            }
            Ok(Classified::Control) => {}
            Ok(Classified::Shutdown) => {
                // Flag the whole server down, then poke the accept loop
                // awake with a throwaway connection.
                shutdown.store(true, Ordering::SeqCst);
                if let Some(addr) = local {
                    let _ = TcpStream::connect(addr);
                }
                break;
            }
            Err(error) => {
                let _ = tx.send(JobOutcome {
                    id: String::new(),
                    line: error,
                    log: Vec::new(),
                });
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

//! A minimal JSON *reader* for the service's newline-delimited protocol.
//!
//! The workspace takes no serde dependency; results are rendered with
//! [`ultra_bench::json`] and requests are parsed here. The grammar is
//! full JSON (objects, arrays, strings with escapes, numbers, booleans,
//! `null`), restricted only in that numbers are held as `f64` — integers
//! are exact up to 2^53, far beyond any field the protocol carries.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string, escape sequences decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; duplicate keys keep the last value.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is one.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Self::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: what was wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What the parser expected or rejected.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

/// Parses one line of the protocol: a single JSON object.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, Json>, ParseError> {
    match parse(line)? {
        Json::Obj(map) => Ok(map),
        _ => Err(ParseError {
            at: 0,
            what: "expected a JSON object",
        }),
    }
}

/// Nesting deeper than this is rejected — the protocol needs two levels.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &'static str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected a string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let mut code = self.hex4()?;
                            // A high surrogate must pair with a following
                            // \uXXXX low surrogate.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            }
                            let ch =
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar. The input arrived as a &str,
                    // so decoding from any char boundary always succeeds.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("bad utf-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[', "expected an array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{', "expected an object")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let line = r#"{"id": "a-1", "pes": 8, "link_loss": 0.25, "dead_mms": [3, 5], "telemetry": true, "note": null}"#;
        let obj = parse_object(line).unwrap();
        assert_eq!(obj["id"].as_str(), Some("a-1"));
        assert_eq!(obj["pes"].as_u64(), Some(8));
        assert_eq!(obj["link_loss"].as_f64(), Some(0.25));
        assert_eq!(obj["telemetry"].as_bool(), Some(true));
        assert_eq!(obj["note"], Json::Null);
        let mms: Vec<u64> = obj["dead_mms"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(mms, [3, 5]);
    }

    #[test]
    fn decodes_escapes_including_surrogate_pairs() {
        let obj = parse_object(r#"{"s": "a\"b\\c\n\u0041\ud83d\ude00"}"#).unwrap();
        assert_eq!(obj["s"].as_str(), Some("a\"b\\c\nA\u{1F600}"));
    }

    #[test]
    fn numbers_distinguish_integers_from_floats() {
        let obj = parse_object(r#"{"n": -12, "x": 1.5, "e": 2e3}"#).unwrap();
        assert_eq!(obj["n"].as_i64(), Some(-12));
        assert_eq!(obj["n"].as_u64(), None, "negative is not a u64");
        assert_eq!(obj["x"].as_u64(), None, "fractional is not an integer");
        assert_eq!(obj["e"].as_u64(), Some(2000));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "{\"a\": }",
            "[1, 2",
            "{\"a\": 1} trailing",
            "nul",
            "\"unterminated",
            "{\"s\": \"\\q\"}",
            "{\"s\": \"\\ud800\"}",
            "007a",
            "{\"n\": 1e999}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn protocol_lines_must_be_objects() {
        assert!(parse_object("[1, 2]").is_err());
        assert!(parse_object("42").is_err());
    }
}

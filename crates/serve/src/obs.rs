//! Service observability: the glue between ultra-serve and the
//! `ultra-obs` metrics registry, flight recorder and Chrome trace
//! writer.
//!
//! One [`ServeObs`] lives as long as the [`crate::Server`] it instruments
//! and owns four views of the running service:
//!
//! * a [`MetricsRegistry`] of live instruments — queue depth and
//!   enqueue/dequeue counts, snapshot-cache hits/misses/evictions,
//!   per-worker busy/idle time, jobs by terminal status — rendered on
//!   demand as a Prometheus text exposition;
//! * per-job **phase latency histograms** (`parse → queue wait → restore
//!   → slices → report`, plus end-to-end `total`), kept per worker in
//!   exact [`Histogram`]s and merged with [`Histogram::merge`] at
//!   exposition time into per-workload p50/p90/p99 summaries;
//! * a bounded [`FlightRecorder`] of structured NDJSON job events — the
//!   replacement for ad-hoc `eprintln!` — where every event is retained
//!   at every level and `--log-level` only gates what reaches stderr;
//! * optional per-job **lifecycle spans** exported through
//!   [`ChromeTraceBuilder`]: one Perfetto process per worker, one thread
//!   per job (stable job sequence ids), one span per phase.
//!
//! Everything here is observation-only. Nothing feeds back into job
//! execution, which is what keeps result lines byte-identical with
//! observability on or off (asserted by the `service.rs` integration
//! tests).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ultra_bench::json::{array_lines, JsonObject};
use ultra_obs::flight::{FlightLevel, FlightRecorder};
use ultra_obs::metrics::{AtomicHistogram, Counter, Gauge, MetricsRegistry};
use ultra_obs::ChromeTraceBuilder;
use ultra_sim::stats::Histogram;

use crate::cache::CacheMeter;
use crate::queue::QueueMeter;
use crate::spec::Workload;
use crate::JobStatus;

/// One phase of a job's lifecycle, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobPhase {
    /// Parsing and validating the protocol line.
    Parse,
    /// Sitting in the bounded priority queue.
    QueueWait,
    /// Acquiring a machine: snapshot-cache lookup plus restore, or a
    /// fresh build.
    Restore,
    /// The `run_for` checkpoint-slice loop — the simulation itself.
    Slices,
    /// Rendering the result line.
    Report,
    /// End to end: enqueue (or start, for detached jobs) to result.
    Total,
}

impl JobPhase {
    /// Every phase, in lifecycle order.
    pub const ALL: [JobPhase; 6] = [
        JobPhase::Parse,
        JobPhase::QueueWait,
        JobPhase::Restore,
        JobPhase::Slices,
        JobPhase::Report,
        JobPhase::Total,
    ];

    /// The label value used in metrics and span names.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Parse => "parse",
            Self::QueueWait => "queue-wait",
            Self::Restore => "restore",
            Self::Slices => "slices",
            Self::Report => "report",
            Self::Total => "total",
        }
    }
}

/// How observability is configured (all fields have serviceable
/// defaults).
#[derive(Debug, Clone, Copy)]
pub struct ObsOptions {
    /// Flight-recorder ring capacity (events kept for post-mortems).
    pub flight_capacity: usize,
    /// Lowest level emitted to stderr; everything is recorded in the
    /// ring regardless.
    pub log_level: FlightLevel,
    /// Whether to retain per-job lifecycle spans for a Chrome trace
    /// export (unbounded growth per job — batch-length, not
    /// service-lifetime, workloads).
    pub trace_jobs: bool,
}

impl Default for ObsOptions {
    fn default() -> Self {
        Self {
            flight_capacity: 256,
            log_level: FlightLevel::Info,
            trace_jobs: false,
        }
    }
}

/// One phase span of one job, in microseconds since the service epoch.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Which phase the span covers.
    pub phase: JobPhase,
    /// Start offset from the [`ServeObs`] epoch, µs.
    pub start_us: u64,
    /// Span length, µs.
    pub dur_us: u64,
}

/// The retained lifecycle spans of one job.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Stable per-service job sequence number (allocation order).
    pub seq: u64,
    /// The job id from the spec.
    pub id: String,
    /// Worker index that executed the job.
    pub worker: usize,
    /// Workload registry name.
    pub workload: &'static str,
    /// Phase spans, lifecycle order.
    pub spans: Vec<SpanRecord>,
}

/// Per-worker phase histograms for one `(workload, phase)` pair.
type LatencyMap = BTreeMap<(String, &'static str), BTreeMap<usize, Histogram>>;

/// The service-observability hub (see the module docs).
pub struct ServeObs {
    registry: MetricsRegistry,
    flight: FlightRecorder,
    log_level: FlightLevel,
    epoch: Instant,
    trace_jobs: bool,
    cache_checkpoints: Arc<Gauge>,
    slice_us: Arc<AtomicHistogram>,
    protocol_errors: Arc<Counter>,
    latency: Mutex<LatencyMap>,
    traces: Mutex<Vec<JobTrace>>,
    next_seq: AtomicU64,
}

impl ServeObs {
    /// Builds the hub and pre-registers every per-workload/per-status
    /// job counter, so the exposition carries zeros from the first
    /// scrape rather than families appearing as jobs trickle in.
    #[must_use]
    pub fn new(opts: ObsOptions) -> Self {
        let registry = MetricsRegistry::new();
        for workload in Workload::ALL {
            for status in JobStatus::ALL {
                let _ = registry.counter(
                    "ultra_serve_jobs_total",
                    &[("status", status.as_str()), ("workload", workload.name())],
                    "jobs finished, by workload and terminal status",
                );
            }
        }
        let cache_checkpoints = registry.gauge(
            "ultra_serve_cache_checkpoints",
            &[],
            "snapshots currently held by the prefix cache",
        );
        let slice_us = registry.histogram(
            "ultra_serve_slice_us",
            &[],
            "wall-clock microseconds per checkpoint slice",
        );
        let protocol_errors = registry.counter(
            "ultra_serve_protocol_errors_total",
            &[],
            "protocol lines that failed to parse or validate",
        );
        Self {
            registry,
            flight: FlightRecorder::new(opts.flight_capacity),
            log_level: opts.log_level,
            epoch: Instant::now(),
            trace_jobs: opts.trace_jobs,
            cache_checkpoints,
            slice_us,
            protocol_errors,
            latency: Mutex::new(BTreeMap::new()),
            traces: Mutex::new(Vec::new()),
            next_seq: AtomicU64::new(0),
        }
    }

    /// The live registry (for tests and ad-hoc instruments).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Whether per-job lifecycle spans are being retained.
    #[must_use]
    pub fn trace_jobs(&self) -> bool {
        self.trace_jobs
    }

    /// Microseconds since the hub was created.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// `instant`, as microseconds since the hub's epoch (0 if earlier).
    #[must_use]
    pub fn us_since_epoch(&self, instant: Instant) -> u64 {
        instant
            .checked_duration_since(self.epoch)
            .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
    }

    /// Allocates the next stable job sequence number.
    #[must_use]
    pub fn next_job_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a structured event in the flight ring (always) and
    /// emits its NDJSON line to stderr when `level` clears the
    /// configured threshold.
    pub fn log(&self, level: FlightLevel, job: &str, kind: &str, detail: &str) {
        let line = self.flight.record(level, job, kind, detail);
        if level >= self.log_level {
            eprintln!("{line}");
        }
    }

    /// The flight ring's current contents as NDJSON lines, oldest
    /// first.
    #[must_use]
    pub fn dump_flight(&self) -> Vec<String> {
        self.flight.dump()
    }

    /// Dumps the flight ring to stderr for a post-mortem, bracketed by
    /// a `flight-dump` event naming the `reason`.
    pub fn dump_flight_to_stderr(&self, reason: &str) {
        let lines = self.dump_flight();
        self.log(
            FlightLevel::Warn,
            "",
            "flight-dump",
            &format!("{reason}; {} events follow", lines.len()),
        );
        for line in lines {
            eprintln!("{line}");
        }
    }

    /// Handles to the queue instruments, for wiring a
    /// [`crate::queue::JobQueue`].
    #[must_use]
    pub fn queue_meter(&self) -> QueueMeter {
        QueueMeter {
            enqueued: self.registry.counter(
                "ultra_serve_queue_enqueued_total",
                &[],
                "jobs accepted into the priority queue",
            ),
            dequeued: self.registry.counter(
                "ultra_serve_queue_dequeued_total",
                &[],
                "jobs handed to a worker",
            ),
            rejected: self.registry.counter(
                "ultra_serve_queue_rejected_total",
                &[],
                "pushes refused because the queue was closed",
            ),
            depth: self.registry.gauge(
                "ultra_serve_queue_depth",
                &[],
                "jobs currently waiting in the priority queue",
            ),
        }
    }

    /// Handles to the snapshot-cache instruments, for wiring a
    /// [`crate::cache::SnapshotCache`].
    #[must_use]
    pub fn cache_meter(&self) -> CacheMeter {
        CacheMeter {
            hits: self.registry.counter(
                "ultra_serve_cache_hits_total",
                &[],
                "prefix-cache lookups that found a usable checkpoint",
            ),
            misses: self.registry.counter(
                "ultra_serve_cache_misses_total",
                &[],
                "prefix-cache lookups that found nothing",
            ),
            evictions: self.registry.counter(
                "ultra_serve_cache_evictions_total",
                &[],
                "checkpoints evicted by the per-key cap",
            ),
        }
    }

    /// Adds `us` of busy wall-clock to `worker`'s utilization counter.
    pub fn worker_busy(&self, worker: usize, us: u64) {
        self.registry
            .scaled_counter(
                "ultra_serve_worker_busy_seconds_total",
                &[("worker", &worker.to_string())],
                "wall-clock seconds each worker spent running jobs",
                1e6,
            )
            .add(us);
    }

    /// Adds `us` of idle wall-clock to `worker`'s utilization counter.
    pub fn worker_idle(&self, worker: usize, us: u64) {
        self.registry
            .scaled_counter(
                "ultra_serve_worker_idle_seconds_total",
                &[("worker", &worker.to_string())],
                "wall-clock seconds each worker spent waiting for work",
                1e6,
            )
            .add(us);
    }

    /// Counts one protocol-level failure (unparseable or invalid line).
    pub fn protocol_error(&self) {
        self.protocol_errors.incr();
    }

    /// Records `us` spent in `phase` of a `workload` job on `worker`.
    /// Kept per worker so exposition exercises [`Histogram::merge`].
    pub fn observe_phase(&self, workload: &str, phase: JobPhase, worker: usize, us: u64) {
        let mut latency = self.latency.lock().expect("latency map poisoned");
        latency
            .entry((workload.to_owned(), phase.name()))
            .or_default()
            .entry(worker)
            .or_default()
            .record(us);
    }

    /// Records one checkpoint slice's wall-clock microseconds.
    pub fn observe_slice(&self, us: u64) {
        self.slice_us.record(us);
    }

    /// Counts one finished job by workload and terminal status.
    pub fn job_done(&self, workload: &str, status: JobStatus) {
        self.registry
            .counter(
                "ultra_serve_jobs_total",
                &[("status", status.as_str()), ("workload", workload)],
                "jobs finished, by workload and terminal status",
            )
            .incr();
    }

    /// Publishes the prefix cache's current checkpoint count (read at
    /// exposition time by [`crate::Server::render_metrics`]).
    pub fn set_cache_checkpoints(&self, len: usize) {
        self.cache_checkpoints.set(len as i64);
    }

    /// Retains one job's lifecycle spans for the trace export (no-op
    /// unless span tracing is on).
    pub fn record_trace(&self, trace: JobTrace) {
        if self.trace_jobs {
            self.traces.lock().expect("traces poisoned").push(trace);
        }
    }

    /// The full Prometheus text exposition: every registry instrument
    /// plus the per-workload phase-latency summaries (merged across
    /// workers with [`Histogram::merge`]) and the flight-ring gauges.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.registry.render_with(|w| {
            w.family(
                "ultra_serve_flight_events",
                "gauge",
                "events currently held by the flight recorder",
            );
            w.sample("ultra_serve_flight_events", &[], self.flight.len() as f64);
            w.family(
                "ultra_serve_flight_dropped_total",
                "counter",
                "flight events evicted by the ring bound",
            );
            w.sample(
                "ultra_serve_flight_dropped_total",
                &[],
                self.flight.dropped() as f64,
            );
            w.family(
                "ultra_serve_job_latency_seconds",
                "summary",
                "per-phase job latency by workload (quantile 1 is the max)",
            );
            let latency = self.latency.lock().expect("latency map poisoned");
            for ((workload, phase), workers) in latency.iter() {
                let mut merged = Histogram::new();
                for h in workers.values() {
                    merged.merge(h);
                }
                // Divide (don't multiply by 1e-6): `us / 1e6` rounds to
                // the same double as the decimal literal, so 100µs reads
                // back as 0.0001, not 0.00009999….
                let q = |p: f64| merged.percentile(p) as f64 / 1e6;
                w.summary(
                    "ultra_serve_job_latency_seconds",
                    &[("phase", phase), ("workload", workload)],
                    &[
                        ("0.5", q(50.0)),
                        ("0.9", q(90.0)),
                        ("0.99", q(99.0)),
                        ("1", merged.max() as f64 / 1e6),
                    ],
                    merged.sum() as f64 / 1e6,
                    merged.count(),
                );
            }
        })
    }

    /// The registry + latency state as a single JSON document — the
    /// `--metrics-out` artifact (machine-readable counterpart of the
    /// exposition).
    #[must_use]
    pub fn metrics_json(&self) -> String {
        let mut scalars: Vec<String> = self
            .registry
            .scalar_rows()
            .into_iter()
            .map(|(name, labels, _, value)| {
                JsonObject::new()
                    .str("name", &name)
                    .str("labels", &labels)
                    .float("value", value, 6)
                    .render()
            })
            .collect();
        for (name, labels, snap) in self.registry.histogram_rows() {
            scalars.push(
                JsonObject::new()
                    .str("name", &name)
                    .str("labels", &labels)
                    .uint("count", snap.count)
                    .uint("sum", snap.sum)
                    .uint("max", snap.max)
                    .render(),
            );
        }
        let latency = self.latency.lock().expect("latency map poisoned");
        let lat_rows: Vec<String> = latency
            .iter()
            .map(|((workload, phase), workers)| {
                let mut merged = Histogram::new();
                for h in workers.values() {
                    merged.merge(h);
                }
                JsonObject::new()
                    .str("workload", workload)
                    .str("phase", phase)
                    .uint("count", merged.count())
                    .uint("p50_us", merged.percentile(50.0))
                    .uint("p90_us", merged.percentile(90.0))
                    .uint("p99_us", merged.percentile(99.0))
                    .uint("max_us", merged.max())
                    .render()
            })
            .collect();
        drop(latency);
        let flight = JsonObject::new()
            .uint("capacity", self.flight.capacity() as u64)
            .uint("events", self.flight.len() as u64)
            .uint("dropped", self.flight.dropped())
            .render();
        let mut text = JsonObject::new()
            .raw("flight", flight)
            .raw("latency", array_lines(&lat_rows, 4))
            .raw("metrics", array_lines(&scalars, 4))
            .render();
        text.push('\n');
        text
    }

    /// The retained job lifecycle spans as Chrome `trace_event` JSON:
    /// one process per worker, one thread per job (named by job id),
    /// one complete span per phase. Empty array when span tracing was
    /// off or no jobs ran.
    #[must_use]
    pub fn trace_json(&self) -> String {
        let mut traces = self.traces.lock().expect("traces poisoned").clone();
        traces.sort_by_key(|t| t.seq);
        let mut b = ChromeTraceBuilder::new();
        let workers: std::collections::BTreeSet<usize> = traces.iter().map(|t| t.worker).collect();
        for worker in workers {
            b.process_name(worker as u64 + 1, &format!("serve worker {worker}"));
        }
        for t in &traces {
            let pid = t.worker as u64 + 1;
            let tid = t.seq + 1;
            b.thread_name(pid, tid, &format!("job {} [{}]", t.id, t.workload));
            for span in &t.spans {
                b.complete(
                    span.phase.name(),
                    pid,
                    tid,
                    span.start_us as f64,
                    span.dur_us as f64,
                );
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = JobPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "parse",
                "queue-wait",
                "restore",
                "slices",
                "report",
                "total"
            ]
        );
    }

    #[test]
    fn exposition_merges_per_worker_histograms() {
        let obs = ServeObs::new(ObsOptions::default());
        // Two workers, disjoint observations; the summary must see both.
        obs.observe_phase("counter", JobPhase::Total, 0, 100);
        obs.observe_phase("counter", JobPhase::Total, 0, 100);
        obs.observe_phase("counter", JobPhase::Total, 1, 100_000);
        let text = obs.render_prometheus();
        assert!(
            text.contains(
                "ultra_serve_job_latency_seconds_count{phase=\"total\",workload=\"counter\"} 3"
            ),
            "{text}"
        );
        // p50 of {100, 100, 100000} is 100 µs = 0.0001 s.
        assert!(
            text.contains(
                "ultra_serve_job_latency_seconds{phase=\"total\",workload=\"counter\",quantile=\"0.5\"} 0.0001"
            ),
            "{text}"
        );
        // Pre-registered job counters are present at zero.
        assert!(
            text.contains("ultra_serve_jobs_total{status=\"completed\",workload=\"serving\"} 0")
        );
    }

    #[test]
    fn metrics_json_is_populated_and_single_root() {
        let obs = ServeObs::new(ObsOptions::default());
        obs.observe_phase("ticket", JobPhase::Slices, 0, 42);
        obs.observe_slice(42);
        obs.job_done("ticket", JobStatus::Completed);
        let text = obs.metrics_json();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"ultra_serve_jobs_total\""));
        assert!(text.contains("\"ultra_serve_slice_us\""));
        assert!(text.contains("\"phase\": \"slices\""));
    }

    #[test]
    fn trace_json_groups_jobs_under_worker_processes() {
        let obs = ServeObs::new(ObsOptions {
            trace_jobs: true,
            ..ObsOptions::default()
        });
        obs.record_trace(JobTrace {
            seq: obs.next_job_seq(),
            id: "j1".into(),
            worker: 2,
            workload: "counter",
            spans: vec![
                SpanRecord {
                    phase: JobPhase::Total,
                    start_us: 0,
                    dur_us: 50,
                },
                SpanRecord {
                    phase: JobPhase::Slices,
                    start_us: 5,
                    dur_us: 40,
                },
            ],
        });
        let text = obs.trace_json();
        assert!(text.contains("\"serve worker 2\""));
        assert!(text.contains("\"job j1 [counter]\""));
        assert!(text.contains("\"name\": \"slices\""));
        assert!(text.contains("\"ph\": \"X\""));
    }

    #[test]
    fn tracing_off_drops_spans() {
        let obs = ServeObs::new(ObsOptions::default());
        obs.record_trace(JobTrace {
            seq: 0,
            id: "j".into(),
            worker: 0,
            workload: "counter",
            spans: Vec::new(),
        });
        assert!(!obs.trace_json().contains("thread_name"));
    }
}

//! # ultra-serve — the simulator as a resident service
//!
//! A multi-threaded job server over the `ultracomputer` machine: clients
//! submit simulation requests (machine shape + workload + fault plan +
//! seed + cycle budget) as newline-delimited JSON — from a batch file or
//! over a TCP socket — and receive one JSON result line per job,
//! rendered with the same hand-rolled serializer the bench harness uses.
//!
//! The server owns three pieces of machinery:
//!
//! * a bounded **priority queue** ([`queue::JobQueue`]) feeding a worker
//!   pool, with per-job cancellation and wall-clock timeouts polled at
//!   checkpoint boundaries;
//! * a **snapshot prefix cache** ([`cache::SnapshotCache`]): every job
//!   checkpoints its machine at a configurable cadence via
//!   [`Machine::snapshot`], and a later job whose
//!   [`spec::JobSpec::prefix_key`] matches restores the latest
//!   checkpoint at or below its own cycle target instead of re-simulating
//!   the shared prefix — bit-identical by the core snapshot contract;
//! * the **workload registry** ([`spec::Workload`]): deterministic
//!   programs parameterized by `(pes, rounds)`;
//! * an optional **observability hub** ([`obs::ServeObs`], enabled via
//!   [`Server::with_obs`]): a live metrics registry with Prometheus
//!   exposition, per-phase latency histograms, per-job Perfetto spans
//!   and a bounded flight recorder of structured NDJSON events.
//!   Observation never feeds back into execution, so result lines are
//!   byte-identical with observability on or off.
//!
//! Results carry a parity digest (FNV-1a of the machine's canonical
//! parity string), so "served run == one-shot run" is a one-field
//! comparison; the integration tests hold the whole result line to that
//! standard.

pub mod cache;
pub mod json;
pub mod obs;
pub mod queue;
pub mod spec;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ultra_bench::json::{heatmap_json, JsonObject};
use ultra_obs::flight::FlightLevel;
use ultra_sim::wire::fnv1a;
use ultracomputer::machine::Machine;
use ultracomputer::{EngineTuning, MachineReport};

use crate::cache::SnapshotCache;
use crate::obs::{JobPhase, JobTrace, ObsOptions, ServeObs, SpanRecord};
use crate::queue::JobQueue;
use crate::spec::JobSpec;

/// Telemetry ring capacity (windows) for jobs that request telemetry.
const TELEMETRY_CAPACITY: usize = 4096;

/// How one job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The workload ran to completion within the cycle budget.
    Completed,
    /// The cycle budget elapsed first; the final checkpoint stays in the
    /// prefix cache for a longer-budget job to resume.
    BudgetExhausted,
    /// The job was cancelled; partial progress is reported.
    Cancelled,
    /// The wall-clock timeout fired between checkpoints.
    Timeout,
    /// The line never became a job: parse or validation failure. Never
    /// produced by [`Server::run_job`]; it exists so protocol errors
    /// carry a status through [`JobOutcome`] like every other terminal
    /// state.
    Error,
}

impl JobStatus {
    /// Every terminal status (used to pre-register per-status metrics).
    pub const ALL: [JobStatus; 5] = [
        JobStatus::Completed,
        JobStatus::BudgetExhausted,
        JobStatus::Cancelled,
        JobStatus::Timeout,
        JobStatus::Error,
    ];

    /// The protocol string for this status.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Completed => "completed",
            Self::BudgetExhausted => "budget-exhausted",
            Self::Cancelled => "cancelled",
            Self::Timeout => "timeout",
            Self::Error => "error",
        }
    }

    /// Whether this outcome should fail a batch run: protocol errors
    /// and timeouts are failures; cancellation and budget exhaustion
    /// are requested behavior.
    #[must_use]
    pub fn is_failure(self) -> bool {
        matches!(self, Self::Timeout | Self::Error)
    }
}

/// One finished job: the NDJSON result line plus server-side log lines
/// (cache hits, rejections) that belong on stderr, not in the stream.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's id, echoed from the spec.
    pub id: String,
    /// How the job ended (mirrors the `status` field of `line`).
    pub status: JobStatus,
    /// The single-line JSON result.
    pub line: String,
    /// Human-readable log lines about how the job executed.
    pub log: Vec<String>,
}

/// Execution context for one job: which worker runs it and when it was
/// enqueued, for queue-wait accounting and span attribution. Direct
/// calls outside any worker pool use [`JobCtx::detached`].
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// Worker index executing the job (0 for detached runs).
    pub worker: usize,
    /// When the job entered the queue, if it was queued.
    pub enqueued_at: Option<Instant>,
}

impl JobCtx {
    /// A context for a job run outside any queue or worker pool.
    #[must_use]
    pub fn detached() -> Self {
        Self {
            worker: 0,
            enqueued_at: None,
        }
    }
}

/// Wall-clock microseconds since `t` (saturating).
fn elapsed_us(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The resident service: cache + cancellation registry + optional
/// observability hub. One instance outlives many batches; the prefix
/// cache persists across them.
#[derive(Default)]
pub struct Server {
    cache: SnapshotCache,
    cancels: Mutex<HashMap<String, Arc<AtomicBool>>>,
    obs: Option<Arc<ServeObs>>,
}

impl Server {
    /// A fresh server with an empty cache and observability off.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh server with the observability hub enabled: metrics,
    /// flight recorder, and (per `opts`) job lifecycle spans.
    #[must_use]
    pub fn with_obs(opts: ObsOptions) -> Self {
        let obs = Arc::new(ServeObs::new(opts));
        Self {
            cache: SnapshotCache::with_meter(obs.cache_meter()),
            cancels: Mutex::default(),
            obs: Some(obs),
        }
    }

    /// The observability hub, when enabled.
    #[must_use]
    pub fn obs(&self) -> Option<&Arc<ServeObs>> {
        self.obs.as_ref()
    }

    /// The Prometheus text exposition (cache gauge refreshed first), or
    /// `None` with observability off.
    #[must_use]
    pub fn render_metrics(&self) -> Option<String> {
        let obs = self.obs.as_ref()?;
        obs.set_cache_checkpoints(self.cache.len());
        Some(obs.render_prometheus())
    }

    /// The metrics state as a JSON document (the `--metrics-out`
    /// artifact), or `None` with observability off.
    #[must_use]
    pub fn metrics_json(&self) -> Option<String> {
        let obs = self.obs.as_ref()?;
        obs.set_cache_checkpoints(self.cache.len());
        Some(obs.metrics_json())
    }

    /// The retained job lifecycle spans as Chrome `trace_event` JSON,
    /// or `None` with observability off.
    #[must_use]
    pub fn trace_json(&self) -> Option<String> {
        Some(self.obs.as_ref()?.trace_json())
    }

    /// The snapshot prefix cache (for stats and tests).
    #[must_use]
    pub fn cache(&self) -> &SnapshotCache {
        &self.cache
    }

    /// Requests cancellation of job `id` — queued or running. A job
    /// observes the flag at its next checkpoint boundary.
    pub fn cancel(&self, id: &str) {
        self.cancel_flag(id).store(true, Ordering::Relaxed);
    }

    fn cancel_flag(&self, id: &str) -> Arc<AtomicBool> {
        Arc::clone(
            self.cancels
                .lock()
                .expect("cancel registry poisoned")
                .entry(id.to_owned())
                .or_default(),
        )
    }

    /// Executes one job to its terminal status, synchronously.
    ///
    /// The execution loop is slice-based: `run_for(checkpoint_every)`
    /// until the workload completes or the budget is spent, depositing a
    /// snapshot in the prefix cache after every slice (checkpoint-on-
    /// budget comes for free: the final checkpoint of a budget-exhausted
    /// job *is* the resume point for the next, longer job). Cancellation
    /// and timeout are polled between slices.
    pub fn run_job(&self, spec: &JobSpec) -> JobOutcome {
        self.run_job_ctx(spec, JobCtx::detached())
    }

    /// [`Server::run_job`] with an explicit execution context, so
    /// worker pools can attribute queue wait, busy time and lifecycle
    /// spans. All observability is recorded on the side — the machine,
    /// slice loop and result line are untouched by it.
    pub fn run_job_ctx(&self, spec: &JobSpec, ctx: JobCtx) -> JobOutcome {
        let started = Instant::now();
        let seq = self.obs.as_ref().map_or(0, |o| o.next_job_seq());
        let queue_wait_us = ctx.enqueued_at.map(|t| {
            started
                .checked_duration_since(t)
                .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        });
        if let Some(obs) = &self.obs {
            obs.log(
                FlightLevel::Debug,
                &spec.id,
                "start",
                &format!(
                    "workload={} worker={} queue_wait_us={}",
                    spec.workload.name(),
                    ctx.worker,
                    queue_wait_us.unwrap_or(0)
                ),
            );
        }
        let cancel = self.cancel_flag(&spec.id);
        let key = spec.prefix_key();
        let mut log = Vec::new();
        let flight = |level: FlightLevel, kind: &str, detail: &str| {
            if let Some(obs) = &self.obs {
                obs.log(level, &spec.id, kind, detail);
            }
        };

        // Resume from the best cached prefix, unless this job wants
        // telemetry (a snapshot carries no telemetry history, so a
        // telemetry series must start from cycle 0 to be complete).
        let restore_started = Instant::now();
        let mut machine = None;
        if spec.telemetry_window.is_none() {
            if let Some((cycle, snap)) = self.cache.best_at_or_below(&key, spec.cycles) {
                let tuning = EngineTuning {
                    threads: Some(spec.threads),
                    ..EngineTuning::default()
                };
                match Machine::restore_tuned(&snap, tuning) {
                    Ok(m) => {
                        let msg =
                            format!("cache hit: job `{}` resumed from cycle {cycle}", spec.id);
                        flight(FlightLevel::Info, "cache", &msg);
                        log.push(msg);
                        machine = Some(m);
                    }
                    Err(e) => {
                        let msg = format!(
                            "cache snapshot for job `{}` rejected ({e}); running from cycle 0",
                            spec.id
                        );
                        flight(FlightLevel::Warn, "cache", &msg);
                        log.push(msg);
                    }
                }
            }
        }
        let mut m = machine.unwrap_or_else(|| spec.machine());
        if let Some(window) = spec.telemetry_window {
            m.enable_telemetry(window, TELEMETRY_CAPACITY);
        }
        let restore_us = elapsed_us(restore_started);

        let slices_started = Instant::now();
        let mut status = JobStatus::BudgetExhausted;
        loop {
            if cancel.load(Ordering::Relaxed) {
                status = JobStatus::Cancelled;
                break;
            }
            if let Some(ms) = spec.timeout_ms {
                if started.elapsed() >= Duration::from_millis(ms) {
                    status = JobStatus::Timeout;
                    break;
                }
            }
            let remaining = spec.cycles.saturating_sub(m.now());
            if remaining == 0 {
                break;
            }
            let slice_started = Instant::now();
            let outcome = m.run_for(remaining.min(spec.checkpoint_every));
            self.cache.insert(&key, m.now(), m.snapshot());
            if let Some(obs) = &self.obs {
                obs.observe_slice(elapsed_us(slice_started));
            }
            if outcome.completed {
                status = JobStatus::Completed;
                break;
            }
        }
        let slices_us = elapsed_us(slices_started);

        let report_started = Instant::now();
        let line = render_result(spec, &m, status);
        let report_us = elapsed_us(report_started);

        if let Some(obs) = &self.obs {
            let workload = spec.workload.name();
            let total_us = queue_wait_us.unwrap_or(0) + elapsed_us(started);
            if let Some(q) = queue_wait_us {
                obs.observe_phase(workload, JobPhase::QueueWait, ctx.worker, q);
            }
            obs.observe_phase(workload, JobPhase::Restore, ctx.worker, restore_us);
            obs.observe_phase(workload, JobPhase::Slices, ctx.worker, slices_us);
            obs.observe_phase(workload, JobPhase::Report, ctx.worker, report_us);
            obs.observe_phase(workload, JobPhase::Total, ctx.worker, total_us);
            obs.job_done(workload, status);
            let level = match status {
                JobStatus::Completed | JobStatus::BudgetExhausted => FlightLevel::Info,
                _ => FlightLevel::Warn,
            };
            obs.log(
                level,
                &spec.id,
                "result",
                &format!(
                    "status={} cycles={} total_us={total_us}",
                    status.as_str(),
                    m.now()
                ),
            );
            if status == JobStatus::Timeout {
                obs.dump_flight_to_stderr(&format!("job `{}` timed out", spec.id));
            }
            if obs.trace_jobs() {
                let mut spans = vec![SpanRecord {
                    phase: JobPhase::Total,
                    start_us: obs.us_since_epoch(ctx.enqueued_at.unwrap_or(started)),
                    dur_us: total_us,
                }];
                if let (Some(enqueued_at), Some(q)) = (ctx.enqueued_at, queue_wait_us) {
                    spans.push(SpanRecord {
                        phase: JobPhase::QueueWait,
                        start_us: obs.us_since_epoch(enqueued_at),
                        dur_us: q,
                    });
                }
                for (phase, at, dur_us) in [
                    (JobPhase::Restore, restore_started, restore_us),
                    (JobPhase::Slices, slices_started, slices_us),
                    (JobPhase::Report, report_started, report_us),
                ] {
                    spans.push(SpanRecord {
                        phase,
                        start_us: obs.us_since_epoch(at),
                        dur_us,
                    });
                }
                obs.record_trace(JobTrace {
                    seq,
                    id: spec.id.clone(),
                    worker: ctx.worker,
                    workload,
                    spans,
                });
            }
        }

        JobOutcome {
            id: spec.id.clone(),
            status,
            line,
            log,
        }
    }

    /// Runs a batch: enqueues every spec into a bounded priority queue,
    /// fans out over `workers` threads, and streams each [`JobOutcome`]
    /// to `on_result` in completion order. Returns the number of jobs
    /// executed.
    pub fn run_batch<F: FnMut(JobOutcome)>(
        &self,
        specs: Vec<JobSpec>,
        workers: usize,
        queue_capacity: usize,
        mut on_result: F,
    ) -> usize {
        let queue = JobQueue::with_meter(
            queue_capacity.max(1),
            self.obs.as_ref().map(|o| o.queue_meter()),
        );
        let (tx, rx) = mpsc::channel();
        let mut done = 0;
        thread::scope(|s| {
            for worker in 0..workers.max(1) {
                let tx = tx.clone();
                let queue = &queue;
                s.spawn(move || {
                    let mut idle_since = Instant::now();
                    while let Some((enqueued_at, spec)) = queue.pop() {
                        let spec: JobSpec = spec;
                        let busy_since = Instant::now();
                        if let Some(obs) = &self.obs {
                            obs.worker_idle(worker, elapsed_us(idle_since));
                        }
                        let ctx = JobCtx {
                            worker,
                            enqueued_at: Some(enqueued_at),
                        };
                        let outcome = self.run_job_ctx(&spec, ctx);
                        if let Some(obs) = &self.obs {
                            obs.worker_busy(worker, elapsed_us(busy_since));
                        }
                        idle_since = Instant::now();
                        if tx.send(outcome).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for spec in specs {
                let priority = spec.priority;
                if !queue.push(priority, (Instant::now(), spec)) {
                    break;
                }
            }
            queue.close();
            for outcome in rx {
                done += 1;
                on_result(outcome);
            }
        });
        done
    }
}

/// Renders one job's NDJSON result line.
///
/// Deliberately deterministic: no wall-clock fields and no cache or
/// engine provenance, so a cached resume renders byte-identically to a
/// fresh one-shot run of the same spec — the service's core correctness
/// claim, asserted by the integration tests. (That rules out
/// `fast_forwarded` too: how many idle cycles were *jumped* depends on
/// where checkpoint slices cut a jump, an execution detail the parity
/// string also excludes.) The `parity` field is the FNV-1a digest of the
/// machine's canonical parity string.
fn render_result(spec: &JobSpec, m: &Machine, status: JobStatus) -> String {
    let report = MachineReport::from_machine(m);
    let digest = fnv1a(report.parity_string().as_bytes());
    let mut obj = JsonObject::new()
        .str("id", &spec.id)
        .str("status", status.as_str())
        .str("workload", spec.workload.name())
        .uint("pes", spec.pes as u64)
        .uint("seed", spec.seed)
        .uint("cycles", m.now())
        .uint("injected", report.net.injected_requests.get())
        .uint("combines", report.net.combines.get())
        .uint("drops", report.net.drops.get())
        .uint("retries", report.faults.retries)
        .int("shared0", m.read_shared(0))
        .str("parity", &format!("{digest:016x}"));
    // A completed serving job reports its end-to-end latency tail; a
    // truncated one cannot (some requests never stamped a completion).
    if spec.workload == crate::spec::Workload::Serving && status == JobStatus::Completed {
        let lat = spec.serving_config().latencies(m);
        obj = obj
            .uint("latency_p50", lat.percentile(50.0))
            .uint("latency_p90", lat.percentile(90.0))
            .uint("latency_p99", lat.percentile(99.0))
            .uint("latency_max", lat.max());
    }
    if spec.telemetry_window.is_some() {
        obj = obj.raw("telemetry", telemetry_json(m));
    }
    obj.render()
}

/// Renders a protocol-level failure (parse error, invalid spec) as a
/// result line, so batch output stays one line per input job.
#[must_use]
pub fn error_line(id: &str, message: &str) -> String {
    JsonObject::new()
        .str("id", id)
        .str("status", "error")
        .str("error", message)
        .render()
}

/// Renders the machine's telemetry series (and heatmap) as a single-line
/// JSON object — the NDJSON variant of the bench harness's
/// `--metrics-out` document.
fn telemetry_json(m: &Machine) -> String {
    let series = m.telemetry();
    let windows: Vec<String> = series
        .samples()
        .map(|s| {
            let mut row = JsonObject::new().uint("start", s.start).uint("len", s.len);
            for (key, value) in s.counters.fields() {
                row = row.uint(key, value);
            }
            for (key, value) in s.gauges.fields() {
                row = row.uint(key, value);
            }
            row.render()
        })
        .collect();
    let mut totals = JsonObject::new();
    for (key, value) in series.totals().fields() {
        totals = totals.uint(key, value);
    }
    let mut obj = JsonObject::new()
        .uint("window", series.window())
        .uint("dropped_windows", series.dropped())
        .raw("windows", format!("[{}]", windows.join(", ")))
        .raw("totals", totals.render());
    if let Some(heatmap) = m.heatmap() {
        obj = obj.raw("heatmap", heatmap_json(&heatmap));
    }
    obj.render()
}

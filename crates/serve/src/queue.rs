//! A bounded, blocking priority queue for job dispatch.
//!
//! Higher priority pops first; jobs of equal priority pop in submission
//! order (FIFO). The bound applies backpressure to submitters —
//! [`JobQueue::push`] blocks while the queue is full — so a flood of
//! requests cannot balloon memory; a closed queue wakes everyone and
//! drains without accepting more work.

use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};

use ultra_obs::metrics::{Counter, Gauge};

/// Live instruments a queue reports into (registered by
/// `crate::obs::ServeObs::queue_meter`). All handles are lock-free
/// atomics, so metering adds no contention to the queue's own lock.
#[derive(Clone)]
pub struct QueueMeter {
    /// Jobs accepted by [`JobQueue::push`].
    pub enqueued: Arc<Counter>,
    /// Jobs handed out by [`JobQueue::pop`].
    pub dequeued: Arc<Counter>,
    /// Pushes refused because the queue was closed.
    pub rejected: Arc<Counter>,
    /// Jobs currently waiting (enqueued minus dequeued).
    pub depth: Arc<Gauge>,
}

/// One queued item: max-heap on priority, then earliest sequence.
struct Entry<T> {
    priority: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: bigger priority wins, and among
        // equals the *smaller* sequence number (earlier submission) must
        // surface first, so the sequence comparison is reversed.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// The bounded, blocking priority queue (see the module docs).
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
    meter: Option<QueueMeter>,
}

impl<T> JobQueue<T> {
    /// An empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_meter(capacity, None)
    }

    /// An empty queue that reports depth and enqueue/dequeue/reject
    /// counts into `meter` (when given).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_meter(capacity: usize, meter: Option<QueueMeter>) -> Self {
        assert!(capacity >= 1, "a zero-capacity queue can never accept work");
        Self {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            meter,
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the queue was closed.
    pub fn push(&self, priority: i64, item: T) -> bool {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.heap.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            drop(state);
            if let Some(meter) = &self.meter {
                meter.rejected.incr();
            }
            return false;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Entry {
            priority,
            seq,
            item,
        });
        self.not_empty.notify_one();
        drop(state);
        if let Some(meter) = &self.meter {
            meter.enqueued.incr();
            meter.depth.add(1);
        }
        true
    }

    /// Dequeues the highest-priority item, blocking while the queue is
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(entry) = state.heap.pop() {
                self.not_full.notify_one();
                drop(state);
                if let Some(meter) = &self.meter {
                    meter.dequeued.incr();
                    meter.depth.sub(1);
                }
                return Some(entry.item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// every blocked thread wakes.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").heap.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(16);
        q.push(0, "low-a");
        q.push(5, "high-a");
        q.push(0, "low-b");
        q.push(5, "high-b");
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["high-a", "high-b", "low-a", "low-b"]);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_push_blocks_until_a_pop_frees_space() {
        let q = Arc::new(JobQueue::new(1));
        q.push(0, 1u32);
        let pushed = Arc::new(AtomicBool::new(false));
        let handle = {
            let (q, pushed) = (Arc::clone(&q), Arc::clone(&pushed));
            thread::spawn(move || {
                assert!(q.push(0, 2));
                pushed.store(true, Ordering::SeqCst);
            })
        };
        thread::sleep(Duration::from_millis(30));
        assert!(
            !pushed.load(Ordering::SeqCst),
            "push must block while the queue is full"
        );
        assert_eq!(q.pop(), Some(1));
        handle.join().unwrap();
        assert!(pushed.load(Ordering::SeqCst));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn meter_tracks_depth_and_flow() {
        let meter = QueueMeter {
            enqueued: Arc::new(Counter::new()),
            dequeued: Arc::new(Counter::new()),
            rejected: Arc::new(Counter::new()),
            depth: Arc::new(Gauge::new()),
        };
        let q = JobQueue::with_meter(8, Some(meter.clone()));
        q.push(0, 1u32);
        q.push(0, 2);
        assert_eq!(meter.enqueued.get(), 2);
        assert_eq!(meter.depth.get(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(meter.dequeued.get(), 1);
        assert_eq!(meter.depth.get(), 1);
        q.close();
        assert!(!q.push(0, 3));
        assert_eq!(meter.rejected.get(), 1);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(meter.depth.get(), 0);
    }

    #[test]
    fn close_wakes_blocked_consumers_and_rejects_producers() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let handle = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(handle.join().unwrap(), None, "blocked pop observes close");
        assert!(!q.push(0, 7), "push after close is refused");
    }
}

//! The snapshot prefix cache.
//!
//! Sweep batches repeat a prefix: many jobs share a machine shape, seed
//! and workload and differ only in how far (or with what telemetry) they
//! run. Each executing job deposits its checkpoints here keyed by
//! [`crate::spec::JobSpec::prefix_key`]; a later job with the same key
//! restores the latest checkpoint at or below its own cycle target and
//! simulates only the suffix. Snapshot restore is bit-identical to
//! having run the prefix (the core snapshot contract), so cached resumes
//! change wall-clock only, never results.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ultra_obs::metrics::Counter as MetricCounter;
use ultra_sim::Cycle;

/// Checkpoints kept per prefix key; the earliest is evicted first (late
/// checkpoints cover more of any future job's prefix).
const PER_KEY_CAP: usize = 8;

/// Live instruments the cache reports into (registered by
/// `crate::obs::ServeObs::cache_meter`). The cache keeps its own local
/// hit/miss counts regardless; the meter mirrors them into the metrics
/// registry.
#[derive(Clone)]
pub struct CacheMeter {
    /// Lookups that found a usable checkpoint.
    pub hits: Arc<MetricCounter>,
    /// Lookups that found nothing.
    pub misses: Arc<MetricCounter>,
    /// Checkpoints evicted by the per-key cap.
    pub evictions: Arc<MetricCounter>,
}

/// Checkpoints of one prefix, indexed by the cycle they were taken at.
type Checkpoints = BTreeMap<Cycle, Arc<Vec<u8>>>;

/// Shared snapshot store (see the module docs). Cheap to clone handles
/// via [`Arc`]; interior mutability throughout.
#[derive(Default)]
pub struct SnapshotCache {
    by_key: Mutex<HashMap<String, Checkpoints>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    meter: Option<CacheMeter>,
}

impl SnapshotCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that mirrors hit/miss/eviction counts into
    /// `meter`.
    #[must_use]
    pub fn with_meter(meter: CacheMeter) -> Self {
        Self {
            meter: Some(meter),
            ..Self::default()
        }
    }

    /// Deposits a checkpoint of `key` taken at `cycle`.
    pub fn insert(&self, key: &str, cycle: Cycle, snapshot: Vec<u8>) {
        let mut evicted = 0;
        {
            let mut map = self.by_key.lock().expect("cache poisoned");
            let slots = map.entry(key.to_owned()).or_default();
            slots.insert(cycle, Arc::new(snapshot));
            while slots.len() > PER_KEY_CAP {
                let earliest = *slots.keys().next().expect("non-empty");
                slots.remove(&earliest);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            if let Some(meter) = &self.meter {
                meter.evictions.add(evicted);
            }
        }
    }

    /// The latest checkpoint of `key` at or below `cycle`, if any.
    /// Counts a hit or a miss.
    #[must_use]
    pub fn best_at_or_below(&self, key: &str, cycle: Cycle) -> Option<(Cycle, Arc<Vec<u8>>)> {
        let map = self.by_key.lock().expect("cache poisoned");
        let found = map.get(key).and_then(|slots| {
            slots
                .range(..=cycle)
                .next_back()
                .map(|(&at, snap)| (at, Arc::clone(snap)))
        });
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(meter) = &self.meter {
                    meter.hits.incr();
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(meter) = &self.meter {
                    meter.misses.incr();
                }
            }
        }
        found
    }

    /// Lookups that found a usable checkpoint.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Checkpoints evicted by the per-key cap since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total checkpoints currently held, across all keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_key
            .lock()
            .expect("cache poisoned")
            .values()
            .map(BTreeMap::len)
            .sum()
    }

    /// Whether the cache holds no checkpoints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_the_latest_checkpoint_at_or_below_the_target() {
        let cache = SnapshotCache::new();
        cache.insert("k", 100, vec![1]);
        cache.insert("k", 300, vec![3]);
        cache.insert("k", 200, vec![2]);
        let (at, snap) = cache.best_at_or_below("k", 250).unwrap();
        assert_eq!((at, snap[0]), (200, 2));
        let (at, _) = cache.best_at_or_below("k", 300).unwrap();
        assert_eq!(at, 300, "exact cycle counts as at-or-below");
        assert!(cache.best_at_or_below("k", 50).is_none());
        assert!(cache.best_at_or_below("other", 1000).is_none());
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn evicts_earliest_checkpoints_beyond_the_per_key_cap() {
        let cache = SnapshotCache::new();
        for cycle in 1..=(PER_KEY_CAP as Cycle + 3) {
            cache.insert("k", cycle * 10, vec![cycle as u8]);
        }
        assert_eq!(cache.len(), PER_KEY_CAP);
        assert!(
            cache.best_at_or_below("k", 30).is_none(),
            "earliest checkpoints were evicted"
        );
        let (at, _) = cache
            .best_at_or_below("k", Cycle::MAX)
            .expect("latest survives");
        assert_eq!(at, (PER_KEY_CAP as Cycle + 3) * 10);
    }

    #[test]
    fn evictions_are_counted_and_mirrored_into_the_meter() {
        let meter = CacheMeter {
            hits: Arc::new(MetricCounter::new()),
            misses: Arc::new(MetricCounter::new()),
            evictions: Arc::new(MetricCounter::new()),
        };
        let cache = SnapshotCache::with_meter(meter.clone());
        for cycle in 1..=(PER_KEY_CAP as Cycle + 2) {
            cache.insert("k", cycle * 10, vec![cycle as u8]);
        }
        assert_eq!(cache.evictions(), 2);
        assert_eq!(meter.evictions.get(), 2);
        let _ = cache.best_at_or_below("k", Cycle::MAX);
        let _ = cache.best_at_or_below("other", 1);
        assert_eq!((meter.hits.get(), meter.misses.get()), (1, 1));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn keys_are_fully_independent() {
        let cache = SnapshotCache::new();
        cache.insert("a", 10, vec![1]);
        cache.insert("b", 10, vec![2]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.best_at_or_below("a", 10).unwrap().1[0], 1);
        assert_eq!(cache.best_at_or_below("b", 10).unwrap().1[0], 2);
    }
}

//! Throughput of the *unbuffered* (kill-on-conflict) banyan — the design
//! the paper rejects in §3.1.2: "The alternative adopted by Burroughs of
//! killing one of the two conflicting requests also limits bandwidth to
//! O(N/log N), see Kruskal and Snir."
//!
//! The classic analysis (Patel; Kruskal & Snir): if each input of a `k×k`
//! crossbar switch carries a request with probability `p`, independently
//! and uniformly routed, the probability that a given *output* is busy is
//!
//! `q = 1 − (1 − p/k)^k`
//!
//! Iterating through `D = log_k N` stages gives the accepted rate per
//! line; the asymptotic solution decays like `2k / ((k−1)·D)` — per-PE
//! bandwidth shrinking as `1 / log N`, hence aggregate `O(N / log N)`.
//! The event-level counterpart is [`crate::queueing`]'s simulated
//! `DropOnConflict` policy (experiment E8).

/// Analytic model of one unbuffered `k×k`-switch banyan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnbufferedModel {
    /// Number of PEs.
    pub n: usize,
    /// Switch arity.
    pub k: usize,
}

impl UnbufferedModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of `k` and `k >= 2`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        let _ = ultra_sim::ids::digits::count(n, k);
        Self { n, k }
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> u32 {
        ultra_sim::ids::digits::count(self.n, self.k)
    }

    /// One stage of the recurrence: given per-input request probability
    /// `p`, the per-output probability after conflict kills.
    #[must_use]
    pub fn stage_accept(&self, p: f64) -> f64 {
        let k = self.k as f64;
        1.0 - (1.0 - p / k).powi(self.k as i32)
    }

    /// Fraction of offered requests that survive all stages when every PE
    /// offers with probability `p` per cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    #[must_use]
    pub fn accepted_rate(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let mut rate = p;
        for _ in 0..self.stages() {
            rate = self.stage_accept(rate);
        }
        rate
    }

    /// Aggregate accepted bandwidth in messages per cycle.
    #[must_use]
    pub fn aggregate_bandwidth(&self, p: f64) -> f64 {
        self.n as f64 * self.accepted_rate(p)
    }

    /// The large-`D` asymptote of the saturated (p = 1) per-PE rate:
    /// `2k / ((k−1)·D)`.
    #[must_use]
    pub fn asymptotic_rate(&self) -> f64 {
        let k = self.k as f64;
        2.0 * k / ((k - 1.0) * f64::from(self.stages()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_offered_zero_accepted() {
        let m = UnbufferedModel::new(256, 2);
        assert_eq!(m.accepted_rate(0.0), 0.0);
    }

    #[test]
    fn acceptance_never_exceeds_offer() {
        let m = UnbufferedModel::new(1024, 2);
        for i in 1..=10 {
            let p = i as f64 / 10.0;
            let a = m.accepted_rate(p);
            assert!(a > 0.0 && a <= p, "p={p} a={a}");
        }
    }

    #[test]
    fn per_pe_rate_decays_with_machine_size() {
        // The O(N / log N) ceiling: saturated per-PE throughput falls as
        // stages are added.
        let rates: Vec<f64> = [16usize, 64, 256, 1024, 4096]
            .iter()
            .map(|&n| UnbufferedModel::new(n, 2).accepted_rate(1.0))
            .collect();
        for w in rates.windows(2) {
            assert!(w[1] < w[0], "{rates:?}");
        }
        // ... while aggregate bandwidth still grows (N/log N is increasing).
        let aggs: Vec<f64> = [16usize, 64, 256, 1024, 4096]
            .iter()
            .map(|&n| UnbufferedModel::new(n, 2).aggregate_bandwidth(1.0))
            .collect();
        for w in aggs.windows(2) {
            assert!(w[1] > w[0], "{aggs:?}");
        }
    }

    #[test]
    fn recurrence_approaches_known_asymptote() {
        // For large D the saturated rate converges toward 2k/((k-1)·D)
        // (within ~30% already at D = 16).
        let m = UnbufferedModel::new(1 << 16, 2);
        let exact = m.accepted_rate(1.0);
        let asym = m.asymptotic_rate();
        let ratio = exact / asym;
        assert!(
            (0.7..1.3).contains(&ratio),
            "exact {exact:.4} vs asymptote {asym:.4}"
        );
    }

    #[test]
    fn wider_switches_lose_less() {
        // Fewer stages (larger k) keep more of the offered traffic.
        let k2 = UnbufferedModel::new(4096, 2).accepted_rate(0.5);
        let k4 = UnbufferedModel::new(4096, 4).accepted_rate(0.5);
        let k8 = UnbufferedModel::new(4096, 8).accepted_rate(0.5);
        assert!(k4 > k2);
        assert!(k8 > k4);
    }

    #[test]
    fn analytic_decay_matches_simulated_drop_policy_shape() {
        // E8's simulation showed per-PE throughputs of ~0.229 (16 PEs)
        // and ~0.189 (1024 PEs) at p = 0.25 (loads). The analytic
        // acceptance ratio over the same span must show comparable decay.
        let a16 = UnbufferedModel::new(16, 2).accepted_rate(0.25);
        let a1024 = UnbufferedModel::new(1024, 2).accepted_rate(0.25);
        let analytic_ratio = a1024 / a16;
        let simulated_ratio = 0.189 / 0.229;
        assert!(
            (analytic_ratio - simulated_ratio).abs() < 0.12,
            "analytic {analytic_ratio:.3} vs simulated {simulated_ratio:.3}"
        );
    }
}

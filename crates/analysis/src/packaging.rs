//! The §3.6 machine-packaging model.
//!
//! The paper estimates a 1990-technology build: "four chips for each PE-PNI
//! pair, nine chips for each MM-MNI pair … and two chips for each
//! 4-input-4-output switch. Thus, a 4096 processor machine would require
//! roughly 65,000 chips … only 19% of the chips are used for the network."
//! The board-level partition (Figures 5–6) splits the network between
//! "PE boards" (first half of the stages) and "MM boards" (last half):
//! "a 4K PE machine built from two chip 4x4 switches would need 64 PE
//! boards and 64 MM boards, with each PE board containing 352 chips and
//! each MM board containing 672 chips."
//!
//! [`PackagingModel::report`] reproduces every one of those numbers.

/// Per-component chip counts (§3.6's 1990 estimates by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackagingModel {
    /// Number of PEs (= number of MMs); must be a power of 4 for the
    /// two-chip 4×4 switch build.
    pub pes: usize,
    /// Chips per PE-PNI pair.
    pub chips_per_pe: usize,
    /// Chips per MM-MNI pair (1 MB from 1 Mbit chips → 9 with ECC).
    pub chips_per_mm: usize,
    /// Chips per 4×4 switch.
    pub chips_per_switch: usize,
}

impl Default for PackagingModel {
    fn default() -> Self {
        Self::paper_4096()
    }
}

/// Everything §3.6 quotes, computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackagingReport {
    /// 4×4 switches in the whole network.
    pub switches: usize,
    /// Chips used by PE-PNI pairs.
    pub pe_chips: usize,
    /// Chips used by MM-MNI pairs.
    pub mm_chips: usize,
    /// Chips used by switches.
    pub network_chips: usize,
    /// Total chips (I/O interfaces excluded, as in the paper).
    pub total_chips: usize,
    /// Fraction of chips in the network.
    pub network_fraction: f64,
    /// Number of PE boards (= number of MM boards) = √N.
    pub boards_per_side: usize,
    /// Chips on each PE board.
    pub chips_per_pe_board: usize,
    /// Chips on each MM board.
    pub chips_per_mm_board: usize,
}

impl PackagingModel {
    /// The paper's 4096-PE, 1990-technology estimate.
    #[must_use]
    pub fn paper_4096() -> Self {
        Self {
            pes: 4096,
            chips_per_pe: 4,
            chips_per_mm: 9,
            chips_per_switch: 2,
        }
    }

    /// Number of 4×4 switch stages, `log₄ N`.
    ///
    /// # Panics
    ///
    /// Panics unless `pes` is a power of 4.
    #[must_use]
    pub fn stages(&self) -> u32 {
        ultra_sim::ids::digits::count(self.pes, 4)
    }

    /// Computes the full chip/board report.
    ///
    /// # Panics
    ///
    /// Panics unless `pes` is a power of 4 with an even number of stages
    /// (so the network halves onto PE and MM boards) and a square PE count.
    #[must_use]
    pub fn report(&self) -> PackagingReport {
        let stages = self.stages() as usize;
        let switches_per_stage = self.pes / 4;
        let switches = stages * switches_per_stage;
        let pe_chips = self.pes * self.chips_per_pe;
        let mm_chips = self.pes * self.chips_per_mm;
        let network_chips = switches * self.chips_per_switch;
        let total = pe_chips + mm_chips + network_chips;

        // Board partition (§3.6 / Figure 5): sqrt(N) input modules of
        // sqrt(N) network inputs each, holding the first half of the
        // stages; symmetrically for outputs.
        let boards = (self.pes as f64).sqrt() as usize;
        assert_eq!(boards * boards, self.pes, "board model needs square N");
        assert_eq!(stages % 2, 0, "board model splits stages in half");
        let pes_per_board = self.pes / boards;
        // Switches per board per stage: pes_per_board / 4; half the stages
        // live on each side.
        let sw_per_board = (pes_per_board / 4) * (stages / 2);
        let chips_per_pe_board =
            pes_per_board * self.chips_per_pe + sw_per_board * self.chips_per_switch;
        let chips_per_mm_board =
            pes_per_board * self.chips_per_mm + sw_per_board * self.chips_per_switch;

        PackagingReport {
            switches,
            pe_chips,
            mm_chips,
            network_chips,
            total_chips: total,
            network_fraction: network_chips as f64 / total as f64,
            boards_per_side: boards,
            chips_per_pe_board,
            chips_per_mm_board,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduced_exactly() {
        let r = PackagingModel::paper_4096().report();
        // "a 4096 processor machine would require roughly 65,000 chips".
        assert_eq!(r.total_chips, 65_536);
        // "only 19% of the chips are used for the network".
        assert!((r.network_fraction - 0.1875).abs() < 1e-12);
        assert_eq!(r.switches, 6144);
        assert_eq!(r.network_chips, 12_288);
        // "64 PE boards and 64 MM boards".
        assert_eq!(r.boards_per_side, 64);
        // "each PE board containing 352 chips".
        assert_eq!(r.chips_per_pe_board, 352);
        // "each MM board containing 672 chips".
        assert_eq!(r.chips_per_mm_board, 672);
    }

    #[test]
    fn memory_chips_dominate() {
        // "the chip count is still dominated, as in present day machines,
        // by the memory chips".
        let r = PackagingModel::paper_4096().report();
        assert!(r.mm_chips > r.pe_chips + r.network_chips);
    }

    #[test]
    fn smaller_machine_scales() {
        let m = PackagingModel {
            pes: 256,
            ..PackagingModel::paper_4096()
        };
        let r = m.report();
        assert_eq!(r.switches, 4 * 64);
        assert_eq!(r.boards_per_side, 16);
        assert_eq!(r.total_chips, 256 * 13 + 256 * 2);
    }

    #[test]
    #[should_panic(expected = "splits stages in half")]
    fn odd_stage_machine_rejected_by_board_model() {
        // 64 PEs = 3 stages of 4x4: cannot split boards in half.
        let m = PackagingModel {
            pes: 64,
            ..PackagingModel::paper_4096()
        };
        let _ = m.report();
    }
}

//! Analytic models from the Ultracomputer paper.
//!
//! * [`queueing`] — the §4.1 closed forms: per-switch delay, end-to-end
//!   transit time, capacity and cost for a configuration `(k, m, d)`; used
//!   to regenerate **Figure 7** and to cross-check the event-level
//!   simulator.
//! * [`packaging`] — the §3.6 machine-packaging model: chip counts, board
//!   counts, and the network-fraction figures the paper quotes for a
//!   4096-PE machine ("roughly 65,000 chips … only 19% of the chips are
//!   used for the network").
//! * [`unbuffered`] — the Kruskal–Snir analysis of the kill-on-conflict
//!   network the paper rejects (§3.1.2): per-PE bandwidth `O(1/log N)`,
//!   the analytic twin of the simulated `DropOnConflict` baseline.

pub mod packaging;
pub mod queueing;
pub mod unbuffered;

pub use packaging::{PackagingModel, PackagingReport};
pub use queueing::{NetworkModel, TransitPoint};
pub use unbuffered::UnbufferedModel;

//! The §4.1 queueing model of the communication network.
//!
//! A configuration is `(k, m, d)`: switch arity `k`, time-multiplexing
//! factor `m` (switch cycles to input one message), and `d` parallel
//! copies of the network. Under the §4.1 assumptions (no combining, equal
//! message lengths, infinite queues, i.i.d. Bernoulli arrivals of rate `p`
//! per PE per cycle, uniform MM references) the paper derives:
//!
//! * **switch delay** `1 + m²·ρ·(1 − 1/k) / (2·(1 − m·ρ))` where `ρ` is the
//!   per-copy load (the surprising `m²` factor is explained in §4.1);
//! * **transit time**
//!   `T = (lg n / lg k) · switch_delay + m − 1` (stages times delay plus
//!   pipe-fill);
//! * **capacity** `p < d/m` messages per PE per cycle — "the global
//!   bandwidth of the network is indeed proportional to the number of PEs";
//! * **cost factor** `C = d / (k · lg k)`, the network cost per
//!   `n·lg n` normalization — the paper compares configurations of equal
//!   cost (duplexed 4×4 vs. 6-copy 8×8, both `C = 0.25`).
//!
//! With `m = k` (the paper's bandwidth constant `B = 1`) the transit time
//! reduces to the printed formula
//! `T = (1 + k(k−1)p / (2(d−kp))) · lg n / lg k + k − 1`.

/// One point on a Figure 7 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitPoint {
    /// Offered load `p` in messages per PE per cycle.
    pub p: f64,
    /// Average transit time in switch cycles (one way).
    pub transit: f64,
}

/// The analytic model for one network configuration.
///
/// # Example
///
/// ```
/// use ultra_analysis::queueing::NetworkModel;
///
/// // The configuration the paper recommends: duplexed 4x4 switches for a
/// // 4096-PE machine.
/// let m = NetworkModel::with_unit_bandwidth(4096, 4, 2);
/// assert_eq!(m.stages(), 6.0);
/// assert!((m.cost_factor() - 0.25).abs() < 1e-12);
/// assert!(m.transit_time(0.10).unwrap() > m.transit_time(0.01).unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Number of PEs `n`.
    pub n: usize,
    /// Switch arity `k`.
    pub k: usize,
    /// Time-multiplexing factor `m`.
    pub m: u32,
    /// Network copies `d`.
    pub d: usize,
}

impl NetworkModel {
    /// Creates a model for an `n`-PE network of `k×k` switches with
    /// multiplexing factor `m` and `d` copies.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of `k`, `k >= 2`, `m >= 1`, `d >= 1`.
    #[must_use]
    pub fn new(n: usize, k: usize, m: u32, d: usize) -> Self {
        let _ = ultra_sim::ids::digits::count(n, k);
        assert!(m >= 1, "multiplexing factor must be positive");
        assert!(d >= 1, "need at least one copy");
        Self { n, k, m, d }
    }

    /// The paper's `B = k/m = 1` assumption: chip bandwidth fixes `m = k`.
    ///
    /// # Panics
    ///
    /// As [`NetworkModel::new`].
    #[must_use]
    pub fn with_unit_bandwidth(n: usize, k: usize, d: usize) -> Self {
        Self::new(n, k, k as u32, d)
    }

    /// Number of stages `lg n / lg k`.
    #[must_use]
    pub fn stages(&self) -> f64 {
        f64::from(ultra_sim::ids::digits::count(self.n, self.k))
    }

    /// Offered load per network copy, `ρ = p / d`.
    #[must_use]
    pub fn per_copy_load(&self, p: f64) -> f64 {
        p / self.d as f64
    }

    /// The network's capacity in messages per PE per cycle: `d / m`.
    /// "It can accommodate any traffic below this threshold" (§4.1).
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.d as f64 / f64::from(self.m)
    }

    /// Average delay through one switch at per-copy load `rho`:
    /// `1 + m²·ρ·(1 − 1/k) / (2·(1 − m·ρ))`.
    ///
    /// Returns `None` at or beyond saturation (`m·ρ ≥ 1`).
    #[must_use]
    pub fn switch_delay(&self, rho: f64) -> Option<f64> {
        let m = f64::from(self.m);
        let k = self.k as f64;
        if rho < 0.0 || m * rho >= 1.0 {
            return None;
        }
        Some(1.0 + m * m * rho * (1.0 - 1.0 / k) / (2.0 * (1.0 - m * rho)))
    }

    /// Average one-way transit time at offered load `p`:
    /// `stages · switch_delay(p/d) + m − 1`.
    ///
    /// Returns `None` at or beyond capacity.
    #[must_use]
    pub fn transit_time(&self, p: f64) -> Option<f64> {
        let delay = self.switch_delay(self.per_copy_load(p))?;
        Some(self.stages() * delay + f64::from(self.m) - 1.0)
    }

    /// Minimum (zero-load) transit time: `stages + m − 1`.
    #[must_use]
    pub fn min_transit(&self) -> f64 {
        self.stages() + f64::from(self.m) - 1.0
    }

    /// The §4.1 cost factor `C = d / (k·lg k)`; total network cost is
    /// `C · n·lg n` switch-equivalents.
    #[must_use]
    pub fn cost_factor(&self) -> f64 {
        self.d as f64 / (self.k as f64 * (self.k as f64).log2())
    }

    /// Number of `k×k` switches in one copy: `(n · lg n) / (k · lg k)`.
    #[must_use]
    pub fn switches_per_copy(&self) -> usize {
        self.n / self.k * self.stages() as usize
    }

    /// The two-chip switch implementation discussed at the end of §4:
    /// "By using the two chip implementation described at the end of
    /// section 3.3, one can nearly double the bandwidth of each switch
    /// while doubling the chip count." Doubled pin bandwidth halves the
    /// multiplexing factor `m`; the cost doubles.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not even.
    #[must_use]
    pub fn with_two_chip_switches(&self) -> Self {
        assert!(self.m % 2 == 0, "halving m requires an even m");
        Self {
            m: self.m / 2,
            ..*self
        }
    }

    /// Cost factor of the two-chip variant (twice the chips per switch).
    #[must_use]
    pub fn two_chip_cost_factor(&self) -> f64 {
        2.0 * self.cost_factor()
    }

    /// Samples the Figure 7 curve at `samples` evenly spaced loads in
    /// `(0, fraction·capacity]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1` and `samples > 0`.
    #[must_use]
    pub fn figure7_curve(&self, fraction: f64, samples: usize) -> Vec<TransitPoint> {
        assert!(samples > 0, "need at least one sample");
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must stay below saturation"
        );
        let p_max = self.capacity() * fraction;
        (1..=samples)
            .map(|i| {
                let p = p_max * i as f64 / samples as f64;
                TransitPoint {
                    p,
                    transit: self
                        .transit_time(p)
                        .expect("below saturation by construction"),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printed_formula_matches_general_form() {
        // §4.1: with m = k, T = (1 + k(k-1)p/(2(d-kp))) * lgn/lgk + k - 1.
        for (k, d) in [(2usize, 1usize), (4, 2), (8, 6)] {
            let model = NetworkModel::with_unit_bandwidth(4096, k, d);
            for i in 1..10 {
                let p = model.capacity() * 0.9 * i as f64 / 10.0;
                let kf = k as f64;
                let df = d as f64;
                let printed =
                    (1.0 + kf * (kf - 1.0) * p / (2.0 * (df - kf * p))) * model.stages() + kf - 1.0;
                let general = model.transit_time(p).unwrap();
                assert!(
                    (printed - general).abs() < 1e-9,
                    "k={k} d={d} p={p}: {printed} vs {general}"
                );
            }
        }
    }

    #[test]
    fn zero_load_gives_min_transit() {
        let m = NetworkModel::with_unit_bandwidth(4096, 4, 2);
        assert!((m.transit_time(0.0).unwrap() - m.min_transit()).abs() < 1e-12);
        assert_eq!(m.min_transit(), 6.0 + 3.0);
    }

    #[test]
    fn saturation_returns_none() {
        let m = NetworkModel::with_unit_bandwidth(4096, 4, 1);
        assert_eq!(m.capacity(), 0.25);
        assert!(m.transit_time(0.25).is_none());
        assert!(m.transit_time(0.3).is_none());
        assert!(m.transit_time(0.249).is_some());
    }

    #[test]
    fn delay_monotone_in_load() {
        let m = NetworkModel::with_unit_bandwidth(4096, 2, 1);
        let mut last = 0.0;
        for i in 1..40 {
            let p = m.capacity() * 0.95 * i as f64 / 40.0;
            let t = m.transit_time(p).unwrap();
            assert!(t > last, "transit must grow with load");
            last = t;
        }
    }

    #[test]
    fn paper_cost_comparison_4x4d2_vs_8x8d6() {
        // §4.1: the 8x8 d=6 network has "approximately the same cost" as
        // the duplexed 4x4. Both C = 0.25.
        let a = NetworkModel::with_unit_bandwidth(4096, 4, 2);
        let b = NetworkModel::with_unit_bandwidth(4096, 8, 6);
        assert!((a.cost_factor() - 0.25).abs() < 1e-12);
        assert!((b.cost_factor() - 0.25).abs() < 1e-12);
        // "the bandwidth of the first network is d/k = .5 and the bandwidth
        // of the second is .75".
        assert!((a.capacity() - 0.5).abs() < 1e-12);
        assert!((b.capacity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn duplexed_4x4_beats_others_at_moderate_load() {
        // Figure 7's conclusion: "for reasonable traffic intensities a
        // duplexed network composed of 4x4 switches yields the best
        // performance" among equal-cost options.
        let configs = [
            NetworkModel::with_unit_bandwidth(4096, 2, 1), // C = 0.5 (dearer!)
            NetworkModel::with_unit_bandwidth(4096, 4, 2), // C = 0.25
            NetworkModel::with_unit_bandwidth(4096, 8, 6), // C = 0.25
        ];
        // Table 1 measures p < 0.04 per PE per *network* cycle... the
        // "reasonable" region of Figure 7 is p in [0.05, 0.25].
        for p in [0.05, 0.10, 0.15, 0.20] {
            let t4 = configs[1].transit_time(p).unwrap();
            let t8 = configs[2].transit_time(p).unwrap();
            assert!(
                t4 < t8,
                "duplexed 4x4 ({t4:.2}) must beat 8x8 d=6 ({t8:.2}) at p={p}"
            );
        }
    }

    #[test]
    fn more_copies_reduce_delay() {
        let one = NetworkModel::with_unit_bandwidth(4096, 4, 1);
        let two = NetworkModel::with_unit_bandwidth(4096, 4, 2);
        let p = 0.2;
        assert!(two.transit_time(p).unwrap() < one.transit_time(p).unwrap_or(f64::INFINITY));
    }

    #[test]
    fn switch_counts() {
        let m = NetworkModel::with_unit_bandwidth(4096, 4, 1);
        // 6 stages of 1024 switches.
        assert_eq!(m.switches_per_copy(), 6144);
    }

    #[test]
    fn figure7_curve_is_well_formed() {
        let m = NetworkModel::with_unit_bandwidth(4096, 4, 2);
        let curve = m.figure7_curve(0.9, 20);
        assert_eq!(curve.len(), 20);
        assert!(curve.windows(2).all(|w| w[0].p < w[1].p));
        assert!(curve.windows(2).all(|w| w[0].transit < w[1].transit));
    }

    #[test]
    fn capacity_linear_in_copies_bandwidth_linear_in_n() {
        // Design goal 1 (§3.1): bandwidth proportional to N. Capacity per
        // PE is constant in N, so aggregate bandwidth = N * capacity.
        for n in [64, 256, 1024, 4096] {
            let m = NetworkModel::with_unit_bandwidth(n, 4, 2);
            assert!((m.capacity() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn latency_logarithmic_in_n() {
        // Design goal 2 (§3.1): latency logarithmic in N.
        let t64 = NetworkModel::with_unit_bandwidth(64, 4, 1).min_transit();
        let t4096 = NetworkModel::with_unit_bandwidth(4096, 4, 1).min_transit();
        assert_eq!(t64, 3.0 + 3.0);
        assert_eq!(t4096, 6.0 + 3.0, "64x more PEs costs only 2x the stages");
    }

    #[test]
    #[should_panic(expected = "not a power")]
    fn rejects_mismatched_n_k() {
        let _ = NetworkModel::with_unit_bandwidth(100, 4, 1);
    }

    #[test]
    fn two_chip_switches_beat_two_network_copies() {
        // §4: "As delays are highly sensitive to the multiplexing factor
        // m, this implementation would [give] a better performance than
        // that obtained by taking two copies of a network built of one
        // chip switches." Both options double the chip count.
        let one_chip = NetworkModel::with_unit_bandwidth(4096, 4, 1);
        let two_copies = NetworkModel::with_unit_bandwidth(4096, 4, 2);
        let two_chip = one_chip.with_two_chip_switches();
        assert_eq!(two_chip.m, 2);
        assert!((two_chip.two_chip_cost_factor() - two_copies.cost_factor()).abs() < 1e-12);
        for p in [0.05, 0.15, 0.25, 0.35, 0.45] {
            let a = two_chip.transit_time(p);
            let b = two_copies.transit_time(p);
            match (a, b) {
                (Some(ta), Some(tb)) => {
                    assert!(ta < tb, "two-chip {ta:.2} must beat d=2 {tb:.2} at p={p}")
                }
                (Some(_), None) => {} // two-chip still live where d=2 saturated
                (None, _) => panic!("two-chip saturated first at p={p}"),
            }
        }
        // And its capacity is the same 0.5 messages/PE/cycle.
        assert!((two_chip.capacity() - two_copies.capacity()).abs() < 1e-12);
    }
}

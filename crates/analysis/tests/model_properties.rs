//! Property tests of the analytic models: the §4.1 formulas must be
//! well-behaved over their whole domain, not just at the plotted points.

use proptest::prelude::*;
use ultra_analysis::queueing::NetworkModel;
use ultra_analysis::unbuffered::UnbufferedModel;

fn geometry() -> impl Strategy<Value = (usize, usize)> {
    // (k, stages) pairs with n = k^stages kept sane.
    prop_oneof![
        (Just(2usize), 2u32..13),
        (Just(4usize), 1u32..7),
        (Just(8usize), 1u32..5),
    ]
    .prop_map(|(k, d)| (k.pow(d), k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transit time is defined exactly on [0, capacity), is at least the
    /// zero-load minimum, and grows monotonically with load.
    #[test]
    fn transit_domain_and_monotonicity(
        (n, k) in geometry(),
        d in 1usize..7,
        f1 in 0.01f64..0.98,
        f2 in 0.01f64..0.98,
    ) {
        let m = NetworkModel::with_unit_bandwidth(n, k, d);
        let cap = m.capacity();
        prop_assert!(m.transit_time(cap).is_none());
        prop_assert!(m.transit_time(cap * 1.5).is_none());
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let t_lo = m.transit_time(cap * lo).expect("below capacity");
        let t_hi = m.transit_time(cap * hi).expect("below capacity");
        prop_assert!(t_lo >= m.min_transit() - 1e-12);
        prop_assert!(t_hi + 1e-12 >= t_lo, "transit must be nondecreasing");
    }

    /// More copies never hurt: transit at fixed offered load is
    /// nonincreasing in `d`, and capacity is linear in `d`.
    #[test]
    fn copies_help((n, k) in geometry(), d in 1usize..6, f in 0.05f64..0.9) {
        let a = NetworkModel::with_unit_bandwidth(n, k, d);
        let b = NetworkModel::with_unit_bandwidth(n, k, d + 1);
        prop_assert!((b.capacity() - a.capacity() * (d as f64 + 1.0) / d as f64).abs() < 1e-12);
        let p = a.capacity() * f;
        let ta = a.transit_time(p).expect("below a's capacity");
        let tb = b.transit_time(p).expect("below b's capacity too");
        prop_assert!(tb <= ta + 1e-12);
    }

    /// Cost accounting: the network's switch count times `k lg k` equals
    /// `n lg n` per copy (the §4.1 normalization).
    #[test]
    fn cost_normalization_holds((n, k) in geometry(), d in 1usize..5) {
        let m = NetworkModel::with_unit_bandwidth(n, k, d);
        let per_copy = m.switches_per_copy() as f64 * (k as f64) * (k as f64).log2();
        let expected = n as f64 * (n as f64).log2();
        prop_assert!((per_copy - expected).abs() / expected < 1e-9);
        prop_assert!(
            (m.cost_factor() - d as f64 / (k as f64 * (k as f64).log2())).abs() < 1e-12
        );
    }

    /// The unbuffered recurrence is a contraction: acceptance is always in
    /// (0, p] for p > 0 and decreases monotonically stage over stage.
    #[test]
    fn unbuffered_acceptance_contracts((n, k) in geometry(), p in 0.01f64..1.0) {
        let m = UnbufferedModel::new(n, k);
        let mut rate = p;
        for _ in 0..m.stages() {
            let next = m.stage_accept(rate);
            prop_assert!(next > 0.0);
            prop_assert!(next <= rate + 1e-12, "a stage cannot create traffic");
            rate = next;
        }
        prop_assert!((m.accepted_rate(p) - rate).abs() < 1e-12);
    }
}

//! Property tests of the memory bank: arbitrary request sequences must
//! match a reference model (a plain map) in both final state and reply
//! values, and service must be FIFO with the configured latency.

use proptest::prelude::*;
use std::collections::HashMap;
use ultra_mem::MemBank;
use ultra_net::message::{Message, MsgId, MsgKind, PhiOp};
use ultra_sim::{MemAddr, MmId, PeId, Value};

#[derive(Debug, Clone, Copy)]
enum GenKind {
    Load,
    Store,
    Add,
    Max,
    Swap,
}

fn kind_strategy() -> impl Strategy<Value = GenKind> {
    prop_oneof![
        Just(GenKind::Load),
        Just(GenKind::Store),
        Just(GenKind::Add),
        Just(GenKind::Max),
        Just(GenKind::Swap),
    ]
}

fn to_msg(i: usize, kind: GenKind, offset: usize, value: Value) -> Message {
    let kind = match kind {
        GenKind::Load => MsgKind::Load,
        GenKind::Store => MsgKind::Store,
        GenKind::Add => MsgKind::FetchPhi(PhiOp::Add),
        GenKind::Max => MsgKind::FetchPhi(PhiOp::Max),
        GenKind::Swap => MsgKind::FetchPhi(PhiOp::Second),
    };
    Message::request(
        MsgId(i as u64 + 1),
        kind,
        MemAddr::new(MmId(0), offset),
        value,
        PeId(0),
        0,
    )
}

fn reference_apply(mem: &mut HashMap<usize, Value>, msg: &Message) -> Value {
    let slot = mem.entry(msg.addr.offset).or_insert(0);
    match msg.kind {
        MsgKind::Load => *slot,
        MsgKind::Store => {
            *slot = msg.value;
            0
        }
        MsgKind::FetchPhi(op) => {
            let old = *slot;
            *slot = op.apply(old, msg.value);
            old
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Timed service through the bank equals the untimed reference model,
    /// reply-for-reply and word-for-word, in FIFO order.
    #[test]
    fn bank_matches_reference_model(
        ops in prop::collection::vec(
            (kind_strategy(), 0usize..12, -100i64..100),
            1..60,
        ),
        service in 1u64..5,
    ) {
        let mut bank = MemBank::new(MmId(0), service);
        let mut reference = HashMap::new();
        let mut expected_replies = Vec::new();
        for (i, &(kind, offset, value)) in ops.iter().enumerate() {
            let msg = to_msg(i, kind, offset, value);
            expected_replies.push((msg.id, reference_apply(&mut reference, &msg)));
            bank.push_request(msg);
        }
        // Run long enough to drain: one request per `service` cycles.
        let budget = service * ops.len() as u64 + service + 2;
        let mut got = Vec::new();
        for now in 0..budget {
            bank.cycle(now);
            while let Some(r) = bank.pop_reply() {
                got.push((r.id, r.value));
            }
        }
        prop_assert!(bank.is_idle(), "bank must drain within the budget");
        // FIFO: replies in push order, with the reference's values
        // (store acks reply 0 both here and in the reference).
        prop_assert_eq!(got, expected_replies);
        // Final memory agrees with the reference.
        for (offset, value) in reference {
            prop_assert_eq!(bank.peek(offset), value, "offset {}", offset);
        }
    }

    /// The bank never emits more than one completion per `service` cycles
    /// — the §3.1.4 serial-bottleneck behaviour hashing exists to dodge.
    #[test]
    fn service_rate_is_bounded(
        n_requests in 1usize..30,
        service in 1u64..6,
    ) {
        let mut bank = MemBank::new(MmId(0), service);
        for i in 0..n_requests {
            bank.push_request(to_msg(i, GenKind::Add, 0, 1));
        }
        let mut completions_at = Vec::new();
        for now in 0..(service * n_requests as u64 + service + 2) {
            bank.cycle(now);
            while bank.pop_reply().is_some() {
                completions_at.push(now);
            }
        }
        prop_assert_eq!(completions_at.len(), n_requests);
        for w in completions_at.windows(2) {
            prop_assert!(
                w[1] - w[0] >= service,
                "completions {} and {} closer than the service time",
                w[0],
                w[1]
            );
        }
    }
}

//! Virtual→physical address translation with MM-spreading hash (§3.1.4).
//!
//! "A potential serial bottleneck is the memory module itself. If every PE
//! simultaneously requests a distinct word from the same MM, these N
//! requests are serviced one at a time. However, introducing a hashing
//! function when translating the virtual address to a physical address,
//! assures that this unfavorable situation occurs with probability
//! approaching zero as N increases."
//!
//! Two translation modes are provided:
//!
//! * [`TranslationMode::Interleaved`] — classic low-order interleaving
//!   (`mm = addr mod N`). Simple, but strided access patterns with stride a
//!   multiple of `N` pound a single module.
//! * [`TranslationMode::Hashed`] — the paper's remedy: the module number is
//!   a mix of all address bits, so any fixed stride spreads across modules.
//!
//! Both translations are injective (distinct virtual words never collide on
//! the same physical word), which the property tests verify.
//!
//! # Degraded mode (dead memory modules)
//!
//! The §4.1 fault model lets whole MMs die; the machine keeps running by
//! re-hashing around them. When the hasher carries a non-empty dead set,
//! any word whose healthy translation lands on a dead module is *remapped*
//! onto a live module, into a reserved offset region disjoint from all
//! healthy offsets ([`REMAP_BASE`]), keeping the full translation
//! injective. With an empty dead set the remap layer is structurally
//! absent and translation is bit-identical to the healthy hasher.

use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{MemAddr, MmId};

/// First offset of the reserved region that remapped (dead-module) words
/// occupy on their adoptive live module. Healthy offsets are `vaddr / N`,
/// far below this for any realistic address space (the machine's reserved
/// barrier words sit at `2^40`), so remapped words can never collide with
/// native ones.
pub const REMAP_BASE: usize = 1 << 50;

/// How virtual word addresses map onto `(module, offset)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TranslationMode {
    /// `mm = addr mod N`, `offset = addr div N`.
    Interleaved,
    /// `mm = mix(addr) mod N`, `offset = addr div N` — the §3.1.4 hash.
    /// The offset keeps a module-local slot per `addr div N` *group*, and
    /// within a group the mix permutes which module each word lands on.
    #[default]
    Hashed,
}

impl Wire for TranslationMode {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            Self::Interleaved => 0,
            Self::Hashed => 1,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::Interleaved,
            1 => Self::Hashed,
            _ => return Err(WireError::Invalid("translation mode tag")),
        })
    }
}

/// Translates flat virtual word addresses to physical [`MemAddr`]s.
///
/// # Example
///
/// ```
/// use ultra_mem::hash::{AddressHasher, TranslationMode};
///
/// let h = AddressHasher::new(64, TranslationMode::Hashed);
/// let a = h.translate(1000);
/// let b = h.translate(1001);
/// assert_ne!((a.mm, a.offset), (b.mm, b.offset));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AddressHasher {
    n_mms: usize,
    mode: TranslationMode,
    /// `dead_rank[mm] = Some(r)` iff module `mm` is dead and is the
    /// `r`-th dead module in ascending order. Empty when healthy.
    dead_rank: Vec<Option<usize>>,
    /// Live module indices, ascending. Empty when healthy (all live).
    live: Vec<usize>,
}

impl AddressHasher {
    /// Creates a translator over `n_mms` modules (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n_mms` is not a positive power of two.
    #[must_use]
    pub fn new(n_mms: usize, mode: TranslationMode) -> Self {
        assert!(
            n_mms.is_power_of_two(),
            "module count must be a power of two"
        );
        Self {
            n_mms,
            mode,
            dead_rank: Vec::new(),
            live: Vec::new(),
        }
    }

    /// Switches the hasher into degraded mode: words whose healthy
    /// translation lands on a module in `dead` are remapped onto live
    /// modules (round-robin by dead rank) in the [`REMAP_BASE`] offset
    /// region. Passing an empty set restores exact healthy translation.
    ///
    /// # Panics
    ///
    /// Panics if every module is dead or a dead index is out of range.
    pub fn set_dead_mms(&mut self, dead: &[MmId]) {
        if dead.is_empty() {
            self.dead_rank = Vec::new();
            self.live = Vec::new();
            return;
        }
        let mut rank = vec![None; self.n_mms];
        let mut sorted: Vec<usize> = dead.iter().map(|m| m.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        for (r, &mm) in sorted.iter().enumerate() {
            assert!(mm < self.n_mms, "dead module {mm} out of range");
            rank[mm] = Some(r);
        }
        let live: Vec<usize> = (0..self.n_mms).filter(|&m| rank[m].is_none()).collect();
        assert!(!live.is_empty(), "at least one module must survive");
        self.dead_rank = rank;
        self.live = live;
    }

    /// Whether any module is being remapped around.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.live.is_empty()
    }

    /// Number of modules being spread over.
    #[must_use]
    pub fn n_mms(&self) -> usize {
        self.n_mms
    }

    /// Maps a flat virtual word address to its module and offset.
    #[must_use]
    pub fn translate(&self, vaddr: usize) -> MemAddr {
        let mask = self.n_mms - 1;
        let group = vaddr / self.n_mms;
        let mm = match self.mode {
            TranslationMode::Interleaved => vaddr & mask,
            TranslationMode::Hashed => {
                // Within group g, word index w = vaddr mod N lands on module
                // (w XOR mix(g)) — a per-group permutation of the modules, so
                // the map stays injective while any fixed stride is spread.
                (vaddr & mask) ^ (mix(group as u64) as usize & mask)
            }
        };
        self.remap(MemAddr::new(MmId(mm), group))
    }

    /// Applies the degraded-mode remap to a healthy translation. Identity
    /// when no modules are dead. Injective: distinct dead `(mm, offset)`
    /// pairs get distinct remapped offsets (`offset · D + rank` with
    /// `rank < D`), and the [`REMAP_BASE`] region keeps them disjoint
    /// from every native offset on the adoptive module. Public so
    /// harnesses that generate *physical* traffic can steer it around
    /// dead modules the same way translated traffic is steered.
    #[must_use]
    pub fn remap(&self, addr: MemAddr) -> MemAddr {
        if self.live.is_empty() {
            return addr;
        }
        match self.dead_rank[addr.mm.0] {
            None => addr,
            Some(rank) => {
                let d = self.n_mms - self.live.len();
                let adoptive = self.live[rank % self.live.len()];
                MemAddr::new(MmId(adoptive), REMAP_BASE + addr.offset * d + rank)
            }
        }
    }
}

/// SplitMix64-style finalizer: avalanche all input bits.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn interleaved_is_modulo() {
        let h = AddressHasher::new(8, TranslationMode::Interleaved);
        assert_eq!(h.translate(13), MemAddr::new(MmId(5), 1));
        assert_eq!(h.translate(7), MemAddr::new(MmId(7), 0));
    }

    #[test]
    fn both_modes_are_injective() {
        for mode in [TranslationMode::Interleaved, TranslationMode::Hashed] {
            let h = AddressHasher::new(16, mode);
            let mut seen = HashSet::new();
            for v in 0..10_000 {
                let a = h.translate(v);
                assert!(a.mm.0 < 16);
                assert!(seen.insert((a.mm, a.offset)), "collision at {v} ({mode:?})");
            }
        }
    }

    #[test]
    fn hashed_spreads_pathological_stride() {
        // Stride-N accesses: interleaving sends all to MM 0; the hash must
        // spread them over many modules.
        let n = 64;
        let inter = AddressHasher::new(n, TranslationMode::Interleaved);
        let hashed = AddressHasher::new(n, TranslationMode::Hashed);
        let addrs: Vec<usize> = (0..n).map(|i| i * n).collect();
        let inter_mms: HashSet<_> = addrs.iter().map(|&a| inter.translate(a).mm).collect();
        let hashed_mms: HashSet<_> = addrs.iter().map(|&a| hashed.translate(a).mm).collect();
        assert_eq!(
            inter_mms.len(),
            1,
            "interleaving collapses stride-N onto one MM"
        );
        assert!(
            hashed_mms.len() > n / 2,
            "hashing must spread stride-N over most MMs (got {})",
            hashed_mms.len()
        );
    }

    #[test]
    fn hashed_spreads_sequential_addresses_evenly() {
        let n = 16;
        let h = AddressHasher::new(n, TranslationMode::Hashed);
        let mut counts = vec![0u32; n];
        for v in 0..(n * 100) {
            counts[h.translate(v).mm.0] += 1;
        }
        // Perfect balance: each group is a permutation of the modules.
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = AddressHasher::new(12, TranslationMode::Hashed);
    }

    #[test]
    fn empty_dead_set_is_exact_passthrough() {
        let healthy = AddressHasher::new(16, TranslationMode::Hashed);
        let mut degraded = AddressHasher::new(16, TranslationMode::Hashed);
        degraded.set_dead_mms(&[MmId(3)]);
        degraded.set_dead_mms(&[]);
        assert!(!degraded.is_degraded());
        for v in 0..5_000 {
            assert_eq!(healthy.translate(v), degraded.translate(v));
        }
    }

    #[test]
    fn degraded_translation_avoids_dead_modules_and_stays_injective() {
        for mode in [TranslationMode::Interleaved, TranslationMode::Hashed] {
            let mut h = AddressHasher::new(16, mode);
            h.set_dead_mms(&[MmId(0), MmId(5), MmId(11)]);
            assert!(h.is_degraded());
            let mut seen = HashSet::new();
            for v in 0..10_000 {
                let a = h.translate(v);
                assert!(
                    ![0usize, 5, 11].contains(&a.mm.0),
                    "vaddr {v} landed on a dead module ({mode:?})"
                );
                assert!(seen.insert((a.mm, a.offset)), "collision at {v} ({mode:?})");
            }
        }
    }

    #[test]
    fn remapped_words_live_in_the_reserved_region() {
        let healthy = AddressHasher::new(8, TranslationMode::Hashed);
        let mut h = AddressHasher::new(8, TranslationMode::Hashed);
        h.set_dead_mms(&[MmId(2)]);
        for v in 0..2_000 {
            let base = healthy.translate(v);
            let got = h.translate(v);
            if base.mm == MmId(2) {
                assert!(got.offset >= REMAP_BASE, "remapped offset in region");
                assert_ne!(got.mm, MmId(2));
            } else {
                assert_eq!(got, base, "healthy-module words are untouched");
            }
        }
    }

    #[test]
    fn dead_modules_spread_over_all_survivors() {
        // With several dead modules, their adoptive homes must not all
        // collapse onto one survivor.
        let mut h = AddressHasher::new(16, TranslationMode::Hashed);
        h.set_dead_mms(&[MmId(1), MmId(2), MmId(3), MmId(4)]);
        let adoptive: HashSet<_> = (0..5_000)
            .map(|v| h.translate(v))
            .filter(|a| a.offset >= REMAP_BASE)
            .map(|a| a.mm)
            .collect();
        assert!(adoptive.len() >= 4, "got {adoptive:?}");
    }

    #[test]
    #[should_panic(expected = "survive")]
    fn rejects_killing_every_module() {
        let mut h = AddressHasher::new(2, TranslationMode::Hashed);
        h.set_dead_mms(&[MmId(0), MmId(1)]);
    }
}

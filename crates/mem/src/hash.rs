//! Virtual→physical address translation with MM-spreading hash (§3.1.4).
//!
//! "A potential serial bottleneck is the memory module itself. If every PE
//! simultaneously requests a distinct word from the same MM, these N
//! requests are serviced one at a time. However, introducing a hashing
//! function when translating the virtual address to a physical address,
//! assures that this unfavorable situation occurs with probability
//! approaching zero as N increases."
//!
//! Two translation modes are provided:
//!
//! * [`TranslationMode::Interleaved`] — classic low-order interleaving
//!   (`mm = addr mod N`). Simple, but strided access patterns with stride a
//!   multiple of `N` pound a single module.
//! * [`TranslationMode::Hashed`] — the paper's remedy: the module number is
//!   a mix of all address bits, so any fixed stride spreads across modules.
//!
//! Both translations are injective (distinct virtual words never collide on
//! the same physical word), which the property tests verify.

use ultra_sim::{MemAddr, MmId};

/// How virtual word addresses map onto `(module, offset)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TranslationMode {
    /// `mm = addr mod N`, `offset = addr div N`.
    Interleaved,
    /// `mm = mix(addr) mod N`, `offset = addr div N` — the §3.1.4 hash.
    /// The offset keeps a module-local slot per `addr div N` *group*, and
    /// within a group the mix permutes which module each word lands on.
    #[default]
    Hashed,
}

/// Translates flat virtual word addresses to physical [`MemAddr`]s.
///
/// # Example
///
/// ```
/// use ultra_mem::hash::{AddressHasher, TranslationMode};
///
/// let h = AddressHasher::new(64, TranslationMode::Hashed);
/// let a = h.translate(1000);
/// let b = h.translate(1001);
/// assert_ne!((a.mm, a.offset), (b.mm, b.offset));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressHasher {
    n_mms: usize,
    mode: TranslationMode,
}

impl AddressHasher {
    /// Creates a translator over `n_mms` modules (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n_mms` is not a positive power of two.
    #[must_use]
    pub fn new(n_mms: usize, mode: TranslationMode) -> Self {
        assert!(
            n_mms.is_power_of_two(),
            "module count must be a power of two"
        );
        Self { n_mms, mode }
    }

    /// Number of modules being spread over.
    #[must_use]
    pub fn n_mms(&self) -> usize {
        self.n_mms
    }

    /// Maps a flat virtual word address to its module and offset.
    #[must_use]
    pub fn translate(&self, vaddr: usize) -> MemAddr {
        let mask = self.n_mms - 1;
        let group = vaddr / self.n_mms;
        let mm = match self.mode {
            TranslationMode::Interleaved => vaddr & mask,
            TranslationMode::Hashed => {
                // Within group g, word index w = vaddr mod N lands on module
                // (w XOR mix(g)) — a per-group permutation of the modules, so
                // the map stays injective while any fixed stride is spread.
                (vaddr & mask) ^ (mix(group as u64) as usize & mask)
            }
        };
        MemAddr::new(MmId(mm), group)
    }
}

/// SplitMix64-style finalizer: avalanche all input bits.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn interleaved_is_modulo() {
        let h = AddressHasher::new(8, TranslationMode::Interleaved);
        assert_eq!(h.translate(13), MemAddr::new(MmId(5), 1));
        assert_eq!(h.translate(7), MemAddr::new(MmId(7), 0));
    }

    #[test]
    fn both_modes_are_injective() {
        for mode in [TranslationMode::Interleaved, TranslationMode::Hashed] {
            let h = AddressHasher::new(16, mode);
            let mut seen = HashSet::new();
            for v in 0..10_000 {
                let a = h.translate(v);
                assert!(a.mm.0 < 16);
                assert!(seen.insert((a.mm, a.offset)), "collision at {v} ({mode:?})");
            }
        }
    }

    #[test]
    fn hashed_spreads_pathological_stride() {
        // Stride-N accesses: interleaving sends all to MM 0; the hash must
        // spread them over many modules.
        let n = 64;
        let inter = AddressHasher::new(n, TranslationMode::Interleaved);
        let hashed = AddressHasher::new(n, TranslationMode::Hashed);
        let addrs: Vec<usize> = (0..n).map(|i| i * n).collect();
        let inter_mms: HashSet<_> = addrs.iter().map(|&a| inter.translate(a).mm).collect();
        let hashed_mms: HashSet<_> = addrs.iter().map(|&a| hashed.translate(a).mm).collect();
        assert_eq!(
            inter_mms.len(),
            1,
            "interleaving collapses stride-N onto one MM"
        );
        assert!(
            hashed_mms.len() > n / 2,
            "hashing must spread stride-N over most MMs (got {})",
            hashed_mms.len()
        );
    }

    #[test]
    fn hashed_spreads_sequential_addresses_evenly() {
        let n = 16;
        let h = AddressHasher::new(n, TranslationMode::Hashed);
        let mut counts = vec![0u32; n];
        for v in 0..(n * 100) {
            counts[h.translate(v).mm.0] += 1;
        }
        // Perfect balance: each group is a permutation of the modules.
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = AddressHasher::new(12, TranslationMode::Hashed);
    }
}

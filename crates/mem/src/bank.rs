//! One memory module with its memory-network interface.
//!
//! # Fault hooks
//!
//! The §4.1 degradation story needs three things from a module: it can
//! *die* (fail-stop: contents and in-flight work lost, translation
//! re-hashes around it), it can *slow down* (service-time multiplier),
//! and — when the machine runs a retry protocol — it keeps a **dedup
//! cache** so a retried request whose original was already applied is
//! never applied twice. The cache is keyed by every sequence number folded
//! into a combined request, so even a retry of a constituent that was
//! absorbed by combining is recognized. A duplicate is answered from the
//! cache when the module knows that constituent's exact reply value (it
//! was applied alone, or was the combined amalgam's survivor) and is
//! silently swallowed otherwise — safe, because replies are never lost in
//! the fault model, so the original decombined reply is still en route.

use std::collections::{HashMap, VecDeque};

use ultra_net::message::{Message, MsgId, MsgKind, Reply};
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Counter, Cycle, MmId, Value};

/// Instrumentation for one memory bank.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Requests fully served.
    pub served: Counter,
    /// Loads served.
    pub loads: Counter,
    /// Stores served.
    pub stores: Counter,
    /// Fetch-and-phi operations served.
    pub fetch_phis: Counter,
    /// Largest request-queue depth observed — the §3.1.4 "potential serial
    /// bottleneck" indicator.
    pub max_queue_depth: usize,
    /// Cycles during which the module was actively serving a request.
    pub busy_cycles: Counter,
    /// Duplicate (retried) requests answered from the dedup cache.
    pub dedup_hits: Counter,
    /// Duplicate requests swallowed without a reply (original reply still
    /// en route through a combining tree).
    pub dedup_swallowed: Counter,
    /// Requests discarded because the module was dead.
    pub dead_discards: Counter,
}

impl Wire for MemStats {
    fn encode(&self, w: &mut WireWriter) {
        self.served.encode(w);
        self.loads.encode(w);
        self.stores.encode(w);
        self.fetch_phis.encode(w);
        w.usize(self.max_queue_depth);
        self.busy_cycles.encode(w);
        self.dedup_hits.encode(w);
        self.dedup_swallowed.encode(w);
        self.dead_discards.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            served: Counter::decode(r)?,
            loads: Counter::decode(r)?,
            stores: Counter::decode(r)?,
            fetch_phis: Counter::decode(r)?,
            max_queue_depth: r.usize()?,
            busy_cycles: Counter::decode(r)?,
            dedup_hits: Counter::decode(r)?,
            dedup_swallowed: Counter::decode(r)?,
            dead_discards: Counter::decode(r)?,
        })
    }
}

/// A memory module plus its MNI: FIFO request queue, fixed service time,
/// fetch-and-phi ALU, and a reply outbox.
///
/// All words read as zero until written — convenient for the shared
/// counters and queue bounds of the paper's algorithms, which all start at
/// zero.
#[derive(Debug, Clone)]
pub struct MemBank {
    mm: MmId,
    words: HashMap<usize, Value>,
    queue: VecDeque<Message>,
    /// The request in service and the cycle it completes.
    in_service: Option<(Cycle, Message)>,
    outbox: VecDeque<Reply>,
    service_time: Cycle,
    stats: MemStats,
    dead: bool,
    /// Retry dedup cache (None = disabled, the fault-free default — no
    /// per-request bookkeeping at all). `Some(value)` = that sequence
    /// number was applied and observed `value`; `None` = it was applied
    /// as an absorbed constituent of a combined request, whose exact
    /// observed value only the combining tree knows.
    seen: Option<HashMap<MsgId, Option<Value>>>,
}

impl Wire for MemBank {
    fn encode(&self, w: &mut WireWriter) {
        self.mm.encode(w);
        self.words.encode(w);
        self.queue.encode(w);
        self.in_service.encode(w);
        self.outbox.encode(w);
        // Serialized rather than rebuilt from config: the slow-MM fault
        // mutates it mid-run.
        w.u64(self.service_time);
        self.stats.encode(w);
        w.bool(self.dead);
        self.seen.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let bank = Self {
            mm: MmId::decode(r)?,
            words: HashMap::decode(r)?,
            queue: VecDeque::decode(r)?,
            in_service: Option::decode(r)?,
            outbox: VecDeque::decode(r)?,
            service_time: r.u64()?,
            stats: MemStats::decode(r)?,
            dead: r.bool()?,
            seen: Option::decode(r)?,
        };
        if bank.service_time == 0 {
            return Err(WireError::Invalid("zero bank service time"));
        }
        Ok(bank)
    }
}

impl MemBank {
    /// Creates an empty module `mm` that serves one request every
    /// `service_time` cycles (§4.2 uses two network cycles).
    ///
    /// # Panics
    ///
    /// Panics if `service_time` is zero.
    #[must_use]
    pub fn new(mm: MmId, service_time: Cycle) -> Self {
        assert!(service_time >= 1, "service time must be at least one cycle");
        Self {
            mm,
            words: HashMap::new(),
            queue: VecDeque::new(),
            in_service: None,
            outbox: VecDeque::new(),
            service_time,
            stats: MemStats::default(),
            dead: false,
            seen: None,
        }
    }

    /// This module's id.
    #[must_use]
    pub fn mm(&self) -> MmId {
        self.mm
    }

    /// Enables the exactly-once dedup cache (required when the machine
    /// runs the PNI retry protocol; off by default so fault-free runs do
    /// no extra bookkeeping).
    pub fn enable_dedup(&mut self) {
        if self.seen.is_none() {
            self.seen = Some(HashMap::new());
        }
    }

    /// Fail-stops this module: contents, queued work, and undelivered
    /// replies are all lost, and every future request is discarded
    /// unserved (its PE recovers via retry against the re-hashed
    /// translation).
    pub fn kill(&mut self) {
        self.dead = true;
        let discarded =
            self.queue.len() + usize::from(self.in_service.is_some()) + self.outbox.len();
        self.stats.dead_discards.add(discarded as u64);
        self.queue.clear();
        self.in_service = None;
        self.outbox.clear();
        self.words.clear();
        if let Some(seen) = &mut self.seen {
            seen.clear();
        }
    }

    /// Whether the module has fail-stopped.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Degrades (or restores) the per-request service time — the slow-MM
    /// fault. Takes effect from the next request to enter service.
    ///
    /// # Panics
    ///
    /// Panics if `service_time` is zero.
    pub fn set_service_time(&mut self, service_time: Cycle) {
        assert!(service_time >= 1, "service time must be at least one cycle");
        self.service_time = service_time;
    }

    /// The current per-request service time.
    #[must_use]
    pub fn service_time(&self) -> Cycle {
        self.service_time
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Directly reads a word (test setup / result extraction; not timed).
    #[must_use]
    pub fn peek(&self, offset: usize) -> Value {
        self.words.get(&offset).copied().unwrap_or(0)
    }

    /// Directly writes a word (initialization; not timed).
    pub fn poke(&mut self, offset: usize, value: Value) {
        self.words.insert(offset, value);
    }

    /// Accepts a request delivered by the network.
    ///
    /// # Panics
    ///
    /// Panics if the request is addressed to a different module.
    pub fn push_request(&mut self, msg: Message) {
        assert_eq!(msg.addr.mm, self.mm, "request delivered to wrong module");
        if self.dead {
            // Discarded before application: the issuing PE's retry (after
            // translation re-hashes around this module) is the request's
            // first and only application.
            self.stats.dead_discards.incr();
            return;
        }
        self.queue.push_back(msg);
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
    }

    /// Requests waiting (not counting the one in service).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Whether any work (queued, in service, or undelivered replies)
    /// remains.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_none() && self.outbox.is_empty()
    }

    /// Advances one cycle: starts service if idle, and completes the
    /// in-flight request when its time is up, moving the reply to the
    /// outbox.
    pub fn cycle(&mut self, now: Cycle) {
        if self.in_service.is_none() {
            if let Some(msg) = self.queue.pop_front() {
                self.in_service = Some((now + self.service_time, msg));
            }
        }
        if self.in_service.is_some() {
            self.stats.busy_cycles.incr();
        }
        if let Some((done_at, _)) = self.in_service {
            if now + 1 >= done_at {
                let (_, msg) = self.in_service.take().expect("checked");
                self.serve(&msg);
            }
        }
    }

    /// Serves one request at completion time: consults the dedup cache
    /// (when enabled), applies the request at most once, and enqueues the
    /// reply owed (if any).
    fn serve(&mut self, msg: &Message) {
        if let Some(seen) = &self.seen {
            if let Some(dup) = msg.folded.iter().find_map(|id| seen.get(id)) {
                // Some constituent of this request was already applied —
                // never apply again. Retries carry exactly one folded id,
                // so a cached exact value answers the duplicate directly;
                // a `None` marker means the value only exists in the
                // combining tree's decombined reply, which is still en
                // route (replies are never lost), so stay silent.
                match *dup {
                    Some(value) => {
                        self.stats.dedup_hits.incr();
                        self.outbox.push_back(Reply::to_request(msg, value));
                    }
                    None => self.stats.dedup_swallowed.incr(),
                }
                return;
            }
        }
        let value = self.apply(msg);
        if let Some(seen) = &mut self.seen {
            // The survivor id's observed value is exactly `value`; the
            // absorbed constituents' values live in the wait buffers.
            for &id in &msg.folded {
                seen.insert(id, if id == msg.id { Some(value) } else { None });
            }
        }
        self.outbox.push_back(Reply::to_request(msg, value));
    }

    /// The MNI ALU: applies one request to the memory array and returns the
    /// reply value (the old value for loads and fetch-and-phis; zero for
    /// store acknowledgements).
    pub fn apply(&mut self, msg: &Message) -> Value {
        self.stats.served.incr();
        let slot = self.words.entry(msg.addr.offset).or_insert(0);
        match msg.kind {
            MsgKind::Load => {
                self.stats.loads.incr();
                *slot
            }
            MsgKind::Store => {
                self.stats.stores.incr();
                *slot = msg.value;
                0
            }
            MsgKind::FetchPhi(op) => {
                self.stats.fetch_phis.incr();
                let old = *slot;
                *slot = op.apply(old, msg.value);
                old
            }
        }
    }

    /// The oldest undelivered reply, if any.
    #[must_use]
    pub fn peek_reply(&self) -> Option<&Reply> {
        self.outbox.front()
    }

    /// Removes and returns the oldest undelivered reply.
    pub fn pop_reply(&mut self) -> Option<Reply> {
        self.outbox.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_net::message::{MsgId, PhiOp, ReplyKind};
    use ultra_sim::{MemAddr, PeId};

    fn req(id: u64, kind: MsgKind, offset: usize, value: Value) -> Message {
        Message::request(
            MsgId(id),
            kind,
            MemAddr::new(MmId(0), offset),
            value,
            PeId(1),
            0,
        )
    }

    #[test]
    fn unwritten_words_read_zero() {
        let bank = MemBank::new(MmId(0), 1);
        assert_eq!(bank.peek(12345), 0);
    }

    #[test]
    fn bank_state_round_trips_through_wire() {
        let mut bank = MemBank::new(MmId(0), 2);
        bank.enable_dedup();
        bank.set_service_time(5); // a slow-MM fault took effect
        bank.push_request(req(1, MsgKind::Store, 7, 42));
        bank.push_request(req(2, MsgKind::fetch_add(), 7, 1));
        bank.cycle(0); // request 1 enters service, mid-flight at snapshot
        let mut w = WireWriter::new();
        bank.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut twin = MemBank::decode(&mut r).expect("decode");
        assert!(r.is_empty());
        // Both finish the queued work identically.
        for now in 1..30 {
            bank.cycle(now);
            twin.cycle(now);
            assert_eq!(bank.pop_reply(), twin.pop_reply());
        }
        assert_eq!(bank.peek(7), twin.peek(7));
        assert_eq!(bank.stats().served.get(), twin.stats().served.get());
        // Corrupting the service time to zero is an error, not a panic.
        let mut w = WireWriter::new();
        bank.encode(&mut w);
        let good = w.into_bytes();
        for cut in 0..good.len() {
            let mut r = WireReader::new(&good[..cut]);
            assert!(MemBank::decode(&mut r).is_err());
        }
    }

    #[test]
    fn service_takes_configured_time() {
        let mut bank = MemBank::new(MmId(0), 3);
        bank.push_request(req(1, MsgKind::Load, 0, 0));
        bank.cycle(0); // starts service, completes at cycle 3
        assert!(bank.pop_reply().is_none());
        bank.cycle(1);
        assert!(bank.pop_reply().is_none());
        bank.cycle(2); // now + 1 == done_at
        assert!(bank.pop_reply().is_some());
    }

    #[test]
    fn single_cycle_service() {
        let mut bank = MemBank::new(MmId(0), 1);
        bank.push_request(req(1, MsgKind::Load, 0, 0));
        bank.cycle(0);
        assert!(
            bank.pop_reply().is_some(),
            "1-cycle service completes immediately"
        );
    }

    #[test]
    fn load_store_roundtrip() {
        let mut bank = MemBank::new(MmId(0), 1);
        bank.push_request(req(1, MsgKind::Store, 7, 55));
        bank.push_request(req(2, MsgKind::Load, 7, 0));
        bank.cycle(0);
        bank.cycle(1);
        let ack = bank.pop_reply().unwrap();
        assert_eq!(ack.kind, ReplyKind::Ack);
        let loaded = bank.pop_reply().unwrap();
        assert_eq!(loaded.kind, ReplyKind::Value);
        assert_eq!(loaded.value, 55);
    }

    #[test]
    fn fifo_service_order() {
        let mut bank = MemBank::new(MmId(0), 1);
        for i in 0..5 {
            bank.push_request(req(i, MsgKind::Store, 0, i as Value));
        }
        for now in 0..5 {
            bank.cycle(now);
        }
        assert_eq!(bank.peek(0), 4, "last store wins under FIFO");
        assert_eq!(bank.stats().served.get(), 5);
        assert_eq!(bank.stats().max_queue_depth, 5);
    }

    #[test]
    fn fetch_phi_ops_apply() {
        let mut bank = MemBank::new(MmId(0), 1);
        bank.poke(3, 0b1100);
        let old = bank.apply(&req(1, MsgKind::FetchPhi(PhiOp::And), 3, 0b1010));
        assert_eq!(old, 0b1100);
        assert_eq!(bank.peek(3), 0b1000);
        let old = bank.apply(&req(2, MsgKind::FetchPhi(PhiOp::Second), 3, 99));
        assert_eq!(old, 0b1000, "swap returns old");
        assert_eq!(bank.peek(3), 99);
    }

    #[test]
    #[should_panic(expected = "wrong module")]
    fn rejects_misrouted_request() {
        let mut bank = MemBank::new(MmId(1), 1);
        bank.push_request(req(1, MsgKind::Load, 0, 0));
    }

    #[test]
    fn killed_module_discards_everything() {
        let mut bank = MemBank::new(MmId(0), 2);
        bank.poke(3, 42);
        bank.push_request(req(1, MsgKind::Load, 0, 0));
        bank.cycle(0);
        bank.kill();
        assert!(bank.is_dead());
        assert!(bank.is_idle(), "all in-flight work discarded");
        assert_eq!(bank.peek(3), 0, "contents lost");
        bank.push_request(req(2, MsgKind::Store, 0, 9));
        assert!(bank.is_idle(), "dead module accepts nothing");
        for now in 0..10 {
            bank.cycle(now);
        }
        assert!(bank.pop_reply().is_none());
        assert_eq!(bank.stats().dead_discards.get(), 2);
    }

    #[test]
    fn slow_module_takes_longer_per_request() {
        let mut bank = MemBank::new(MmId(0), 1);
        bank.set_service_time(4);
        assert_eq!(bank.service_time(), 4);
        bank.push_request(req(1, MsgKind::Load, 0, 0));
        for now in 0..3 {
            bank.cycle(now);
            assert!(bank.peek_reply().is_none(), "still serving at {now}");
        }
        bank.cycle(3);
        assert!(bank.pop_reply().is_some());
    }

    #[test]
    fn dedup_answers_duplicate_without_reapplying() {
        let mut bank = MemBank::new(MmId(0), 1);
        bank.enable_dedup();
        bank.push_request(req(7, MsgKind::FetchPhi(PhiOp::Add), 0, 5));
        bank.cycle(0);
        assert_eq!(bank.pop_reply().unwrap().value, 0);
        assert_eq!(bank.peek(0), 5);
        // A (spurious) retry of the same sequence number arrives later.
        let mut dup = req(7, MsgKind::FetchPhi(PhiOp::Add), 0, 5);
        dup = dup.as_retry(1, 10);
        bank.push_request(dup);
        bank.cycle(10);
        let r = bank.pop_reply().unwrap();
        assert_eq!(r.value, 0, "duplicate observes the original's value");
        assert_eq!(r.attempt, 1, "reply tagged with the retry attempt");
        assert_eq!(bank.peek(0), 5, "applied exactly once");
        assert_eq!(bank.stats().dedup_hits.get(), 1);
    }

    #[test]
    fn dedup_swallows_retry_of_absorbed_constituent() {
        let mut bank = MemBank::new(MmId(0), 1);
        bank.enable_dedup();
        // A combined amalgam: survivor id 1 folding ids 1 and 2.
        let mut amalgam = req(1, MsgKind::FetchPhi(PhiOp::Add), 0, 8);
        amalgam.folded = vec![MsgId(1), MsgId(2)].into();
        bank.push_request(amalgam);
        bank.cycle(0);
        assert_eq!(bank.pop_reply().unwrap().value, 0);
        assert_eq!(bank.peek(0), 8);
        // Retry of the absorbed constituent 2: its exact value lives in
        // the combining tree, so the module must not invent one.
        let dup = req(2, MsgKind::FetchPhi(PhiOp::Add), 0, 3).as_retry(1, 10);
        bank.push_request(dup);
        bank.cycle(10);
        assert!(bank.pop_reply().is_none(), "swallowed, not re-applied");
        assert_eq!(bank.peek(0), 8, "applied exactly once");
        assert_eq!(bank.stats().dedup_swallowed.get(), 1);
        // Retry of the survivor id 1 is answered from the cache.
        let dup = req(1, MsgKind::FetchPhi(PhiOp::Add), 0, 8).as_retry(1, 20);
        bank.push_request(dup);
        bank.cycle(20);
        assert_eq!(bank.pop_reply().unwrap().value, 0);
        assert_eq!(bank.peek(0), 8);
    }

    #[test]
    fn idle_tracking() {
        let mut bank = MemBank::new(MmId(0), 2);
        assert!(bank.is_idle());
        bank.push_request(req(1, MsgKind::Load, 0, 0));
        assert!(!bank.is_idle());
        bank.cycle(0);
        bank.cycle(1);
        assert!(!bank.is_idle(), "reply still in outbox");
        let _ = bank.pop_reply();
        assert!(bank.is_idle());
        assert_eq!(bank.stats().busy_cycles.get(), 2);
    }
}

//! One memory module with its memory-network interface.

use std::collections::{HashMap, VecDeque};

use ultra_net::message::{Message, MsgKind, Reply};
use ultra_sim::{Counter, Cycle, MmId, Value};

/// Instrumentation for one memory bank.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Requests fully served.
    pub served: Counter,
    /// Loads served.
    pub loads: Counter,
    /// Stores served.
    pub stores: Counter,
    /// Fetch-and-phi operations served.
    pub fetch_phis: Counter,
    /// Largest request-queue depth observed — the §3.1.4 "potential serial
    /// bottleneck" indicator.
    pub max_queue_depth: usize,
    /// Cycles during which the module was actively serving a request.
    pub busy_cycles: Counter,
}

/// A memory module plus its MNI: FIFO request queue, fixed service time,
/// fetch-and-phi ALU, and a reply outbox.
///
/// All words read as zero until written — convenient for the shared
/// counters and queue bounds of the paper's algorithms, which all start at
/// zero.
#[derive(Debug, Clone)]
pub struct MemBank {
    mm: MmId,
    words: HashMap<usize, Value>,
    queue: VecDeque<Message>,
    /// The request in service and the cycle it completes.
    in_service: Option<(Cycle, Message)>,
    outbox: VecDeque<Reply>,
    service_time: Cycle,
    stats: MemStats,
}

impl MemBank {
    /// Creates an empty module `mm` that serves one request every
    /// `service_time` cycles (§4.2 uses two network cycles).
    ///
    /// # Panics
    ///
    /// Panics if `service_time` is zero.
    #[must_use]
    pub fn new(mm: MmId, service_time: Cycle) -> Self {
        assert!(service_time >= 1, "service time must be at least one cycle");
        Self {
            mm,
            words: HashMap::new(),
            queue: VecDeque::new(),
            in_service: None,
            outbox: VecDeque::new(),
            service_time,
            stats: MemStats::default(),
        }
    }

    /// This module's id.
    #[must_use]
    pub fn mm(&self) -> MmId {
        self.mm
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Directly reads a word (test setup / result extraction; not timed).
    #[must_use]
    pub fn peek(&self, offset: usize) -> Value {
        self.words.get(&offset).copied().unwrap_or(0)
    }

    /// Directly writes a word (initialization; not timed).
    pub fn poke(&mut self, offset: usize, value: Value) {
        self.words.insert(offset, value);
    }

    /// Accepts a request delivered by the network.
    ///
    /// # Panics
    ///
    /// Panics if the request is addressed to a different module.
    pub fn push_request(&mut self, msg: Message) {
        assert_eq!(msg.addr.mm, self.mm, "request delivered to wrong module");
        self.queue.push_back(msg);
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
    }

    /// Requests waiting (not counting the one in service).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Whether any work (queued, in service, or undelivered replies)
    /// remains.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_none() && self.outbox.is_empty()
    }

    /// Advances one cycle: starts service if idle, and completes the
    /// in-flight request when its time is up, moving the reply to the
    /// outbox.
    pub fn cycle(&mut self, now: Cycle) {
        if self.in_service.is_none() {
            if let Some(msg) = self.queue.pop_front() {
                self.in_service = Some((now + self.service_time, msg));
            }
        }
        if self.in_service.is_some() {
            self.stats.busy_cycles.incr();
        }
        if let Some((done_at, _)) = self.in_service {
            if now + 1 >= done_at {
                let (_, msg) = self.in_service.take().expect("checked");
                let value = self.apply(&msg);
                self.outbox.push_back(Reply::to_request(&msg, value));
            }
        }
    }

    /// The MNI ALU: applies one request to the memory array and returns the
    /// reply value (the old value for loads and fetch-and-phis; zero for
    /// store acknowledgements).
    pub fn apply(&mut self, msg: &Message) -> Value {
        self.stats.served.incr();
        let slot = self.words.entry(msg.addr.offset).or_insert(0);
        match msg.kind {
            MsgKind::Load => {
                self.stats.loads.incr();
                *slot
            }
            MsgKind::Store => {
                self.stats.stores.incr();
                *slot = msg.value;
                0
            }
            MsgKind::FetchPhi(op) => {
                self.stats.fetch_phis.incr();
                let old = *slot;
                *slot = op.apply(old, msg.value);
                old
            }
        }
    }

    /// The oldest undelivered reply, if any.
    #[must_use]
    pub fn peek_reply(&self) -> Option<&Reply> {
        self.outbox.front()
    }

    /// Removes and returns the oldest undelivered reply.
    pub fn pop_reply(&mut self) -> Option<Reply> {
        self.outbox.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_net::message::{MsgId, PhiOp, ReplyKind};
    use ultra_sim::{MemAddr, PeId};

    fn req(id: u64, kind: MsgKind, offset: usize, value: Value) -> Message {
        Message::request(
            MsgId(id),
            kind,
            MemAddr::new(MmId(0), offset),
            value,
            PeId(1),
            0,
        )
    }

    #[test]
    fn unwritten_words_read_zero() {
        let bank = MemBank::new(MmId(0), 1);
        assert_eq!(bank.peek(12345), 0);
    }

    #[test]
    fn service_takes_configured_time() {
        let mut bank = MemBank::new(MmId(0), 3);
        bank.push_request(req(1, MsgKind::Load, 0, 0));
        bank.cycle(0); // starts service, completes at cycle 3
        assert!(bank.pop_reply().is_none());
        bank.cycle(1);
        assert!(bank.pop_reply().is_none());
        bank.cycle(2); // now + 1 == done_at
        assert!(bank.pop_reply().is_some());
    }

    #[test]
    fn single_cycle_service() {
        let mut bank = MemBank::new(MmId(0), 1);
        bank.push_request(req(1, MsgKind::Load, 0, 0));
        bank.cycle(0);
        assert!(
            bank.pop_reply().is_some(),
            "1-cycle service completes immediately"
        );
    }

    #[test]
    fn load_store_roundtrip() {
        let mut bank = MemBank::new(MmId(0), 1);
        bank.push_request(req(1, MsgKind::Store, 7, 55));
        bank.push_request(req(2, MsgKind::Load, 7, 0));
        bank.cycle(0);
        bank.cycle(1);
        let ack = bank.pop_reply().unwrap();
        assert_eq!(ack.kind, ReplyKind::Ack);
        let loaded = bank.pop_reply().unwrap();
        assert_eq!(loaded.kind, ReplyKind::Value);
        assert_eq!(loaded.value, 55);
    }

    #[test]
    fn fifo_service_order() {
        let mut bank = MemBank::new(MmId(0), 1);
        for i in 0..5 {
            bank.push_request(req(i, MsgKind::Store, 0, i as Value));
        }
        for now in 0..5 {
            bank.cycle(now);
        }
        assert_eq!(bank.peek(0), 4, "last store wins under FIFO");
        assert_eq!(bank.stats().served.get(), 5);
        assert_eq!(bank.stats().max_queue_depth, 5);
    }

    #[test]
    fn fetch_phi_ops_apply() {
        let mut bank = MemBank::new(MmId(0), 1);
        bank.poke(3, 0b1100);
        let old = bank.apply(&req(1, MsgKind::FetchPhi(PhiOp::And), 3, 0b1010));
        assert_eq!(old, 0b1100);
        assert_eq!(bank.peek(3), 0b1000);
        let old = bank.apply(&req(2, MsgKind::FetchPhi(PhiOp::Second), 3, 99));
        assert_eq!(old, 0b1000, "swap returns old");
        assert_eq!(bank.peek(3), 99);
    }

    #[test]
    #[should_panic(expected = "wrong module")]
    fn rejects_misrouted_request() {
        let mut bank = MemBank::new(MmId(1), 1);
        bank.push_request(req(1, MsgKind::Load, 0, 0));
    }

    #[test]
    fn idle_tracking() {
        let mut bank = MemBank::new(MmId(0), 2);
        assert!(bank.is_idle());
        bank.push_request(req(1, MsgKind::Load, 0, 0));
        assert!(!bank.is_idle());
        bank.cycle(0);
        bank.cycle(1);
        assert!(!bank.is_idle(), "reply still in outbox");
        let _ = bank.pop_reply();
        assert!(bank.is_idle());
        assert_eq!(bank.stats().busy_cycles.get(), 2);
    }
}

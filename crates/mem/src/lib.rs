//! Memory modules (MMs) and memory-network interfaces (MNIs) for the
//! Ultracomputer (paper §3.1.3, §3.1.4, §3.5).
//!
//! "The MMs are standard components consisting of off the shelf memory
//! chips" (§3.5); the interesting part is the **MNI**: "By including adders
//! in the MNI's, the fetch-and-add operation can be easily implemented:
//! When F&A(X,e) is transmitted through the network and reaches the MNI
//! associated with the MM containing X, the value of X and the transmitted
//! e are brought to the MNI adder, the sum is stored in X, and the old
//! value of X is returned through the network to the requesting PE"
//! (§3.1.3). [`MemBank`] models an MM with its MNI: a FIFO of arrived
//! requests, a fixed service time, the fetch-and-phi ALU, and an outbox of
//! replies awaiting injection into the reverse network.
//!
//! [`hash::AddressHasher`] implements §3.1.4: "introducing a hashing
//! function when translating the virtual address to a physical address
//! assures that this unfavorable situation [all PEs hitting one MM] occurs
//! with probability approaching zero as N increases."
//!
//! # Example
//!
//! ```
//! use ultra_mem::MemBank;
//! use ultra_net::message::{Message, MsgId, MsgKind};
//! use ultra_sim::{MemAddr, MmId, PeId};
//!
//! let mut bank = MemBank::new(MmId(0), 2);
//! bank.poke(5, 100);
//! let req = Message::request(
//!     MsgId(1),
//!     MsgKind::fetch_add(),
//!     MemAddr::new(MmId(0), 5),
//!     7,
//!     PeId(3),
//!     0,
//! );
//! bank.push_request(req);
//! bank.cycle(0);
//! bank.cycle(1);
//! bank.cycle(2);
//! let reply = bank.pop_reply().expect("served after 2 cycles");
//! assert_eq!(reply.value, 100, "fetch-and-add returns the old value");
//! assert_eq!(bank.peek(5), 107);
//! ```

pub mod bank;
pub mod hash;

pub use bank::{MemBank, MemStats};
pub use hash::{AddressHasher, TranslationMode};

//! Host crate for the repository-root `tests/` directory: integration
//! tests that span the whole workspace (machine end-to-end runs, the
//! combining ablation, serialization-principle property tests, workload
//! smoke tests, and native-algorithm stress tests).
//!
//! The crate itself intentionally exports nothing; see `../../tests/`.

//! §5's efficiency methodology: measure, fit, project (Tables 2 and 3).
//!
//! "An analysis of the parallel variant of this program shows that the
//! time required to reduce an N by N matrix using P processors is well
//! approximated by `T(P,N) = aN + dN³/P + W(P,N)` … We determined the
//! constants experimentally by simulating TRED2 for several (P,N) pairs
//! and measuring both the total time T and the waiting time W."
//!
//! [`measure_tred2`] runs the TRED2 generator on the ideal-backend
//! machine (the paper's WASHCLOTH setting) and extracts `T` and `W`;
//! [`EfficiencyModel::fit`] recovers `a` and `b` by least squares and
//! models `W` with the paper's observation that it is
//! "of order max(N, P^.5)"; efficiencies are then
//! `E(P,N) = T(1,N) / (P·T(P,N))` — with waiting (Table 2) or with the
//! waiting recovered, `W := 0` (Table 3: "If we make the optimistic
//! assumption that all the waiting time can be recovered").

use ultracomputer::machine::MachineBuilder;
use ultracomputer::report::MachineReport;

use crate::tred2::Tred2;

/// One simulated (P, N) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// PE count.
    pub p: usize,
    /// Matrix dimension.
    pub n: usize,
    /// Total run time in PE instruction times.
    pub t: f64,
    /// Average per-PE waiting (barrier) time in PE instruction times.
    pub w: f64,
}

/// Runs TRED2 on `p` ideal-backend PEs for an `n×n` matrix and measures
/// `T` and `W`.
///
/// # Panics
///
/// Panics if the machine fails to drain (a generator bug).
#[must_use]
pub fn measure_tred2(p: usize, n: usize, seed: u64) -> Measurement {
    let mut machine = MachineBuilder::new(p)
        .ideal(2)
        .seed(seed)
        .build_spmd(&Tred2::new(n).program());
    let outcome = machine.run();
    assert!(outcome.completed, "TRED2 must complete (p={p}, n={n})");
    let report = MachineReport::from_machine(&machine);
    let w_cycles = machine.merged_pe_stats().barrier_wait_cycles.get() as f64 / p as f64;
    Measurement {
        p,
        n,
        t: report.instruction_times(),
        w: report.time.cycles_to_instructions(1) * w_cycles,
    }
}

/// The fitted `T(P,N) = aN + bN³/P + W(P,N)` model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyModel {
    /// Serial per-step overhead coefficient.
    pub a: f64,
    /// Divisible-work coefficient.
    pub b: f64,
    /// Waiting-time coefficient on `N`.
    pub w_n: f64,
    /// Waiting-time coefficient on `√P`.
    pub w_sqrt_p: f64,
}

/// Solves the 2×2 least-squares problem `y ≈ c₁·x₁ + c₂·x₂`.
fn lsq2(rows: &[(f64, f64, f64)]) -> (f64, f64) {
    let (mut s11, mut s12, mut s22, mut sy1, mut sy2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(x1, x2, y) in rows {
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        sy1 += x1 * y;
        sy2 += x2 * y;
    }
    let det = s11 * s22 - s12 * s12;
    assert!(det.abs() > 1e-9, "degenerate design matrix");
    ((s22 * sy1 - s12 * sy2) / det, (s11 * sy2 - s12 * sy1) / det)
}

impl EfficiencyModel {
    /// Fits the model to measurements (the paper's "determined the
    /// constants experimentally").
    ///
    /// # Panics
    ///
    /// Panics with fewer than two measurements or a degenerate design.
    #[must_use]
    pub fn fit(measurements: &[Measurement]) -> Self {
        assert!(measurements.len() >= 2, "need at least two (P,N) points");
        let work_rows: Vec<(f64, f64, f64)> = measurements
            .iter()
            .map(|m| {
                let n = m.n as f64;
                (n, n * n * n / m.p as f64, m.t - m.w)
            })
            .collect();
        let (a, b) = lsq2(&work_rows);
        let wait_rows: Vec<(f64, f64, f64)> = measurements
            .iter()
            .map(|m| (m.n as f64, (m.p as f64).sqrt(), m.w))
            .collect();
        let (w_n, w_sqrt_p) = lsq2(&wait_rows);
        Self {
            a,
            b,
            w_n: w_n.max(0.0),
            w_sqrt_p: w_sqrt_p.max(0.0),
        }
    }

    /// Modelled waiting time `W(P,N)` — "of order max(N, P^.5)".
    #[must_use]
    pub fn waiting(&self, p: usize, n: usize) -> f64 {
        if p == 1 {
            0.0
        } else {
            self.w_n * n as f64 + self.w_sqrt_p * (p as f64).sqrt()
        }
    }

    /// Modelled `T(P,N)` including waiting.
    #[must_use]
    pub fn t(&self, p: usize, n: usize) -> f64 {
        let nf = n as f64;
        self.a * nf + self.b * nf * nf * nf / p as f64 + self.waiting(p, n)
    }

    /// Serial time `T(1,N)`.
    #[must_use]
    pub fn t1(&self, n: usize) -> f64 {
        self.t(1, n)
    }

    /// Table 2's efficiency: `E(P,N) = T(1,N) / (P·T(P,N))`.
    #[must_use]
    pub fn efficiency(&self, p: usize, n: usize) -> f64 {
        self.t1(n) / (p as f64 * self.t(p, n))
    }

    /// Table 3's efficiency: waiting time assumed recovered (`W := 0`).
    #[must_use]
    pub fn efficiency_no_wait(&self, p: usize, n: usize) -> f64 {
        let nf = n as f64;
        let t = self.a * nf + self.b * nf * nf * nf / p as f64;
        self.t1(n) / (p as f64 * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsq2_recovers_exact_coefficients() {
        let rows: Vec<(f64, f64, f64)> = (1..10)
            .map(|i| {
                let x1 = i as f64;
                let x2 = (i * i) as f64;
                (x1, x2, 3.0 * x1 + 0.5 * x2)
            })
            .collect();
        let (c1, c2) = lsq2(&rows);
        assert!((c1 - 3.0).abs() < 1e-9);
        assert!((c2 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_synthetic_model() {
        let truth = EfficiencyModel {
            a: 120.0,
            b: 35.0,
            w_n: 2.0,
            w_sqrt_p: 10.0,
        };
        let ms: Vec<Measurement> = [(4usize, 16usize), (4, 32), (16, 16), (16, 32), (16, 64)]
            .iter()
            .map(|&(p, n)| Measurement {
                p,
                n,
                t: truth.t(p, n),
                w: truth.waiting(p, n),
            })
            .collect();
        let fit = EfficiencyModel::fit(&ms);
        assert!((fit.a - truth.a).abs() / truth.a < 1e-6);
        assert!((fit.b - truth.b).abs() / truth.b < 1e-6);
        assert!((fit.w_n - truth.w_n).abs() < 1e-6);
        assert!((fit.w_sqrt_p - truth.w_sqrt_p).abs() < 1e-6);
    }

    #[test]
    fn measured_tred2_has_speedup_structure() {
        // T decreases with P for fixed N; W is positive for P > 1.
        let m4 = measure_tred2(4, 20, 1);
        let m16 = measure_tred2(16, 20, 1);
        assert!(m16.t < m4.t, "T(16,20)={} !< T(4,20)={}", m16.t, m4.t);
        assert!(m16.w > 0.0);
    }

    #[test]
    fn efficiency_table_shape_matches_paper() {
        // Fit from small measured pairs, then check the monotonic shape of
        // Table 2/3: efficiency falls with P at fixed N and rises with N
        // at fixed P.
        let ms: Vec<Measurement> = [
            (4usize, 12usize),
            (4, 24),
            (8, 12),
            (8, 24),
            (16, 24),
            (16, 36),
        ]
        .iter()
        .map(|&(p, n)| measure_tred2(p, n, 7))
        .collect();
        let model = EfficiencyModel::fit(&ms);
        assert!(model.a > 0.0, "a = {}", model.a);
        assert!(model.b > 0.0, "b = {}", model.b);
        for &n in &[16usize, 64, 256] {
            for &(p_lo, p_hi) in &[(16usize, 64usize), (64, 256)] {
                assert!(
                    model.efficiency(p_lo, n) > model.efficiency(p_hi, n),
                    "E must fall with P at N={n}"
                );
            }
        }
        for &p in &[16usize, 64] {
            assert!(
                model.efficiency(p, 64) > model.efficiency(p, 16),
                "E must rise with N at P={p}"
            );
        }
        // Table 3 dominates Table 2 pointwise.
        for &n in &[16usize, 64] {
            for &p in &[16usize, 64, 256] {
                assert!(model.efficiency_no_wait(p, n) >= model.efficiency(p, n));
            }
        }
        // Diagonal structure: big machines need big problems — on the
        // (P = N²/16) diagonal efficiency is roughly constant (Table 2's
        // visible diagonal bands).
        let e1 = model.efficiency(16, 16);
        let e2 = model.efficiency(64, 32);
        assert!((e1 - e2).abs() < 0.25, "diagonal bands: {e1} vs {e2}");
    }
}

//! Parallel TRED2: Householder reduction to tridiagonal form (§5).
//!
//! "A parallelized variant of the program TRED2 (taken from Argonne's
//! EISPACK), which uses Householder's method to reduce a real symmetric
//! matrix to tridiagonal form." Its parallel structure (Korn's analysis,
//! which the paper quotes) is:
//!
//! `T(P,N) = aN + bN³/P + W(P,N)`
//!
//! — a *serial per-step overhead* every PE executes (loop initializations,
//! `aN` over the `N−2` steps), *divisible work* (the rank-2 submatrix
//! update, `Σ j² ≈ N³/3`), and *waiting time* at the per-phase barriers.
//!
//! The generator reproduces that shape exactly: per step `s` over the
//! shrinking submatrix of size `m = N−1−s`, a self-scheduled vector phase
//! over `⌈m/group⌉` work groups, a barrier, a self-scheduled update phase
//! over `m` rows whose inner loops walk the row in groups, and a second
//! barrier. Work-group instruction mixes default to Table 1's TRED2 row
//! (≈0.25 memory references and ≈0.05 shared references per instruction).

use ultracomputer::program::{body, Expr, Op, Program};

/// Base address of the (synthetic) matrix.
pub const MATRIX_BASE: usize = 1 << 20;
/// Base address of the Householder scratch vector.
pub const VECTOR_BASE: usize = 1 << 24;
/// Base address of the per-step self-scheduling counters.
pub const COUNTER_BASE: usize = 1 << 28;

/// TRED2 workload generator.
///
/// # Example
///
/// ```
/// use ultra_workloads::Tred2;
/// use ultracomputer::machine::MachineBuilder;
///
/// let mut machine = MachineBuilder::new(4)
///     .ideal(2)
///     .build_spmd(&Tred2::new(12).program());
/// assert!(machine.run().completed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tred2 {
    /// Matrix dimension `N`.
    pub n: usize,
    /// Elements handled per claimed work group.
    pub group: usize,
    /// Per-step serial overhead instructions (the `aN` term's `a`).
    pub overhead_instr: u32,
    /// Pure-compute instructions per work group.
    pub group_compute: u32,
    /// Cache-satisfied references per work group.
    pub group_private: u32,
}

impl Tred2 {
    /// Defaults tuned to Table 1's TRED2 reference mix.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (no reduction steps would remain).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "TRED2 needs at least a 3x3 matrix");
        Self {
            n,
            group: 6,
            overhead_instr: 12,
            group_compute: 34,
            group_private: 9,
        }
    }

    /// Builds the per-PE program (parameters: 0 = N, 1 = group size).
    #[must_use]
    pub fn program(&self) -> Program {
        let n = Expr::Param(0);
        let g = self.group as i64;
        // r7 = step, r6 = m (submatrix size), r5 = group count,
        // r4 = claimed index, r3 = inner index, r2/r1 = load targets.
        let step = Expr::Reg(7);
        let m = Expr::Reg(6);

        // Phase 1: build the Householder vector — ⌈m/group⌉ groups, each
        // loading a representative column element and storing a partial.
        let phase1_body = body(vec![
            // Prefetch the column element, overlap with the group compute.
            Op::Load {
                addr: Expr::add(MATRIX_BASE as i64, Expr::mul(Expr::Reg(4), g)),
                dst: 2,
            },
            Op::Compute(self.group_compute),
            Op::PrivateRef(self.group_private),
            Op::Store {
                addr: Expr::add(VECTOR_BASE as i64, Expr::Reg(4)),
                value: Expr::add(Expr::Reg(2), 1),
            },
        ]);

        // Phase 2: the rank-2 update — the m×m submatrix flattened into
        // element groups so every claim is the same small quantum
        // (fine-grain self-scheduling keeps the pre-barrier straggler
        // time down to one group regardless of m).
        let phase2_group = body(vec![
            Op::Load {
                addr: Expr::add(MATRIX_BASE as i64, Expr::mul(Expr::Reg(4), g)),
                dst: 2,
            },
            Op::Compute(self.group_compute),
            Op::PrivateRef(self.group_private),
            Op::Store {
                addr: Expr::add(MATRIX_BASE as i64, Expr::mul(Expr::Reg(4), g)),
                value: Expr::add(Expr::Reg(2), 1),
            },
        ]);

        let step_body = body(vec![
            // Serial per-step overhead executed by every PE — the aN term.
            Op::Compute(self.overhead_instr),
            // m = N - 1 - step.
            Op::Set {
                reg: 6,
                value: Expr::sub(Expr::sub(n.clone(), 1), step.clone()),
            },
            // Phase 1 group count = ceil(m / group).
            Op::Set {
                reg: 5,
                value: Expr::div(Expr::add(m.clone(), g - 1), g),
            },
            Op::SelfSched {
                reg: 4,
                counter: Expr::add(COUNTER_BASE as i64, Expr::mul(step.clone(), 2)),
                limit: Expr::Reg(5),
                body: phase1_body,
            },
            // PEs flow straight from the vector phase into the update
            // phase (separate claim counters keep them disjoint); one
            // barrier per step separates Householder steps.
            Op::SelfSched {
                reg: 4,
                counter: Expr::add(
                    COUNTER_BASE as i64,
                    Expr::add(Expr::mul(step.clone(), 2), 1),
                ),
                limit: Expr::div(Expr::add(Expr::mul(m.clone(), m), g - 1), g),
                body: phase2_group,
            },
            Op::Barrier,
        ]);

        Program::new(
            body(vec![
                Op::For {
                    reg: 7,
                    from: Expr::Const(0),
                    to: Expr::sub(n, 2),
                    body: step_body,
                },
                Op::Halt,
            ]),
            vec![self.n as i64, g],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultracomputer::machine::MachineBuilder;
    use ultracomputer::report::MachineReport;

    #[test]
    fn runs_to_completion_on_both_backends() {
        let prog = Tred2::new(10).program();
        for build in [
            MachineBuilder::new(4).ideal(2),
            MachineBuilder::new(4).network(1),
        ] {
            let mut m = build.build_spmd(&prog);
            assert!(m.run().completed, "TRED2 must drain");
        }
    }

    #[test]
    fn work_claimed_exactly_once_per_step() {
        let n = 10;
        let mut m = MachineBuilder::new(4)
            .ideal(2)
            .build_spmd(&Tred2::new(n).program());
        assert!(m.run().completed);
        // Each phase counter must have been claimed limit + P times
        // (every claim over the limit is one per PE when the loop exits).
        let p = 4;
        for step in 0..(n - 2) {
            let msize = n - 1 - step;
            let c1 = m.read_shared(COUNTER_BASE + step * 2) as usize;
            let c2 = m.read_shared(COUNTER_BASE + step * 2 + 1) as usize;
            assert_eq!(c1, msize.div_ceil(6) + p, "phase 1 counter, step {step}");
            assert_eq!(
                c2,
                (msize * msize).div_ceil(6) + p,
                "phase 2 counter, step {step}"
            );
        }
    }

    #[test]
    fn reference_mix_lands_near_table1() {
        let mut m = MachineBuilder::new(16)
            .ideal(2)
            .build_spmd(&Tred2::new(24).program());
        assert!(m.run().completed);
        let r = MachineReport::from_machine(&m);
        let mem = r.mem_refs_per_instr();
        let shared = r.shared_refs_per_instr();
        // Table 1, TRED2 row: 0.25 and 0.05.
        assert!((0.15..=0.35).contains(&mem), "mem/instr = {mem}");
        assert!((0.02..=0.10).contains(&shared), "shared/instr = {shared}");
    }

    #[test]
    fn more_pes_finish_faster() {
        let prog = Tred2::new(20).program();
        let t4 = {
            let mut m = MachineBuilder::new(4).ideal(2).build_spmd(&prog);
            assert!(m.run().completed);
            m.now()
        };
        let t16 = {
            let mut m = MachineBuilder::new(16).ideal(2).build_spmd(&prog);
            assert!(m.run().completed);
            m.now()
        };
        assert!(
            t16 < t4,
            "16 PEs ({t16} cycles) must beat 4 PEs ({t4} cycles)"
        );
    }

    #[test]
    #[should_panic(expected = "at least a 3x3")]
    fn tiny_matrix_rejected() {
        let _ = Tred2::new(2);
    }
}

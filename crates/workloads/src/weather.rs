//! The "NASA weather program" workload (Table 1, rows 1–2).
//!
//! "A parallel version of part of a NASA weather program (solving a two
//! dimensional PDE)" — modelled as a relaxation over a `G×G` grid:
//! each sweep self-schedules grid rows among the PEs; a row is walked in
//! column groups, each group loading neighbour rows (prefetched over the
//! group's compute), and one barrier separates sweeps. Table 1 reports a
//! *higher* shared-reference density (.08/instr) and idle fraction
//! (37–39 %) than the locality-tuned programs; the default mix lands in
//! that regime.

use ultracomputer::program::{body, Expr, Op, Program};

/// Base address of the grid.
pub const GRID_BASE: usize = 1 << 21;
/// Base address of the per-sweep self-scheduling counters.
pub const COUNTER_BASE: usize = 1 << 28;

/// Weather-code workload generator.
///
/// # Example
///
/// ```
/// use ultra_workloads::Weather;
/// use ultracomputer::machine::MachineBuilder;
///
/// let mut m = MachineBuilder::new(4)
///     .ideal(2)
///     .build_spmd(&Weather::new(16, 2).program());
/// assert!(m.run().completed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Weather {
    /// Grid edge length `G`.
    pub grid: usize,
    /// Number of relaxation sweeps.
    pub sweeps: usize,
    /// Columns per work group.
    pub group: usize,
    /// Pure-compute instructions per group.
    pub group_compute: u32,
    /// Cache-satisfied references per group.
    pub group_private: u32,
}

impl Weather {
    /// Defaults tuned to Table 1's weather rows (mem ≈ .21/instr,
    /// shared ≈ .08/instr).
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 4×4 or there are no sweeps.
    #[must_use]
    pub fn new(grid: usize, sweeps: usize) -> Self {
        assert!(grid >= 4, "grid must be at least 4x4");
        assert!(sweeps >= 1, "need at least one sweep");
        Self {
            grid,
            sweeps,
            group: 8,
            group_compute: 26,
            group_private: 5,
        }
    }

    /// Builds the per-PE program (parameters: 0 = G, 1 = sweeps).
    #[must_use]
    pub fn program(&self) -> Program {
        let g = Expr::Param(0);
        let grp = self.group as i64;
        // r7 = sweep, r4 = claimed row, r3 = column group, r2/r1 = loads.
        let row_addr = |col_group: Expr, row_off: i64| {
            Expr::add(
                GRID_BASE as i64,
                Expr::add(
                    Expr::mul(Expr::add(Expr::Reg(4), row_off), g.clone()),
                    Expr::mul(col_group, grp),
                ),
            )
        };
        let group_body = body(vec![
            // The paper's weather rows show 37-39% idle: that code was not
            // prefetch-tuned, so the neighbour loads here are issued right
            // before their use and stall for most of the round trip (the
            // two loads themselves overlap each other).
            Op::Compute(self.group_compute),
            Op::PrivateRef(self.group_private),
            Op::Load {
                addr: row_addr(Expr::Reg(3), 1),
                dst: 2,
            },
            Op::Load {
                addr: row_addr(Expr::Reg(3), -1),
                dst: 1,
            },
            Op::Store {
                addr: row_addr(Expr::Reg(3), 0),
                value: Expr::add(Expr::Reg(2), Expr::Reg(1)),
            },
        ]);
        let row_body = body(vec![Op::For {
            reg: 3,
            from: Expr::Const(0),
            to: Expr::div(Expr::add(g.clone(), grp - 1), grp),
            body: group_body,
        }]);
        let sweep_body = body(vec![
            Op::Compute(12), // per-sweep setup
            Op::SelfSched {
                reg: 4,
                // Interior rows 1..G-1 are relaxed; claims start at 0 and
                // are shifted by 1 in the address expressions' row_off.
                counter: Expr::add(COUNTER_BASE as i64, Expr::Reg(7)),
                limit: Expr::sub(g.clone(), 2),
                body: row_body,
            },
            Op::Barrier,
        ]);
        Program::new(
            body(vec![
                Op::For {
                    reg: 7,
                    from: Expr::Const(0),
                    to: Expr::Param(1),
                    body: sweep_body,
                },
                Op::Halt,
            ]),
            vec![self.grid as i64, self.sweeps as i64],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultracomputer::machine::MachineBuilder;
    use ultracomputer::report::MachineReport;

    #[test]
    fn runs_on_both_backends() {
        let prog = Weather::new(12, 2).program();
        for build in [
            MachineBuilder::new(4).ideal(2),
            MachineBuilder::new(4).network(1),
        ] {
            let mut m = build.build_spmd(&prog);
            assert!(m.run().completed);
        }
    }

    #[test]
    fn every_interior_row_claimed_once_per_sweep() {
        let (grid, sweeps, pes) = (16, 3, 4);
        let mut m = MachineBuilder::new(pes)
            .ideal(2)
            .build_spmd(&Weather::new(grid, sweeps).program());
        assert!(m.run().completed);
        for sweep in 0..sweeps {
            let claims = m.read_shared(COUNTER_BASE + sweep) as usize;
            assert_eq!(claims, (grid - 2) + pes, "sweep {sweep}");
        }
    }

    #[test]
    fn reference_mix_lands_near_table1() {
        let mut m = MachineBuilder::new(16)
            .ideal(2)
            .build_spmd(&Weather::new(32, 2).program());
        assert!(m.run().completed);
        let r = MachineReport::from_machine(&m);
        let shared = r.shared_refs_per_instr();
        // Table 1 weather rows: .08 shared refs per instruction.
        assert!((0.04..=0.14).contains(&shared), "shared/instr = {shared}");
    }

    #[test]
    #[should_panic(expected = "at least 4x4")]
    fn tiny_grid_rejected() {
        let _ = Weather::new(3, 1);
    }
}

//! Speedup curves for any workload — §5's stated goal: "to measure the
//! obtained parallelism … and to predict the efficiency that future large
//! scale parallel systems can attain."
//!
//! [`speedup_curve`] runs one program on the ideal (paracomputer) backend
//! at a ladder of PE counts and reports speedup and efficiency relative
//! to the single-PE run — the WASHCLOTH methodology, reusable for every
//! generator in this crate.

use ultra_sim::Cycle;
use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::Program;

/// One (P, time) sample of a speedup study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// PE count.
    pub pes: usize,
    /// Run time in cycles.
    pub cycles: Cycle,
    /// `T(1) / T(P)`.
    pub speedup: f64,
    /// `speedup / P`.
    pub efficiency: f64,
}

/// Runs `program` at each PE count in `ladder` (must start at 1) on the
/// ideal backend and returns the curve.
///
/// # Panics
///
/// Panics if the ladder is empty or does not start at 1, or if any run
/// fails to complete.
#[must_use]
pub fn speedup_curve(program: &Program, ladder: &[usize], seed: u64) -> Vec<SpeedupPoint> {
    assert!(
        ladder.first() == Some(&1),
        "ladder must start at P = 1 for the baseline"
    );
    let mut baseline = 0.0;
    ladder
        .iter()
        .map(|&p| {
            let mut machine = MachineBuilder::new(p)
                .ideal(2)
                .seed(seed)
                .build_spmd(program);
            let out = machine.run();
            assert!(out.completed, "P = {p} did not drain");
            if p == 1 {
                baseline = out.cycles as f64;
            }
            let speedup = baseline / out.cycles as f64;
            SpeedupPoint {
                pes: p,
                cycles: out.cycles,
                speedup,
                efficiency: speedup / p as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Multigrid, Tred2, Weather};

    #[test]
    fn tred2_speedup_is_monotone_and_sublinear() {
        let curve = speedup_curve(&Tred2::new(20).program(), &[1, 2, 4, 8], 3);
        assert_eq!(curve.len(), 4);
        assert!((curve[0].speedup - 1.0).abs() < 1e-9);
        for w in curve.windows(2) {
            assert!(w[1].speedup > w[0].speedup, "speedup must grow: {curve:?}");
            assert!(
                w[1].efficiency <= w[0].efficiency + 1e-9,
                "efficiency must not grow with P: {curve:?}"
            );
        }
        assert!(curve[3].speedup <= 8.0 + 1e-9, "no superlinear speedup");
    }

    #[test]
    fn weather_parallelizes_well_at_small_p() {
        let curve = speedup_curve(&Weather::new(32, 2).program(), &[1, 4], 3);
        assert!(
            curve[1].efficiency > 0.5,
            "4-PE weather efficiency {:.2} too low",
            curve[1].efficiency
        );
    }

    #[test]
    fn multigrid_coarse_levels_cap_speedup() {
        // The coarse rungs (4 rows) bound parallelism: at P = 8 efficiency
        // must be visibly below 1.
        let curve = speedup_curve(&Multigrid::new(16, 1).program(), &[1, 8], 3);
        assert!(curve[1].efficiency < 0.95, "{curve:?}");
        assert!(curve[1].speedup > 1.5, "{curve:?}");
    }

    #[test]
    #[should_panic(expected = "must start at P = 1")]
    fn ladder_without_baseline_rejected() {
        let _ = speedup_curve(&Tred2::new(12).program(), &[2, 4], 0);
    }
}

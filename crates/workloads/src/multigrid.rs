//! The multigrid Poisson solver workload (Table 1, row 4).
//!
//! "A multigrid Poisson PDE solver, with 16 PEs" — modelled as V-cycles
//! over a ladder of grids `G, G/2, …, G_min, …, G/2, G`. Each level's rows
//! are self-scheduled; barriers separate levels (restriction and
//! prolongation are data-dependent on neighbouring levels). Like the
//! paper's version, it is "designed to minimize the number of accesses to
//! shared data": the default mix gives ≈.06 shared references per
//! instruction and the lowest idle fraction of the four workloads.

use ultracomputer::program::{body, Expr, Op, Program};

/// Base address of the grid hierarchy (level ℓ at `GRID_BASE << ℓ`… the
/// exact layout only needs distinct addresses per level).
pub const GRID_BASE: usize = 1 << 22;
/// Base address of the per-(cycle, level) scheduling counters.
pub const COUNTER_BASE: usize = 1 << 29;

/// Multigrid workload generator.
///
/// # Example
///
/// ```
/// use ultra_workloads::Multigrid;
/// use ultracomputer::machine::MachineBuilder;
///
/// let mut m = MachineBuilder::new(4)
///     .ideal(2)
///     .build_spmd(&Multigrid::new(32, 1).program());
/// assert!(m.run().completed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Multigrid {
    /// Finest grid edge `G` (power of two).
    pub grid: usize,
    /// Number of V-cycles.
    pub cycles: usize,
    /// Coarsest grid edge.
    pub coarsest: usize,
    /// Columns per work group.
    pub group: usize,
    /// Pure-compute instructions per group.
    pub group_compute: u32,
    /// Cache-satisfied references per group.
    pub group_private: u32,
}

impl Multigrid {
    /// Defaults tuned to Table 1's multigrid row (mem ≈ .24/instr,
    /// shared ≈ .06/instr).
    ///
    /// # Panics
    ///
    /// Panics unless `grid` is a power of two, at least 8.
    #[must_use]
    pub fn new(grid: usize, cycles: usize) -> Self {
        assert!(
            grid.is_power_of_two() && grid >= 8,
            "grid must be a power of two >= 8"
        );
        assert!(cycles >= 1, "need at least one V-cycle");
        Self {
            grid,
            cycles,
            coarsest: 4,
            group: 8,
            group_compute: 37,
            group_private: 9,
        }
    }

    /// The level ladder of one V-cycle: fine → coarse → fine.
    #[must_use]
    pub fn ladder(&self) -> Vec<usize> {
        let mut down: Vec<usize> = Vec::new();
        let mut g = self.grid;
        while g >= self.coarsest {
            down.push(g);
            g /= 2;
        }
        let mut ladder = down.clone();
        ladder.extend(down.iter().rev().skip(1));
        ladder
    }

    /// Builds the per-PE program (parameters: 0 = G, 1 = cycles).
    #[must_use]
    pub fn program(&self) -> Program {
        let grp = self.group as i64;
        let ladder = self.ladder();
        let rungs = ladder.len() as i64;
        // r7 = v-cycle index; r4 = claimed row; r3 = column group;
        // r2 = load target.
        let mut cycle_ops: Vec<Op> = vec![Op::Compute(16)]; // cycle setup
        for (rung, &level_grid) in ladder.iter().enumerate() {
            let lg = level_grid as i64;
            // One level: self-schedule rows of a level_grid-sized grid.
            let group_body = body(vec![
                Op::Load {
                    addr: Expr::add(
                        (GRID_BASE + (rung << 14)) as i64,
                        Expr::add(Expr::mul(Expr::Reg(4), lg), Expr::mul(Expr::Reg(3), grp)),
                    ),
                    dst: 2,
                },
                Op::Compute(self.group_compute),
                Op::PrivateRef(self.group_private),
                Op::Store {
                    addr: Expr::add(
                        (GRID_BASE + (rung << 14)) as i64,
                        Expr::add(Expr::mul(Expr::Reg(4), lg), Expr::mul(Expr::Reg(3), grp)),
                    ),
                    value: Expr::add(Expr::Reg(2), 1),
                },
            ]);
            let row_body = body(vec![Op::For {
                reg: 3,
                from: Expr::Const(0),
                to: Expr::Const((level_grid as i64 + grp - 1) / grp),
                body: group_body,
            }]);
            cycle_ops.push(Op::SelfSched {
                reg: 4,
                counter: Expr::add(
                    COUNTER_BASE as i64,
                    Expr::add(Expr::mul(Expr::Reg(7), rungs), rung as i64),
                ),
                limit: Expr::Const(lg),
                body: row_body,
            });
            cycle_ops.push(Op::Barrier);
        }
        Program::new(
            body(vec![
                Op::For {
                    reg: 7,
                    from: Expr::Const(0),
                    to: Expr::Param(1),
                    body: body(cycle_ops),
                },
                Op::Halt,
            ]),
            vec![self.grid as i64, self.cycles as i64],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultracomputer::machine::MachineBuilder;
    use ultracomputer::report::MachineReport;

    #[test]
    fn ladder_descends_and_ascends() {
        let m = Multigrid::new(32, 1);
        assert_eq!(m.ladder(), vec![32, 16, 8, 4, 8, 16, 32]);
    }

    #[test]
    fn runs_on_both_backends() {
        let prog = Multigrid::new(16, 1).program();
        for build in [
            MachineBuilder::new(4).ideal(2),
            MachineBuilder::new(4).network(1),
        ] {
            let mut m = build.build_spmd(&prog);
            assert!(m.run().completed);
        }
    }

    #[test]
    fn every_level_row_claimed_once() {
        let mg = Multigrid::new(16, 2);
        let pes = 4;
        let mut m = MachineBuilder::new(pes).ideal(2).build_spmd(&mg.program());
        assert!(m.run().completed);
        let ladder = mg.ladder();
        for cycle in 0..2 {
            for (rung, &g) in ladder.iter().enumerate() {
                let claims = m.read_shared(COUNTER_BASE + cycle * ladder.len() + rung) as usize;
                assert_eq!(claims, g + pes, "cycle {cycle} rung {rung}");
            }
        }
    }

    #[test]
    fn reference_mix_lands_near_table1() {
        let mut m = MachineBuilder::new(16)
            .ideal(2)
            .build_spmd(&Multigrid::new(32, 1).program());
        assert!(m.run().completed);
        let r = MachineReport::from_machine(&m);
        let shared = r.shared_refs_per_instr();
        assert!((0.02..=0.10).contains(&shared), "shared/instr = {shared}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_grid_rejected() {
        let _ = Multigrid::new(24, 1);
    }
}

//! Particle-tracking Monte-Carlo workload (§2.5, Kalos et al.).
//!
//! The paper motivates MIMD over vector machines with exactly this class:
//! "Vector and array processors … do not lend themselves well to particle
//! tracking calculations" (Rodrigue et al., quoted in §2.5), while the
//! paracomputer handles them well (Kalos' molecular-simulation studies).
//! The defining traits are *data-dependent control* and *scattered*
//! memory access: each particle takes a random walk through a shared
//! field, and results accumulate into shared tallies — which on this
//! machine are combinable fetch-and-adds.
//!
//! Particles are claimed from a shared counter (self-scheduling: particle
//! work is wildly variable, so static assignment would idle PEs); each
//! step looks up a hash-scattered field cell and every `tally_every`
//! steps fetch-and-adds into one of a few global tallies.

use ultracomputer::program::{body, Expr, Op, Program};

/// Base address of the field table.
pub const FIELD_BASE: usize = 1 << 23;
/// Address of the particle-claim counter.
pub const COUNTER_ADDR: usize = (1 << 28) + 0xFFFF;
/// Base address of the shared tallies.
pub const TALLY_BASE: usize = 1 << 26;

/// Particle-tracking workload generator.
///
/// # Example
///
/// ```
/// use ultra_workloads::Particle;
/// use ultracomputer::machine::MachineBuilder;
///
/// let mut m = MachineBuilder::new(4)
///     .ideal(2)
///     .build_spmd(&Particle::new(64, 10).program());
/// assert!(m.run().completed);
/// assert_eq!(m.read_shared(ultra_workloads::particle::COUNTER_ADDR), 64 + 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Particle {
    /// Number of particles to track.
    pub particles: usize,
    /// Random-walk steps per particle.
    pub steps: usize,
    /// Field table size (cells).
    pub field_cells: usize,
    /// Number of distinct shared tallies.
    pub tallies: usize,
    /// Steps between tally updates.
    pub tally_every: usize,
    /// Pure-compute instructions per step (collision physics).
    pub step_compute: u32,
    /// Cache-satisfied references per step.
    pub step_private: u32,
}

impl Particle {
    /// Defaults giving scattered loads plus a modest combinable-tally rate.
    ///
    /// # Panics
    ///
    /// Panics if `particles` or `steps` is zero.
    #[must_use]
    pub fn new(particles: usize, steps: usize) -> Self {
        assert!(particles >= 1, "need particles to track");
        assert!(steps >= 1, "particles must move");
        Self {
            particles,
            steps,
            field_cells: 4096,
            tallies: 8,
            tally_every: 4,
            step_compute: 30,
            step_private: 7,
        }
    }

    /// Builds the per-PE program (parameters: 0 = particles, 1 = steps).
    #[must_use]
    pub fn program(&self) -> Program {
        // r4 = particle id, r3 = step, r2 = field value.
        let field_addr = Expr::add(
            FIELD_BASE as i64,
            Expr::rem(
                Expr::hash(Expr::Reg(4), Expr::mul(Expr::Reg(3), 2654435761)),
                self.field_cells as i64,
            ),
        );
        let tally_addr = Expr::add(
            TALLY_BASE as i64,
            Expr::rem(Expr::hash(Expr::Reg(4), Expr::Reg(3)), self.tallies as i64),
        );
        let step_body = body(vec![
            Op::Load {
                addr: field_addr,
                dst: 2,
            },
            Op::Compute(self.step_compute),
            Op::PrivateRef(self.step_private),
            // Every tally_every-th step: contribute to a shared tally.
            Op::If {
                cond: ultracomputer::program::Cond::new(
                    Expr::rem(Expr::Reg(3), self.tally_every as i64),
                    ultracomputer::program::CmpOp::Eq,
                    0,
                ),
                then_ops: body(vec![Op::FetchAdd {
                    addr: tally_addr,
                    delta: Expr::add(Expr::Reg(2), 1),
                    dst: None,
                }]),
                else_ops: body(vec![]),
            },
        ]);
        let particle_body = body(vec![Op::For {
            reg: 3,
            from: Expr::Const(0),
            to: Expr::Param(1),
            body: step_body,
        }]);
        Program::new(
            body(vec![
                Op::SelfSched {
                    reg: 4,
                    counter: Expr::Const(COUNTER_ADDR as i64),
                    limit: Expr::Param(0),
                    body: particle_body,
                },
                Op::Halt,
            ]),
            vec![self.particles as i64, self.steps as i64],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultracomputer::machine::MachineBuilder;

    #[test]
    fn runs_on_both_backends() {
        let prog = Particle::new(32, 5).program();
        for build in [
            MachineBuilder::new(4).ideal(2),
            MachineBuilder::new(4).network(1),
        ] {
            let mut m = build.build_spmd(&prog);
            assert!(m.run().completed);
        }
    }

    #[test]
    fn all_particles_claimed_and_tallies_written() {
        let (particles, steps, pes) = (40, 8, 4);
        let mut m = MachineBuilder::new(pes)
            .ideal(2)
            .build_spmd(&Particle::new(particles, steps).program());
        assert!(m.run().completed);
        assert_eq!(
            m.read_shared(COUNTER_ADDR),
            (particles + pes) as i64,
            "each PE overclaims once"
        );
        // With field values all zero, each tally update adds 1; total
        // updates = particles * ceil(steps / tally_every).
        let expected = (particles * steps.div_ceil(4)) as i64;
        let total: i64 = (0..8).map(|t| m.read_shared(TALLY_BASE + t)).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn field_addresses_scatter() {
        // The hash must spread particle lookups over many field cells —
        // sanity-check via the Expr evaluation itself.
        use std::collections::HashSet;
        use ultracomputer::program::{EvalCtx, NUM_REGS};
        let mut regs = [0i64; NUM_REGS];
        let params = [64i64, 10];
        let mut cells = HashSet::new();
        for particle in 0..64 {
            for step in 0..10 {
                regs[4] = particle;
                regs[3] = step;
                let ctx = EvalCtx {
                    regs: &regs,
                    pe: ultra_sim::PeId(0),
                    n_pes: 4,
                    params: &params,
                    clock: 0,
                };
                let addr = Expr::rem(
                    Expr::hash(Expr::Reg(4), Expr::mul(Expr::Reg(3), 2654435761)),
                    4096,
                )
                .eval(&ctx);
                cells.insert(addr);
            }
        }
        assert!(cells.len() > 500, "only {} distinct cells", cells.len());
    }
}

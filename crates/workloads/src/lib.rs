//! Scientific workload generators for the Ultracomputer (paper §4.2, §5).
//!
//! The paper's Table 1 monitors four parallel programs; its Tables 2–3
//! measure and project the efficiency of one of them (TRED2). This crate
//! rebuilds those programs as synthetic-but-structurally-faithful
//! generators over the `ultracomputer::program` DSL:
//!
//! * [`tred2::Tred2`] — §5's parallel Householder reduction of a symmetric
//!   matrix to tridiagonal form: `N−2` sequential steps, each with a
//!   vector phase and an `O(j²)` update phase split among PEs by
//!   fetch-and-add self-scheduling, with a barrier per phase.
//! * [`weather::Weather`] — Table 1 rows 1–2: a two-dimensional PDE
//!   relaxation (the "NASA weather program"), self-scheduled by grid row,
//!   one barrier per sweep.
//! * [`multigrid::Multigrid`] — Table 1 row 4: a multigrid Poisson
//!   V-cycle, the level ladder unrolled, each level self-scheduled.
//! * [`particle::Particle`] — the particle-tracking Monte-Carlo style
//!   workload of §2.5/Kalos: scattered field lookups (hash-mixed
//!   addresses) and fetch-and-add tallies.
//! * [`fluid::Fluid`] — §5's "incompressible fluid flow within an elastic
//!   boundary": a regular grid phase alternating with an irregular
//!   boundary-point phase each timestep.
//! * [`serving::Serving`] — not from the paper's tables: a serving-tier
//!   family built on the same primitives. Open-loop Poisson users, a
//!   fetch-and-add ticket queue dispatching requests to worker PEs, KV
//!   records hashed across the memory modules, and end-to-end
//!   per-request latency histograms (load-vs-p99 curves).
//!
//! Reference mixes (memory references and shared references per
//! instruction) are tunable and default to values that land in Table 1's
//! reported ranges; the fidelity claim is the *structure* — how work is
//! claimed, how often the network is touched, where the barriers are —
//! not the floating-point contents, which do not affect timing on this
//! machine model.
//!
//! [`efficiency`] implements §5's methodology end to end: measure
//! `T(P,N)` and `W(P,N)` for small pairs, fit `T = aN + bN³/P + W`,
//! and project the full Table 2/Table 3 grids.

pub mod efficiency;
pub mod fluid;
pub mod multigrid;
pub mod particle;
pub mod serving;
pub mod speedup;
pub mod tred2;
pub mod weather;

pub use efficiency::{EfficiencyModel, Measurement};
pub use fluid::Fluid;
pub use multigrid::Multigrid;
pub use particle::Particle;
pub use serving::Serving;
pub use tred2::Tred2;
pub use weather::Weather;

//! Serving-tier workload: open-loop users over the Ultracomputer.
//!
//! The paper's workloads are batch-scientific, but the machine primitives
//! it argues for — combinable fetch-and-add dispatch, hash-interleaved
//! memory — are exactly what a request-serving tier needs: many users
//! submit requests at times *they* choose (open loop: arrivals do not
//! wait for the system), workers claim requests from a shared ticket
//! queue with one fetch-and-add each, and per-request state lives in
//! records hashed across the memory modules. This module builds that
//! tier as a DSL program plus arrival/latency plumbing:
//!
//! * Arrivals are a seeded Poisson process: exponential inter-arrival
//!   gaps with a configurable mean, prefix-summed into an absolute
//!   schedule and installed in shared memory before the run.
//! * Workers self-schedule over request tickets. For each claimed
//!   ticket a worker loads the request's arrival cycle, parks on
//!   [`Op::WaitUntil`] until that cycle (a ticket claimed late — the
//!   queue is backlogged — starts immediately, which is precisely the
//!   queueing delay an overloaded open-loop system accumulates), looks
//!   up the request's KV record through the address hash, does the
//!   service work, and stamps the completion clock into the done table.
//! * [`Serving::latencies`] reads both tables back and folds
//!   `done − arrival` into a [`Histogram`], whose upper-edge percentile
//!   semantics guarantee the reported p99 never understates the tail.
//!
//! Sweeping the mean gap down (offered load up) traces the classic
//! load-vs-tail-latency hockey stick; `ultra-bench --bin serving`
//! drives that sweep and writes the curve as a JSON artifact.

use ultra_sim::rng::{Rng, SplitMix64};
use ultra_sim::stats::Histogram;
use ultracomputer::machine::Machine;
use ultracomputer::program::{body, Expr, Op, Program};

/// Base address of the arrival-cycle table (one word per request).
pub const ARRIVAL_BASE: usize = 1 << 22;
/// Base address of the completion-stamp table (one word per request).
pub const DONE_BASE: usize = 1 << 23;
/// Base address of the KV record store.
pub const KV_BASE: usize = 1 << 24;
/// Address of the shared ticket counter workers claim requests from.
pub const TICKET_ADDR: usize = (1 << 28) + 0xD15C;

/// Open-loop serving workload generator.
///
/// # Example
///
/// ```
/// use ultra_workloads::Serving;
/// use ultracomputer::machine::MachineBuilder;
///
/// let s = Serving::new(64, 40).seed(7);
/// let mut m = MachineBuilder::new(4).ideal(2).build_spmd(&s.program());
/// s.install(&mut m);
/// assert!(m.run().completed);
/// let lat = s.latencies(&m);
/// assert_eq!(lat.count(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Serving {
    /// Number of requests in the run.
    pub requests: usize,
    /// Mean inter-arrival gap in cycles (inverse offered load).
    pub mean_gap: u64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Number of KV records hashed across the memory modules.
    pub kv_records: usize,
    /// Pure-compute instructions of service work per request.
    pub service_compute: u32,
    /// Cache-satisfied references per request.
    pub service_private: u32,
    /// Cycle the first request may arrive at (lets the PEs boot and
    /// claim their first tickets before the clock matters).
    pub warmup: u64,
}

impl Serving {
    /// A serving tier with the given request count and mean gap.
    ///
    /// # Panics
    ///
    /// Panics if `requests` or `mean_gap` is zero.
    #[must_use]
    pub fn new(requests: usize, mean_gap: u64) -> Self {
        assert!(requests >= 1, "need requests to serve");
        assert!(mean_gap >= 1, "arrivals need a positive mean gap");
        Self {
            requests,
            mean_gap,
            seed: 0x5E81_1CE5,
            kv_records: 4096,
            service_compute: 60,
            service_private: 12,
            warmup: 64,
        }
    }

    /// Replaces the arrival-process seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The absolute arrival schedule: a seeded Poisson process.
    ///
    /// Gap `i` is drawn from an exponential distribution with mean
    /// [`Self::mean_gap`] via inverse-CDF on a [`SplitMix64`] stream, so
    /// the schedule is a pure function of `(seed, mean_gap, requests)` —
    /// the same table on every engine and every run.
    #[must_use]
    pub fn arrivals(&self) -> Vec<u64> {
        let mut rng = SplitMix64::new(self.seed ^ 0xA55A_7EA5_0F75_11E5);
        let mut at = self.warmup;
        (0..self.requests)
            .map(|_| {
                // u in (0, 1]: never ln(0); a gap may round to zero
                // (bursts are part of a Poisson process).
                let u = 1.0 - rng.f64();
                let gap = -(self.mean_gap as f64) * u.ln();
                at += gap.min(1e15) as u64;
                at
            })
            .collect()
    }

    /// Builds the worker program (parameter 0 = request count).
    ///
    /// Register use: r4 = claimed ticket, r2 = arrival cycle,
    /// r3 = KV value, r5 = running use of the KV value (forces the
    /// lookup's round trip into the request's critical path).
    #[must_use]
    pub fn program(&self) -> Program {
        let kv_addr = Expr::add(
            KV_BASE as i64,
            Expr::rem(
                Expr::hash(Expr::Reg(4), 0x9E37_79B9),
                self.kv_records as i64,
            ),
        );
        let request_body = body(vec![
            Op::Load {
                addr: Expr::add(ARRIVAL_BASE as i64, Expr::Reg(4)),
                dst: 2,
            },
            // Park until the user actually submits this request; a
            // backlogged (past) arrival starts service immediately.
            Op::WaitUntil {
                cycle: Expr::Reg(2),
            },
            Op::Load {
                addr: kv_addr,
                dst: 3,
            },
            Op::Set {
                reg: 5,
                value: Expr::add(Expr::Reg(5), Expr::Reg(3)),
            },
            Op::Compute(self.service_compute),
            Op::PrivateRef(self.service_private),
            Op::Store {
                addr: Expr::add(DONE_BASE as i64, Expr::Reg(4)),
                value: Expr::Clock,
            },
        ]);
        Program::new(
            body(vec![
                Op::SelfSched {
                    reg: 4,
                    counter: Expr::Const(TICKET_ADDR as i64),
                    limit: Expr::Param(0),
                    body: request_body,
                },
                Op::Halt,
            ]),
            vec![self.requests as i64],
        )
    }

    /// Installs the arrival schedule and KV records into shared memory
    /// (untimed; call after building the machine, before running).
    pub fn install(&self, m: &mut Machine) {
        for (i, &at) in self.arrivals().iter().enumerate() {
            m.write_shared(ARRIVAL_BASE + i, at as i64);
        }
        let mut rng = SplitMix64::new(self.seed ^ 0x4B56_0DA7_A0C0_FFEE);
        for r in 0..self.kv_records {
            m.write_shared(KV_BASE + r, rng.range_u64(1..1 << 20) as i64);
        }
    }

    /// Reads the completion stamps back and returns the end-to-end
    /// latency histogram (`done − arrival` per request).
    ///
    /// # Panics
    ///
    /// Panics if a request never completed (the run was truncated).
    #[must_use]
    pub fn latencies(&self, m: &Machine) -> Histogram {
        let arrivals = self.arrivals();
        let mut h = Histogram::new();
        for (i, &at) in arrivals.iter().enumerate() {
            let done = m.read_shared(DONE_BASE + i);
            assert!(done > 0, "request {i} never completed");
            h.record((done as u64).saturating_sub(at));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultracomputer::machine::MachineBuilder;

    #[test]
    fn arrivals_are_deterministic_and_increasing() {
        let s = Serving::new(200, 50).seed(3);
        let a = s.arrivals();
        let b = s.arrivals();
        assert_eq!(a, b, "same seed must give the same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "prefix sums increase");
        assert!(a[0] >= s.warmup);
        // The empirical mean gap should land near the configured mean.
        let span = (a[a.len() - 1] - a[0]) as f64 / (a.len() - 1) as f64;
        assert!((span - 50.0).abs() < 15.0, "mean gap {span} far from 50");
        assert_ne!(a, Serving::new(200, 50).seed(4).arrivals());
    }

    #[test]
    fn every_request_completes_on_both_backends() {
        let s = Serving::new(48, 30).seed(11);
        for build in [
            MachineBuilder::new(4).ideal(2),
            MachineBuilder::new(4).network(1),
        ] {
            let mut m = build.build_spmd(&s.program());
            s.install(&mut m);
            assert!(m.run().completed);
            let lat = s.latencies(&m);
            assert_eq!(lat.count(), 48);
            assert_eq!(
                m.read_shared(TICKET_ADDR),
                48 + 4,
                "each PE overclaims one ticket"
            );
        }
    }

    #[test]
    fn lighter_load_means_lower_tail_latency() {
        // The defining serving-tier shape: shrinking the mean gap
        // (raising offered load) on a fixed-capacity machine must not
        // *improve* the tail, and a saturating load must visibly hurt it.
        let run = |gap: u64| {
            let s = Serving::new(256, gap).seed(5);
            let mut m = MachineBuilder::new(4).ideal(2).build_spmd(&s.program());
            s.install(&mut m);
            assert!(m.run().completed);
            s.latencies(&m).percentile(99.0)
        };
        let relaxed = run(400);
        let saturated = run(1);
        assert!(
            saturated > 4 * relaxed.max(1),
            "p99 at gap 1 ({saturated}) should dwarf gap 400 ({relaxed})"
        );
    }
}

//! Incompressible fluid flow within an elastic boundary (§5).
//!
//! The paper lists this among the applications already studied on the
//! paracomputer simulator ("incompressible fluid flow within an elastic
//! boundary" — the immersed-boundary class of problems). Structurally it
//! alternates two very different phases per timestep, which is exactly
//! what makes it a good MIMD stress case (§2.5's argument against SIMD):
//!
//! * a **regular** fluid phase: pressure relaxation over a `G×G` grid,
//!   rows self-scheduled (like [`crate::weather`]);
//! * an **irregular** boundary phase: `M` elastic boundary points, each
//!   interpolating from grid cells near its (moving, data-dependent)
//!   position — modelled as hash-scattered loads — and accumulating
//!   forces into shared cells with combinable fetch-and-adds.
//!
//! One barrier separates the phases and one ends the step.

use ultracomputer::program::{body, Expr, Op, Program};

/// Base address of the fluid grid.
pub const GRID_BASE: usize = 1 << 25;
/// Base address of the boundary-point force accumulators.
pub const FORCE_BASE: usize = 1 << 27;
/// Base of the per-(step, phase) scheduling counters.
pub const COUNTER_BASE: usize = (1 << 29) + (1 << 20);

/// Fluid-with-elastic-boundary workload generator.
///
/// # Example
///
/// ```
/// use ultra_workloads::Fluid;
/// use ultracomputer::machine::MachineBuilder;
///
/// let mut m = MachineBuilder::new(4)
///     .ideal(2)
///     .build_spmd(&Fluid::new(16, 24, 2).program());
/// assert!(m.run().completed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fluid {
    /// Grid edge length `G`.
    pub grid: usize,
    /// Number of elastic boundary points `M`.
    pub boundary_points: usize,
    /// Timesteps.
    pub steps: usize,
    /// Columns per grid work group.
    pub group: usize,
    /// Pure-compute instructions per grid group.
    pub grid_compute: u32,
    /// Compute per boundary point (spreading/interpolation arithmetic).
    pub boundary_compute: u32,
    /// Cache-satisfied references per group/point.
    pub private_refs: u32,
}

impl Fluid {
    /// Defaults with a reference mix in Table 1's neighbourhood.
    ///
    /// # Panics
    ///
    /// Panics unless the grid is at least 4×4 with at least one boundary
    /// point and one step.
    #[must_use]
    pub fn new(grid: usize, boundary_points: usize, steps: usize) -> Self {
        assert!(grid >= 4, "grid must be at least 4x4");
        assert!(boundary_points >= 1, "need boundary points");
        assert!(steps >= 1, "need at least one timestep");
        Self {
            grid,
            boundary_points,
            steps,
            group: 8,
            grid_compute: 30,
            boundary_compute: 26,
            private_refs: 6,
        }
    }

    /// Builds the per-PE program (parameters: 0 = G, 1 = M, 2 = steps).
    #[must_use]
    pub fn program(&self) -> Program {
        let g = Expr::Param(0);
        let m = Expr::Param(1);
        let grp = self.group as i64;
        // r7 = timestep, r4 = claimed row/point, r3 = column group,
        // r2/r1 = loads.

        // Fluid phase: relax one grid row per claim, walking columns in
        // groups (prefetch the row cell, compute, store back).
        let grid_group = body(vec![
            Op::Load {
                addr: Expr::add(
                    GRID_BASE as i64,
                    Expr::add(
                        Expr::mul(Expr::Reg(4), g.clone()),
                        Expr::mul(Expr::Reg(3), grp),
                    ),
                ),
                dst: 2,
            },
            Op::Compute(self.grid_compute),
            Op::PrivateRef(self.private_refs),
            Op::Store {
                addr: Expr::add(
                    GRID_BASE as i64,
                    Expr::add(
                        Expr::mul(Expr::Reg(4), g.clone()),
                        Expr::mul(Expr::Reg(3), grp),
                    ),
                ),
                value: Expr::add(Expr::Reg(2), 1),
            },
        ]);
        let grid_row = body(vec![Op::For {
            reg: 3,
            from: Expr::Const(0),
            to: Expr::div(Expr::add(g.clone(), grp - 1), grp),
            body: grid_group,
        }]);

        // Boundary phase: one elastic point per claim. Its grid position
        // is data-dependent — modelled as a hash of (point, step) — and it
        // both reads the nearby fluid cell and adds its force into a
        // shared accumulator (combinable under contention).
        let boundary_point = body(vec![
            Op::Load {
                addr: Expr::add(
                    GRID_BASE as i64,
                    Expr::rem(
                        Expr::hash(Expr::Reg(4), Expr::mul(Expr::Reg(7), 97)),
                        Expr::mul(g.clone(), g.clone()),
                    ),
                ),
                dst: 2,
            },
            Op::Compute(self.boundary_compute),
            Op::PrivateRef(self.private_refs),
            Op::FetchAdd {
                addr: Expr::add(FORCE_BASE as i64, Expr::rem(Expr::Reg(4), 16)),
                delta: Expr::add(Expr::Reg(2), 1),
                dst: None,
            },
        ]);

        let step_body = body(vec![
            Op::Compute(10), // timestep setup
            Op::SelfSched {
                reg: 4,
                counter: Expr::add(COUNTER_BASE as i64, Expr::mul(Expr::Reg(7), 2)),
                limit: g.clone(),
                body: grid_row,
            },
            Op::Barrier,
            Op::SelfSched {
                reg: 4,
                counter: Expr::add(
                    COUNTER_BASE as i64,
                    Expr::add(Expr::mul(Expr::Reg(7), 2), 1),
                ),
                limit: m,
                body: boundary_point,
            },
            Op::Barrier,
        ]);

        Program::new(
            body(vec![
                Op::For {
                    reg: 7,
                    from: Expr::Const(0),
                    to: Expr::Param(2),
                    body: step_body,
                },
                Op::Halt,
            ]),
            vec![
                self.grid as i64,
                self.boundary_points as i64,
                self.steps as i64,
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultracomputer::machine::MachineBuilder;
    use ultracomputer::report::MachineReport;

    #[test]
    fn runs_on_both_backends() {
        let prog = Fluid::new(12, 20, 2).program();
        for build in [
            MachineBuilder::new(4).ideal(2),
            MachineBuilder::new(4).network(1),
        ] {
            let mut m = build.build_spmd(&prog);
            assert!(m.run().completed);
        }
    }

    #[test]
    fn both_phases_fully_claimed_each_step() {
        let (grid, points, steps, pes) = (16, 30, 3, 4);
        let mut m = MachineBuilder::new(pes)
            .ideal(2)
            .build_spmd(&Fluid::new(grid, points, steps).program());
        assert!(m.run().completed);
        for step in 0..steps {
            let fluid_claims = m.read_shared(COUNTER_BASE + step * 2) as usize;
            let boundary_claims = m.read_shared(COUNTER_BASE + step * 2 + 1) as usize;
            assert_eq!(fluid_claims, grid + pes, "fluid phase, step {step}");
            assert_eq!(boundary_claims, points + pes, "boundary phase, step {step}");
        }
    }

    #[test]
    fn forces_accumulate_into_shared_cells() {
        let (grid, points, steps) = (8, 24, 2);
        let mut m = MachineBuilder::new(4)
            .ideal(2)
            .build_spmd(&Fluid::new(grid, points, steps).program());
        assert!(m.run().completed);
        let total_force: i64 = (0..16).map(|i| m.read_shared(FORCE_BASE + i)).sum();
        // Every boundary point contributes (cell value + 1) once per step;
        // grid values evolve, but the count of contributions is exact:
        // each adds at least 1.
        assert!(
            total_force >= (points * steps) as i64,
            "force {total_force} < contribution floor"
        );
    }

    #[test]
    fn reference_mix_is_sane() {
        let mut m = MachineBuilder::new(8)
            .ideal(2)
            .build_spmd(&Fluid::new(16, 32, 2).program());
        assert!(m.run().completed);
        let r = MachineReport::from_machine(&m);
        let shared = r.shared_refs_per_instr();
        assert!((0.02..=0.15).contains(&shared), "shared/instr = {shared}");
    }
}

//! Hand-rolled binary serialization for machine snapshots.
//!
//! The snapshot format must be bit-stable across runs and independent of
//! external crates, so this module implements a tiny explicit wire
//! format: fixed-width little-endian scalars, length-prefixed sequences,
//! and nothing self-describing. Every stateful simulator type implements
//! [`Wire`] (or an inherent `encode`/`decode` pair when decoding needs
//! context such as a config); unordered containers are emitted sorted by
//! key so identical states always produce identical bytes.
//!
//! Decoding is defensive: all lengths are validated against the bytes
//! actually remaining, so truncated or bit-flipped input yields a
//! [`WireError`], never a panic or an unbounded allocation.
//!
//! # Example
//!
//! ```
//! use ultra_sim::wire::{Wire, WireReader, WireWriter};
//!
//! let mut w = WireWriter::new();
//! vec![3u64, 1, 4].encode(&mut w);
//! let bytes = w.into_bytes();
//! let mut r = WireReader::new(&bytes);
//! assert_eq!(Vec::<u64>::decode(&mut r).unwrap(), vec![3, 1, 4]);
//! assert!(r.is_empty());
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

/// Why a snapshot byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the value was complete.
    Truncated,
    /// A decoded value was structurally impossible (bad enum tag,
    /// invalid UTF-8, an implausible length prefix).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "byte stream truncated"),
            Self::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit everywhere).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix (caller knows the width).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream; [`WireError::Invalid`]
    /// if the value does not fit this platform's `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Invalid("usize overflow"))
    }

    /// Reads a sequence length and validates it against the bytes left.
    ///
    /// Every element of every sequence occupies at least one byte, so a
    /// length prefix exceeding `remaining()` can only come from corrupt
    /// input; rejecting it here bounds allocations.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream; [`WireError::Invalid`]
    /// on an implausible length.
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(WireError::Invalid("length prefix exceeds input"));
        }
        Ok(len)
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream; [`WireError::Invalid`]
    /// if the byte is neither 0 nor 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool tag")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream; [`WireError::Invalid`]
    /// on malformed UTF-8.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.seq_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("utf-8"))
    }
}

/// A value with a canonical binary encoding.
///
/// Implementations must be bijective on valid state: `decode(encode(x))`
/// reproduces `x` exactly, and equal states encode to equal bytes (maps
/// and sets are written in sorted key order to guarantee this).
pub trait Wire: Sized {
    /// Appends this value's canonical encoding to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the stream is truncated or structurally invalid.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

macro_rules! scalar_wire {
    ($($ty:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl Wire for $ty {
            fn encode(&self, w: &mut WireWriter) {
                w.$put(*self);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    )*};
}

scalar_wire! {
    u8 => u8 / u8,
    u32 => u32 / u32,
    u64 => u64 / u64,
    u128 => u128 / u128,
    i64 => i64 / i64,
    usize => usize / usize,
    f64 => f64 / f64,
    bool => bool / bool,
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.str(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.str()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for VecDeque<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn encode(&self, w: &mut WireWriter) {
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        out.try_into()
            .map_err(|_| WireError::Invalid("array length"))
    }
}

macro_rules! tuple_wire {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, w: &mut WireWriter) {
                $(self.$idx.encode(w);)+
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    )*};
}

tuple_wire! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, w: &mut WireWriter) {
        w.usize(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        let mut out = Self::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Wire + Ord> Wire for BTreeSet<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        let mut out = Self::new();
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

/// Hash maps are written in sorted key order so equal maps yield equal
/// bytes regardless of hasher-dependent iteration order.
impl<K: Wire + Ord + Hash + Eq, V: Wire> Wire for HashMap<K, V> {
    fn encode(&self, w: &mut WireWriter) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.usize(entries.len());
        for (k, v) in entries {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        let mut out = Self::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// Hash sets are written in sorted order, like [`HashMap`].
impl<T: Wire + Ord + Hash + Eq> Wire for HashSet<T> {
    fn encode(&self, w: &mut WireWriter) {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        w.usize(items.len());
        for item in items {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        let mut out = Self::with_capacity(len);
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

/// FNV-1a 64-bit hash — the snapshot format's digest primitive. Tiny,
/// dependency-free, and stable across platforms; used to fingerprint a
/// machine's parity string, not for adversarial integrity.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = WireWriter::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(&T::decode(&mut r).unwrap(), v);
        assert!(r.is_empty(), "decoder must consume every byte");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&0u8);
        round_trip(&u8::MAX);
        round_trip(&0xdead_beefu32);
        round_trip(&u64::MAX);
        round_trip(&u128::MAX);
        round_trip(&-42i64);
        round_trip(&usize::MAX);
        round_trip(&1.5f64);
        round_trip(&f64::NEG_INFINITY);
        round_trip(&true);
        round_trip(&String::from("héllo"));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Vec::<u64>::new());
        round_trip(&Some(7i64));
        round_trip(&Option::<i64>::None);
        round_trip(&VecDeque::from(vec![9u32, 8]));
        round_trip(&[1u64, 2, 3, 4]);
        round_trip(&(1u64, true, String::from("x")));
        round_trip(&BTreeMap::from([(1u64, 2i64), (3, 4)]));
        round_trip(&BTreeSet::from([5u64, 1]));
        round_trip(&HashMap::from([(1u64, 2i64), (9, 4)]));
        round_trip(&HashSet::from([5u64, 1, 17]));
    }

    #[test]
    fn hashmap_encoding_is_order_independent() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..100u64 {
            a.insert(i, i * 2);
        }
        for i in (0..100u64).rev() {
            b.insert(i, i * 2);
        }
        let (mut wa, mut wb) = (WireWriter::new(), WireWriter::new());
        a.encode(&mut wa);
        b.encode(&mut wb);
        assert_eq!(wa.bytes(), wb.bytes());
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = WireWriter::new();
        vec![1u64, 2, 3].encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(Vec::<u64>::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn implausible_length_rejected_without_allocating() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX); // claims ~2^64 elements follow
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(
            Vec::<u64>::decode(&mut r),
            Err(WireError::Invalid("length prefix exceeds input"))
        );
    }

    #[test]
    fn bad_tags_rejected() {
        let mut r = WireReader::new(&[7]);
        assert!(Option::<u8>::decode(&mut r).is_err());
        let mut r = WireReader::new(&[9]);
        assert!(bool::decode(&mut r).is_err());
    }

    #[test]
    fn fnv_reference_values() {
        // Public FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}

//! Counters and summary statistics used throughout the simulator.
//!
//! Every reported quantity in `EXPERIMENTS.md` (average memory access time,
//! idle-cycle percentages, latency distributions, queue occupancy) is
//! accumulated with the types here.

use core::fmt;

use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// A simple event counter.
///
/// # Example
///
/// ```
/// use ultra_sim::stats::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Returns the current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl Wire for Counter {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self(r.u64()?))
    }
}

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// # Example
///
/// ```
/// use ultra_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the observations (0 if fewer than two).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Wire for RunningStats {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.count);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            count: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }
}

/// An exact histogram over `u64` observations with linear bins below a
/// threshold and power-of-two bins above, plus exact count/mean.
///
/// Designed for latency distributions: the interesting region (a few dozen
/// cycles) is exact, and heavy tails are still captured.
///
/// # Example
///
/// ```
/// use ultra_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(4);
/// h.record(4);
/// h.record(100);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.percentile(50.0), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Exact bins for values `0..LINEAR_BINS`.
    linear: Vec<u64>,
    /// Power-of-two bins for larger values: bin `i` holds
    /// `[LINEAR_BINS << i, LINEAR_BINS << (i+1))`.
    log: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

const LINEAR_BINS: u64 = 256;

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
        if v < LINEAR_BINS {
            if self.linear.len() <= v as usize {
                self.linear.resize(v as usize + 1, 0);
            }
            self.linear[v as usize] += 1;
        } else {
            let bin = (64 - (v / LINEAR_BINS).leading_zeros() - 1) as usize;
            if self.log.len() <= bin {
                self.log.resize(bin + 1, 0);
            }
            self.log[bin] += 1;
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the observations (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observation (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Cumulative `(upper_edge, count_at_or_below)` buckets, ascending,
    /// at power-of-two edges (`0, 1, 3, 7, … 255`, then the log bins'
    /// upper edges `511, 1023, …`).
    ///
    /// Every edge coincides with a bin boundary, so each count is
    /// *exact*: `count_at_or_below` equals the number of recorded values
    /// `<= upper_edge`. Emission stops at the first edge covering every
    /// observation (the last pair's count equals [`Histogram::count`]);
    /// an empty histogram yields no buckets. This is the
    /// Prometheus-`le` view of the histogram used by the service
    /// metrics exposition.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut cumulative = 0u64;
        // Power-of-two edges through the exact linear region: the edge
        // 2^k - 1 closes over linear values 0..=2^k - 1.
        let mut next = 0usize;
        for k in 0..=8u32 {
            let le = (1u64 << k) - 1;
            while next < self.linear.len() && (next as u64) <= le {
                cumulative += self.linear[next];
                next += 1;
            }
            out.push((le, cumulative));
            if cumulative == self.count {
                return out;
            }
        }
        for (bin, &c) in self.log.iter().enumerate() {
            cumulative += c;
            out.push(((LINEAR_BINS << (bin + 1)) - 1, cumulative));
            if cumulative == self.count {
                return out;
            }
        }
        out
    }

    /// Value at or below which `p` percent of observations fall.
    ///
    /// Exact below 256; above, the matching power-of-two bin's *upper*
    /// edge, clamped to the observed maximum. A bucketed percentile may
    /// therefore overstate by at most the bin width but never understates
    /// the tail: `percentile(100.0) == max()`, and the result is monotone
    /// in `p`. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 100.0`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (v, &c) in self.linear.iter().enumerate() {
            seen += c;
            if seen >= target {
                return v as u64;
            }
        }
        for (bin, &c) in self.log.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper edge of `[256<<bin, 256<<(bin+1))`; the observed
                // max bounds the highest occupied bin from above.
                let upper = (LINEAR_BINS << (bin + 1)) - 1;
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median — [`Histogram::percentile`] at 50.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile — [`Histogram::percentile`] at 90.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile — [`Histogram::percentile`] at 99.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.linear.len() < other.linear.len() {
            self.linear.resize(other.linear.len(), 0);
        }
        for (a, b) in self.linear.iter_mut().zip(&other.linear) {
            *a += b;
        }
        if self.log.len() < other.log.len() {
            self.log.resize(other.log.len(), 0);
        }
        for (a, b) in self.log.iter_mut().zip(&other.log) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Wire for Histogram {
    fn encode(&self, w: &mut WireWriter) {
        self.linear.encode(w);
        self.log.encode(w);
        w.u64(self.count);
        w.u128(self.sum);
        w.u64(self.max);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            linear: Vec::decode(r)?,
            log: Vec::decode(r)?,
            count: r.u64()?,
            sum: r.u128()?,
            max: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_through_wire() {
        let mut c = Counter::new();
        c.add(7);
        let mut rs = RunningStats::new();
        rs.record(2.5);
        let mut h = Histogram::new();
        for v in [1, 4, 4, 300, 70_000] {
            h.record(v);
        }
        let mut w = WireWriter::new();
        c.encode(&mut w);
        rs.encode(&mut w);
        h.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Counter::decode(&mut r).unwrap(), c);
        assert_eq!(RunningStats::decode(&mut r).unwrap(), rs);
        assert_eq!(Histogram::decode(&mut r).unwrap(), h);
        assert!(r.is_empty());
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn running_stats_mean_variance() {
        let mut s = RunningStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn running_stats_empty_is_sane() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_exact_small_values() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 13.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(50.0), 2);
        assert_eq!(h.percentile(100.0), 3);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn histogram_large_values_go_to_log_bins() {
        let mut h = Histogram::new();
        h.record(300);
        h.record(5000);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 5000);
        // p50 falls in the first log bin [256, 512); its upper edge is 511.
        assert_eq!(h.percentile(50.0), 511);
        // p100 is always the exact observed maximum.
        assert_eq!(h.percentile(100.0), 5000);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(Histogram::new().percentile(99.0), 0);
    }

    #[test]
    fn named_percentiles_on_uniform_distribution() {
        // 1..=100 once each: the p-th percentile is exactly p.
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p90(), 90);
        assert_eq!(h.p99(), 99);
    }

    #[test]
    fn named_percentiles_on_skewed_distribution() {
        // 99 fast observations and one slow outlier: the tail percentile
        // sees the outlier's bin, the median does not.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(10_000);
        assert_eq!(h.p50(), 4);
        assert_eq!(h.p90(), 4);
        assert_eq!(h.p99(), 4);
        // 10_000 lands in the [8192, 16384) log bin; the percentile clamps
        // the bin's upper edge to the observed maximum.
        assert_eq!(h.percentile(100.0), 10_000);
    }

    #[test]
    fn named_percentiles_on_constant_distribution() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(17);
        }
        assert_eq!(h.p50(), 17);
        assert_eq!(h.p90(), 17);
        assert_eq!(h.p99(), 17);
    }

    /// Deterministic pseudo-random value stream for the property tests:
    /// an xorshift walk shaped so values cover linear bins, several log
    /// bins, and the extremes.
    fn property_values(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Spread across ~2^(0..34) so both bin regimes are hit.
                let shift = (x >> 58) % 34;
                (x >> 30) >> (33 - shift)
            })
            .collect()
    }

    #[test]
    fn percentile_100_is_exact_max_property() {
        for seed in 1..=20u64 {
            let mut h = Histogram::new();
            let mut true_max = 0;
            for v in property_values(seed * 0x9e37, 500) {
                h.record(v);
                true_max = true_max.max(v);
            }
            assert_eq!(h.percentile(100.0), true_max, "seed {seed}");
            assert_eq!(h.percentile(100.0), h.max(), "seed {seed}");
        }
    }

    #[test]
    fn percentile_is_monotone_in_p_property() {
        for seed in 1..=20u64 {
            let mut h = Histogram::new();
            for v in property_values(seed * 0x517c, 300) {
                h.record(v);
            }
            let mut prev = 0;
            for p in 0..=100 {
                let q = h.percentile(f64::from(p));
                assert!(
                    q >= prev,
                    "seed {seed}: percentile({p}) = {q} < percentile({}) = {prev}",
                    p - 1
                );
                prev = q;
            }
        }
    }

    #[test]
    fn percentile_never_understates_never_exceeds_max() {
        // Every percentile of a bucketed histogram must be >= the exact
        // percentile of the raw data (tail-safe) and <= the observed max.
        for seed in 1..=10u64 {
            let mut h = Histogram::new();
            let mut raw = property_values(seed * 0xabcd, 400);
            for &v in &raw {
                h.record(v);
            }
            raw.sort_unstable();
            for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
                let target = ((p / 100.0) * raw.len() as f64).ceil().max(1.0) as usize;
                let exact = raw[target - 1];
                let q = h.percentile(p);
                assert!(
                    q >= exact,
                    "seed {seed} p{p}: {q} understates exact {exact}"
                );
                assert!(q <= h.max(), "seed {seed} p{p}: {q} exceeds max");
            }
        }
    }

    #[test]
    fn cumulative_buckets_are_exact_at_every_edge() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 7, 8, 300, 5000] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        // Edges partition at bin boundaries, so each count is exact.
        assert_eq!(buckets[0], (0, 1)); // v=0
        assert_eq!(buckets[1], (1, 3)); // + two 1s
        assert_eq!(buckets[3], (7, 4)); // + the 7
        assert_eq!(buckets[4], (15, 5)); // + the 8
        assert_eq!(buckets[8], (255, 5)); // nothing else below 256
        assert_eq!(buckets[9], (511, 6)); // + the 300
                                          // Emission stops once every observation is covered.
        let &(last_le, last_c) = buckets.last().unwrap();
        assert_eq!(last_c, h.count());
        assert!(last_le >= h.max());
        assert!(h.sum() == 5317);
    }

    #[test]
    fn cumulative_buckets_empty_and_monotone() {
        assert!(Histogram::new().cumulative_buckets().is_empty());
        let mut h = Histogram::new();
        for v in property_values(0x7777, 300) {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        let mut prev_le = None;
        let mut prev_c = 0;
        for &(le, c) in &buckets {
            if let Some(p) = prev_le {
                assert!(le > p, "edges must ascend");
            }
            assert!(c >= prev_c, "counts must be cumulative");
            prev_le = Some(le);
            prev_c = c;
        }
        assert_eq!(prev_c, h.count());
    }

    #[test]
    fn merge_then_percentile_matches_recording_everything_once() {
        for seed in 1..=10u64 {
            let values = property_values(seed * 0x2545, 600);
            let mut whole = Histogram::new();
            for &v in &values {
                whole.record(v);
            }
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            for (i, &v) in values.iter().enumerate() {
                if i % 3 == 0 {
                    a.record(v);
                } else {
                    b.record(v);
                }
            }
            a.merge(&b);
            assert_eq!(a, whole, "seed {seed}: merge must be exact");
            for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
                assert_eq!(a.percentile(p), whole.percentile(p), "seed {seed} p{p}");
            }
            assert_eq!(a.percentile(100.0), whole.max(), "seed {seed}");
        }
    }
}

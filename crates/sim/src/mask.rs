//! Word-packed membership masks for the cycle engine's sparse phases.
//!
//! The engine tracks "which shards have queued outbound traffic", "which
//! shards still have a live context" and "which memory banks hold work" as
//! one bit per unit packed 64 to a machine word. Phases that used to walk
//! every unit per cycle ([`crate::pool::WorkerPool::run_sparse`], the
//! outbound flush, the idle fast-forward scan) instead skip 64 provably
//! inert units per word test, and quiescence checks become a popcount
//! compare. [`PackedMask`] is the single-writer form the engine mutates
//! between phases; [`AtomicBitmap`] is the shared form parallel workers
//! publish into (one `fetch_or` per dirty unit) and the merge drains in
//! ascending word order — index order, so the drain is deterministic no
//! matter which thread set each bit.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-universe bitset with a popcount, tuned for the engine's
/// "iterate only the set members, ascending" access pattern.
#[derive(Debug, Clone, Default)]
pub struct PackedMask {
    words: Vec<u64>,
    len: usize,
    count: usize,
}

impl PackedMask {
    /// An empty mask over a universe of `len` units.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// Universe size (maximum member index + 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of set members.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no member is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether `i` is set.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets `i`; returns whether it was newly set.
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let newly = self.words[w] & b == 0;
        if newly {
            self.words[w] |= b;
            self.count += 1;
        }
        newly
    }

    /// Clears `i`; returns whether it was previously set.
    pub fn clear(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & b != 0;
        if was {
            self.words[w] &= !b;
            self.count -= 1;
        }
        was
    }

    /// Sets or clears `i` from a predicate.
    pub fn put(&mut self, i: usize, member: bool) {
        if member {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Clears every member.
    pub fn clear_all(&mut self) {
        if self.count > 0 {
            self.words.fill(0);
            self.count = 0;
        }
    }

    /// The backing words (bit `i % 64` of word `i / 64` is member `i`).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// One backing word.
    #[must_use]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Set members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            std::iter::successors((bits != 0).then_some(bits), |&b| {
                let next = b & (b - 1);
                (next != 0).then_some(next)
            })
            .map(move |b| w * 64 + b.trailing_zeros() as usize)
        })
    }

    /// Rebuilds the mask from a predicate over the whole universe.
    pub fn rebuild(&mut self, mut member: impl FnMut(usize) -> bool) {
        self.clear_all();
        for i in 0..self.len {
            if member(i) {
                self.set(i);
            }
        }
    }
}

/// A word-packed bitmap parallel workers may set bits in concurrently.
///
/// Marking is a relaxed `fetch_or`: the pool's completion barrier orders
/// every mark before the single-threaded drain, and the drain walks words
/// in ascending index order, so the observed member order is independent
/// of which worker set each bit.
#[derive(Debug, Default)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
}

impl AtomicBitmap {
    /// An empty bitmap over a universe of `len` units.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of backing words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words.len()
    }

    /// Sets bit `i`. Callable from any worker thread.
    pub fn mark(&self, i: usize) {
        self.words[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Takes (reads and zeroes) word `w`. Single-threaded drain side;
    /// `&mut self` proves no worker is marking concurrently.
    pub fn take_word(&mut self, w: usize) -> u64 {
        std::mem::take(self.words[w].get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_count() {
        let mut m = PackedMask::new(130);
        assert!(m.is_empty());
        assert!(m.set(0));
        assert!(m.set(63));
        assert!(m.set(64));
        assert!(m.set(129));
        assert!(!m.set(129), "already set");
        assert_eq!(m.count(), 4);
        assert!(m.get(63) && m.get(64));
        assert!(!m.get(1));
        assert!(m.clear(63));
        assert!(!m.clear(63), "already clear");
        assert_eq!(m.count(), 3);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        m.clear_all();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn iter_matches_model_across_patterns() {
        let mut m = PackedMask::new(200);
        let mut model = std::collections::BTreeSet::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (x >> 33) as usize % 200;
            if x & 1 == 0 {
                assert_eq!(m.set(i), model.insert(i));
            } else {
                assert_eq!(m.clear(i), model.remove(&i));
            }
            assert_eq!(m.count(), model.len());
        }
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            model.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rebuild_from_predicate() {
        let mut m = PackedMask::new(100);
        m.set(7);
        m.rebuild(|i| i % 10 == 3);
        assert_eq!(m.count(), 10);
        assert!(m.get(93) && !m.get(7));
    }

    #[test]
    fn atomic_bitmap_marks_and_drains() {
        let mut b = AtomicBitmap::new(100);
        b.mark(3);
        b.mark(64);
        b.mark(99);
        assert_eq!(b.words(), 2);
        assert_eq!(b.take_word(0), 1 << 3);
        assert_eq!(b.take_word(0), 0, "take zeroes");
        assert_eq!(b.take_word(1), (1 << 0) | (1 << 35));
    }
}

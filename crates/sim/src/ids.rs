//! Strongly typed identifiers and address arithmetic.
//!
//! The paper numbers both PEs and MMs with `D`-bit identifiers (`N = 2^D`)
//! and routes through the Omega network by consuming one base-`k` digit of
//! the destination per stage (§3.1.1). This module provides the id newtypes
//! and the digit-manipulation helpers on which routing and the
//! origin/destination "amalgam" address are built.

use core::fmt;

use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// The machine word stored in memory cells; all paper primitives
/// (fetch-and-add, swap, test-and-set) operate on this type.
pub type Value = i64;

/// Identifier of a processing element (0..N).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PeId(pub usize);

/// Identifier of a memory module (0..N).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MmId(pub usize);

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

impl fmt::Display for MmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MM{}", self.0)
    }
}

impl From<usize> for PeId {
    fn from(v: usize) -> Self {
        PeId(v)
    }
}

impl Wire for PeId {
    fn encode(&self, w: &mut WireWriter) {
        w.usize(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self(r.usize()?))
    }
}

impl Wire for MmId {
    fn encode(&self, w: &mut WireWriter) {
        w.usize(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self(r.usize()?))
    }
}

impl From<usize> for MmId {
    fn from(v: usize) -> Self {
        MmId(v)
    }
}

/// A physical memory address: a module and a word offset within it.
///
/// The paper transmits the MM number plus "the internal address within the
/// specified MM" (§3.3); requests are combinable only when both match.
///
/// # Example
///
/// ```
/// use ultra_sim::ids::{MemAddr, MmId};
///
/// let a = MemAddr::new(MmId(3), 17);
/// assert_eq!(a.mm, MmId(3));
/// assert_eq!(a.offset, 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemAddr {
    /// The memory module holding the word.
    pub mm: MmId,
    /// Word offset within the module.
    pub offset: usize,
}

impl MemAddr {
    /// Creates an address from a module id and offset.
    #[must_use]
    pub fn new(mm: MmId, offset: usize) -> Self {
        Self { mm, offset }
    }
}

impl Wire for MemAddr {
    fn encode(&self, w: &mut WireWriter) {
        self.mm.encode(w);
        w.usize(self.offset);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            mm: MmId::decode(r)?,
            offset: r.usize()?,
        })
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.mm, self.offset)
    }
}

/// Base-`k` digit arithmetic on identifiers (§3.1.1).
///
/// Identifiers are written base `k` with digit 1 the least significant
/// (matching the paper's `x_D … x_1` notation). `k` must be a power of two.
pub mod digits {
    /// Returns the number of base-`k` digits needed to write ids `0..n`,
    /// i.e. `log_k n`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, or if `n` is not a positive power of `k`.
    #[must_use]
    pub fn count(n: usize, k: usize) -> u32 {
        assert!(k >= 2, "switch arity k must be at least 2");
        assert!(n >= 1, "n must be positive");
        let mut d = 0;
        let mut acc = 1usize;
        while acc < n {
            acc = acc.checked_mul(k).expect("n too large");
            d += 1;
        }
        assert_eq!(acc, n, "n = {n} is not a power of k = {k}");
        d
    }

    /// Extracts digit `j` (1-based from the least significant end, matching
    /// the paper's `x_j` notation) of `x` written base `k`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is zero.
    #[must_use]
    pub fn digit(x: usize, k: usize, j: u32) -> usize {
        assert!(j >= 1, "digits are numbered from 1");
        (x / k.pow(j - 1)) % k
    }

    /// Rebuilds a number from base-`k` digits given most-significant first.
    #[must_use]
    pub fn compose(digits_msb_first: &[usize], k: usize) -> usize {
        digits_msb_first.iter().fold(0, |acc, &d| {
            debug_assert!(d < k);
            acc * k + d
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn count_powers() {
            assert_eq!(count(8, 2), 3);
            assert_eq!(count(4096, 4), 6);
            assert_eq!(count(64, 8), 2);
            assert_eq!(count(1, 2), 0);
        }

        #[test]
        #[should_panic(expected = "not a power")]
        fn count_rejects_non_power() {
            let _ = count(12, 2);
        }

        #[test]
        fn digit_extraction_base2() {
            // 0b101 = 5: digit1 = 1, digit2 = 0, digit3 = 1.
            assert_eq!(digit(5, 2, 1), 1);
            assert_eq!(digit(5, 2, 2), 0);
            assert_eq!(digit(5, 2, 3), 1);
        }

        #[test]
        fn digit_extraction_base4() {
            // 27 = 123 base 4.
            assert_eq!(digit(27, 4, 1), 3);
            assert_eq!(digit(27, 4, 2), 2);
            assert_eq!(digit(27, 4, 3), 1);
        }

        #[test]
        fn compose_round_trips() {
            for x in 0..256usize {
                for &(k, d) in &[(2usize, 8u32), (4, 4), (8, 3)] {
                    let ds: Vec<usize> = (1..=d).rev().map(|j| digit(x, k, j)).collect();
                    assert_eq!(compose(&ds, k), x);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PeId(7).to_string(), "PE7");
        assert_eq!(MmId(3).to_string(), "MM3");
        assert_eq!(MemAddr::new(MmId(3), 9).to_string(), "MM3:9");
    }

    #[test]
    fn ids_order_and_convert() {
        assert!(PeId(1) < PeId(2));
        assert_eq!(PeId::from(5), PeId(5));
        assert_eq!(MmId::from(6), MmId(6));
    }
}

//! The global cycle clock for the cycle-driven machine simulation.
//!
//! The Ultracomputer network is pipelined at the granularity of the *switch
//! cycle* (paper §3.1.2, §4); the whole machine model in this repository
//! advances in units of that cycle. The paper's other time units are derived
//! from it: in the §4.2 simulations the PE instruction time and the MM access
//! time both equal **two** network cycles.

/// A point in simulated time, measured in network (switch) cycles.
pub type Cycle = u64;

/// A monotonically advancing cycle counter.
///
/// # Example
///
/// ```
/// use ultra_sim::clock::Clock;
///
/// let mut clock = Clock::new();
/// assert_eq!(clock.now(), 0);
/// clock.tick();
/// clock.advance(9);
/// assert_eq!(clock.now(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Clock {
    now: Cycle,
}

impl Clock {
    /// Creates a clock at cycle zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the clock by one cycle and returns the new time.
    pub fn tick(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances the clock by `cycles`.
    pub fn advance(&mut self, cycles: Cycle) {
        self.now += cycles;
    }
}

/// Conversion constants between the paper's time units (§4.2).
///
/// The §4.2 network simulations assume the PE instruction time and the MM
/// access time each equal two network cycles, which makes the minimum
/// central-memory access time (MM access + two minimum network transits)
/// equal to eight PE instruction times for the 6-stage 4×4 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeScale {
    /// Network cycles per PE instruction.
    pub cycles_per_instruction: Cycle,
    /// Network cycles per MM access.
    pub cycles_per_mm_access: Cycle,
}

impl Default for TimeScale {
    fn default() -> Self {
        Self {
            cycles_per_instruction: 2,
            cycles_per_mm_access: 2,
        }
    }
}

impl crate::wire::Wire for TimeScale {
    fn encode(&self, w: &mut crate::wire::WireWriter) {
        w.u64(self.cycles_per_instruction);
        w.u64(self.cycles_per_mm_access);
    }
    fn decode(r: &mut crate::wire::WireReader<'_>) -> Result<Self, crate::wire::WireError> {
        Ok(Self {
            cycles_per_instruction: r.u64()?,
            cycles_per_mm_access: r.u64()?,
        })
    }
}

impl TimeScale {
    /// Converts a duration in network cycles to PE instruction times.
    #[must_use]
    pub fn cycles_to_instructions(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.cycles_per_instruction as f64
    }

    /// Converts a duration in PE instruction times to network cycles.
    #[must_use]
    pub fn instructions_to_cycles(&self, instructions: Cycle) -> Cycle {
        instructions * self.cycles_per_instruction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_ticks() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
    }

    #[test]
    fn advance_adds() {
        let mut c = Clock::new();
        c.advance(100);
        c.tick();
        assert_eq!(c.now(), 101);
    }

    #[test]
    fn default_timescale_matches_paper() {
        let ts = TimeScale::default();
        assert_eq!(ts.cycles_per_instruction, 2);
        assert_eq!(ts.cycles_per_mm_access, 2);
        // 16 network cycles == 8 PE instruction times (paper §4.2).
        assert!((ts.cycles_to_instructions(16) - 8.0).abs() < f64::EPSILON);
        assert_eq!(ts.instructions_to_cycles(8), 16);
    }
}

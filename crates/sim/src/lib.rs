//! Simulation substrate for the NYU Ultracomputer reproduction.
//!
//! This crate holds everything the higher-level machine models share but that
//! is not specific to any one hardware component:
//!
//! * [`rng`] — a small, fully deterministic pseudo-random number generator
//!   ([`rng::SplitMix64`] and [`rng::Xoshiro256StarStar`]) so that every
//!   experiment in the repository is reproducible from a single seed,
//!   independent of external crate versions.
//! * [`clock`] — the global cycle clock ([`clock::Clock`]) used by the
//!   cycle-driven machine simulation.
//! * [`stats`] — counters, running means/variances and power-of-two
//!   histograms used to report latency and occupancy distributions.
//! * [`ids`] — strongly typed identifiers for processing elements and memory
//!   modules, memory addresses, and base-`k` digit manipulation helpers used
//!   by the Omega-network routing logic.
//! * [`par`] / [`pool`] — deterministic fork–join over mutable slices: the
//!   one-shot scoped-thread form ([`par::par_for_each_mut`]) and the
//!   persistent worker pool ([`pool::WorkerPool`]) the cycle engine
//!   dispatches through every cycle.
//! * [`wire`] — the hand-rolled binary format machine snapshots are
//!   written in ([`wire::Wire`], [`wire::WireWriter`],
//!   [`wire::WireReader`]).
//!
//! # Example
//!
//! ```
//! use ultra_sim::rng::{Rng, SplitMix64};
//! use ultra_sim::stats::Histogram;
//!
//! let mut rng = SplitMix64::new(42);
//! let mut hist = Histogram::new();
//! for _ in 0..1000 {
//!     hist.record(rng.range_u64(1..100));
//! }
//! assert_eq!(hist.count(), 1000);
//! assert!(hist.mean() > 0.0);
//! ```

pub mod clock;
pub mod ids;
pub mod inline_vec;
pub mod mask;
pub mod par;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod wire;

pub use clock::{Clock, Cycle};
pub use ids::{digits, MemAddr, MmId, PeId, Value};
pub use inline_vec::InlineVec;
pub use mask::{AtomicBitmap, PackedMask};
pub use par::par_for_each_mut;
pub use pool::{PoolDispatchStats, WorkerPool};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
pub use stats::{Counter, Histogram, RunningStats};
pub use wire::{Wire, WireError, WireReader, WireWriter};

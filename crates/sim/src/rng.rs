//! Deterministic pseudo-random number generation.
//!
//! The simulator must produce bit-identical traces for a given seed so that
//! every experiment in `EXPERIMENTS.md` can be regenerated exactly. To avoid
//! depending on the streaming behaviour of external crates (which may change
//! between versions) this module implements two tiny, well-known generators:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. Used directly for
//!   most simulation decisions and to seed the larger generator.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256**, used where
//!   longer periods matter (long Monte-Carlo workload runs).
//!
//! Neither generator is cryptographic; both are more than adequate for the
//! queueing-simulation purposes here.

use core::ops::Range;

use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// A deterministic source of pseudo-random numbers.
///
/// All simulator components draw randomness through this trait so that the
/// generator can be swapped in tests. The provided methods derive bounded
/// integers, floats and Bernoulli draws from the raw 64-bit output.
///
/// # Example
///
/// ```
/// use ultra_sim::rng::{Rng, SplitMix64};
///
/// let mut rng = SplitMix64::new(7);
/// let x = rng.range_u64(10..20);
/// assert!((10..20).contains(&x));
/// ```
pub trait Rng {
    /// Returns the next raw 64-bit pseudo-random value.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `range`.
    ///
    /// Uses Lemire-style multiply-shift rejection-free mapping, which is
    /// negligibly biased for the small ranges used by the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let x = self.next_u64();
        // 128-bit multiply-high maps x uniformly onto [0, span).
        let hi = ((u128::from(x) * u128::from(span)) >> 64) as u64;
        range.start + hi
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn below(&mut self, bound: usize) -> usize {
        self.range_u64(0..bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffles `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

/// SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Tiny state, excellent mixing, period 2⁶⁴. This is the default generator
/// for all simulator decisions.
///
/// # Example
///
/// ```
/// use ultra_sim::rng::{Rng, SplitMix64};
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including zero) is
    /// acceptable.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child generator; used to give each PE its own
    /// stream without correlation.
    #[must_use]
    pub fn split(&mut self) -> Self {
        Self::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }
}

impl Wire for SplitMix64 {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.state);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self { state: r.u64()? })
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** generator (Blackman & Vigna, 2018). Period 2²⁵⁶ − 1.
///
/// Used by long-running Monte-Carlo workloads where SplitMix64's 2⁶⁴ period
/// would be marginal.
///
/// # Example
///
/// ```
/// use ultra_sim::rng::{Rng, Xoshiro256StarStar};
///
/// let mut rng = Xoshiro256StarStar::new(99);
/// assert!(rng.f64() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator, expanding the seed through SplitMix64 as the
    /// authors recommend.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // All-zero state is invalid; the SplitMix expansion of any seed is
        // nonzero with overwhelming probability, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Self { s }
    }
}

impl Wire for Xoshiro256StarStar {
    fn encode(&self, w: &mut WireWriter) {
        self.s.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let s = <[u64; 4]>::decode(r)?;
        if s == [0; 4] {
            return Err(WireError::Invalid("all-zero xoshiro state"));
        }
        Ok(Self { s })
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the public-domain C reference.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Xoshiro256StarStar::new(123);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = rng.range_u64(17..42);
            assert!((17..42).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values_of_small_span() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64::new(0);
        let _ = rng.range_u64(5..5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = SplitMix64::new(8);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn generators_round_trip_through_wire() {
        let mut sm = SplitMix64::new(3);
        let mut xo = Xoshiro256StarStar::new(4);
        let _ = (sm.next_u64(), xo.next_u64()); // advance off the seed
        let mut w = WireWriter::new();
        sm.encode(&mut w);
        xo.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut sm2 = SplitMix64::decode(&mut r).unwrap();
        let mut xo2 = Xoshiro256StarStar::decode(&mut r).unwrap();
        assert_eq!(sm.next_u64(), sm2.next_u64());
        assert_eq!(xo.next_u64(), xo2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}

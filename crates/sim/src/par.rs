//! Deterministic fork-join parallelism over mutable slices.
//!
//! The cycle engine fans out mutually independent per-cycle units (network
//! copies, memory banks, PE shards) across OS threads and merges their
//! results in fixed index order, so a parallel run is bit-identical to a
//! sequential one by construction. This module provides the one primitive
//! that fan-out needs: apply a function to every element of a `&mut [T]`,
//! split contiguously across at most `threads` scoped threads.
//!
//! Built on [`std::thread::scope`] (no external dependencies, no unsafe
//! code): each worker borrows a disjoint `chunks_mut` slice, so aliasing is
//! ruled out by the type system, and the scope joins every worker before
//! returning, so the caller observes all effects. Determinism follows
//! because element `i` is always processed with the same index and the same
//! exclusive access to `items[i]`, regardless of which thread runs it.

/// Applies `f(index, &mut item)` to every element of `items`, using up to
/// `threads` OS threads (the calling thread counts as one).
///
/// With `threads <= 1`, a single element, or an empty slice, this runs
/// inline with zero overhead — the sequential engine and the parallel
/// engine share one code path, which is what makes them bit-identical.
///
/// `f` must be safe to call concurrently on distinct elements (`Sync`);
/// each element is visited exactly once with exclusive access.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = &mut *items;
        let mut base = chunk;
        // The calling thread takes the first chunk itself; spawn the rest.
        let (first, tail) = rest.split_at_mut(chunk.min(n));
        rest = tail;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let start = base;
            scope.spawn(move || {
                for (i, item) in mine.iter_mut().enumerate() {
                    f(start + i, item);
                }
            });
            base += take;
        }
        for (i, item) in first.iter_mut().enumerate() {
            f(i, item);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_element_with_its_index() {
        for threads in [0, 1, 2, 3, 4, 7, 64] {
            let mut v: Vec<usize> = vec![0; 23];
            par_for_each_mut(&mut v, threads, |i, x| *x = i * 10);
            let expect: Vec<usize> = (0..23).map(|i| i * 10).collect();
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_slices_are_fine() {
        let mut empty: Vec<u32> = Vec::new();
        par_for_each_mut(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![5u32];
        par_for_each_mut(&mut one, 4, |i, x| {
            assert_eq!(i, 0);
            *x += 1;
        });
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn more_threads_than_items_caps_at_items() {
        let mut v = vec![1u64; 3];
        par_for_each_mut(&mut v, 16, |i, x| *x = i as u64);
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn effects_are_deterministic_across_thread_counts() {
        // A stand-in for a per-shard RNG-bearing unit: the result depends
        // only on the element's own state and index, never on scheduling.
        let run = |threads: usize| -> Vec<u64> {
            let mut v: Vec<u64> = (0..97).map(|i| i * 3 + 1).collect();
            par_for_each_mut(&mut v, threads, |i, x| {
                let mut h = *x;
                for _ in 0..100 {
                    h = h.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                }
                *x = h;
            });
            v
        };
        let seq = run(1);
        for t in [2, 3, 4, 8] {
            assert_eq!(run(t), seq, "threads={t}");
        }
    }
}

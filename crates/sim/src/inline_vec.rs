//! A small vector that stores its first `N` elements inline.
//!
//! The hot path of the cycle engine moves [`crate::ids::PeId`]-sized ids
//! around in per-message lists (a combined message's folded constituents,
//! §3.1.2) whose length is almost always 1 and only grows past a handful
//! under heavy combining. A `Vec` there costs one heap allocation per
//! message; `InlineVec` keeps short lists entirely inline and spills to a
//! `Vec` only when the inline capacity overflows.
//!
//! Written in 100% safe code (the workspace denies `unsafe`): the inline
//! storage is a plain `[T; N]` of `Copy + Default` elements — vacant slots
//! hold `T::default()`, so no `Option` niche-less padding doubles the
//! footprint of id-sized payloads, and messages stay cheap to memcpy
//! through switch queues. Elements are push-only plus `clear`, which is
//! all the folded-list use case needs and keeps the representation
//! canonical (inline slots fill before the spill vector).

use core::fmt;

/// A push-only small vector: first `N` elements inline, the rest spilled
/// to the heap.
///
/// # Example
///
/// ```
/// use ultra_sim::inline_vec::InlineVec;
///
/// let mut v: InlineVec<u64, 2> = InlineVec::new();
/// v.push(7);
/// v.push(8);
/// v.push(9); // spills
/// assert_eq!(v.len(), 3);
/// assert_eq!(v.to_vec(), vec![7, 8, 9]);
/// ```
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    inline: [T; N],
    /// Number of occupied inline slots (`<= N`).
    inline_len: usize,
    /// Overflow storage; empty until the inline slots are full.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inline: [T::default(); N],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    /// Creates a vector holding a single element (no heap allocation).
    #[must_use]
    pub fn one(value: T) -> Self {
        let mut v = Self::new();
        v.push(value);
        v
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.inline_len < N {
            self.inline[self.inline_len] = value;
            self.inline_len += 1;
        } else {
            self.spill.push(value);
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0
    }

    /// Removes every element, keeping any spill capacity for reuse.
    pub fn clear(&mut self) {
        self.inline_len = 0;
        self.spill.clear();
    }

    /// Iterates the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.inline_len]
            .iter()
            .chain(self.spill.iter())
    }

    /// Whether `value` is among the elements.
    #[must_use]
    pub fn contains(&self, value: &T) -> bool
    where
        T: PartialEq,
    {
        self.iter().any(|v| v == value)
    }

    /// Appends every element of `other`.
    pub fn extend_from(&mut self, other: &Self) {
        for &v in other {
            self.push(v);
        }
    }

    /// Copies the elements out into a plain `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().copied().collect()
    }
}

impl<T: Copy + Default + crate::wire::Wire, const N: usize> crate::wire::Wire for InlineVec<T, N> {
    fn encode(&self, w: &mut crate::wire::WireWriter) {
        w.usize(self.len());
        for item in self.iter() {
            item.encode(w);
        }
    }
    fn decode(r: &mut crate::wire::WireReader<'_>) -> Result<Self, crate::wire::WireError> {
        let len = r.seq_len()?;
        let mut out = Self::new();
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(values: Vec<T>) -> Self {
        let mut v = Self::new();
        for value in values {
            v.push(value);
        }
        v
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for value in iter {
            v.push(value);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::iter::Chain<core::slice::Iter<'a, T>, core::slice::Iter<'a, T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.inline[..self.inline_len]
            .iter()
            .chain(self.spill.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 3> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..3 {
            v.push(i);
        }
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..7 {
            v.push(i);
        }
        assert_eq!(v.len(), 7);
        assert_eq!(v.to_vec(), (0..7).collect::<Vec<_>>());
        assert!(v.contains(&6));
        assert!(!v.contains(&7));
    }

    #[test]
    fn clear_resets_and_allows_reuse() {
        let mut v: InlineVec<u32, 2> = (0..5).collect();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        v.push(9);
        assert_eq!(v.to_vec(), vec![9]);
    }

    #[test]
    fn equality_ignores_representation_boundary() {
        let a: InlineVec<u32, 2> = (0..4).collect();
        let b: InlineVec<u32, 2> = (0..4).collect();
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1, 2, 3]);
        let c: InlineVec<u32, 2> = (0..3).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn extend_from_merges_lists() {
        let mut a: InlineVec<u32, 2> = InlineVec::one(1);
        let b: InlineVec<u32, 2> = vec![2, 3, 4].into();
        a.extend_from(&b);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn id_sized_elements_stay_memcpy_small() {
        // The whole point of the plain-array representation: four u64-ish
        // ids plus bookkeeping, not four 16-byte `Option`s.
        assert!(
            std::mem::size_of::<InlineVec<u64, 4>>()
                <= 4 * std::mem::size_of::<u64>() + 2 * std::mem::size_of::<usize>() * 4
        );
    }

    #[test]
    fn reference_iteration_works() {
        let v: InlineVec<u32, 2> = (10..15).collect();
        let sum: u32 = (&v).into_iter().copied().sum();
        assert_eq!(sum, 10 + 11 + 12 + 13 + 14);
    }
}

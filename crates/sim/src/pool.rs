//! A persistent worker pool for the per-cycle fan-out.
//!
//! [`crate::par_for_each_mut`] proved the determinism story — contiguous
//! chunks, fixed index order, bit-identical results at any thread count —
//! but it spawns fresh scoped threads on every call, and a cycle engine
//! calls it up to three times *per simulated cycle*. At ~10⁵ cycles/sec
//! the spawn/join cost dwarfs the work being fanned out, which is why the
//! per-cycle-scope parallel engine lost to the sequential one at every
//! machine size. [`WorkerPool`] keeps the same chunking and the same
//! determinism guarantee, but parks `threads - 1` OS threads once at
//! construction and hands them **epoch-stamped work descriptors** through
//! a mutex/condvar pair: dispatching a fan-out is two lock acquisitions
//! and a wake, not thread creation.
//!
//! # Safety
//!
//! Scoped threads cannot outlive one call, and a long-lived thread cannot
//! hold a short-lived `&mut [T]`, so persistence forces a narrow unsafe
//! core: the slice is passed as a type-erased `(pointer, len)` descriptor
//! and each worker rebuilds `&mut` references to *its chunk only*. The
//! invariants that make this sound are local to this module:
//!
//! * chunks are disjoint by construction (`[i * chunk, (i+1) * chunk)`),
//!   so no element is ever referenced by two threads;
//! * the caller blocks until every participating worker has finished its
//!   chunk, so the borrow of `items` strictly outlives all worker access
//!   (workers never touch the descriptor outside an epoch they joined);
//! * `T: Send` bounds the element transfer, `F: Sync` the shared closure;
//! * worker panics are caught, forwarded, and re-raised on the caller.

// The workspace denies `unsafe_code`; this module is the one place the
// cycle engine needs it, with the invariants documented above.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased description of one fan-out: "apply `call` to elements
/// `start..end` of the slice at `data`". Stamped into [`State`] under the
/// lock; workers copy it out together with the epoch that published it.
#[derive(Clone, Copy)]
struct Task {
    /// Base pointer of the `&mut [T]` being processed.
    data: *mut (),
    /// Element count of the slice.
    len: usize,
    /// Pointer to the caller's `F` closure (alive until the call returns).
    ctx: *const (),
    /// Monomorphized trampoline that rebuilds `&mut T` + `&F` and runs
    /// one chunk.
    run_chunk: unsafe fn(*mut (), *const (), usize, usize),
    /// Elements per chunk.
    chunk: usize,
    /// Number of chunks (= participating threads, caller included).
    chunks: usize,
}

// SAFETY: the pointers describe a `&mut [T]` with `T: Send` and a `F:
// Sync` closure (enforced by `WorkerPool::run`'s bounds); disjoint chunk
// ranges and the completion barrier make the cross-thread access sound.
unsafe impl Send for Task {}

struct State {
    /// Incremented for every published task; workers use it to tell a new
    /// task from a spurious wakeup or an already-finished one.
    epoch: u64,
    task: Option<Task>,
    /// Worker chunks still outstanding for the current epoch.
    remaining: usize,
    /// Set when a worker chunk panicked this epoch.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a task is published (or shutdown begins).
    work_ready: Condvar,
    /// Signalled when the last outstanding worker chunk completes.
    work_done: Condvar,
}

/// A pool of parked OS threads that repeatedly applies closures over
/// mutable slices with [`crate::par_for_each_mut`]'s exact chunking and
/// ordering semantics — element `i` is always visited once, with its
/// index, with exclusive access — so swapping one for the other cannot
/// change any result, only the wall-clock.
///
/// `WorkerPool::new(1)` (or a slice of length ≤ 1) runs inline on the
/// caller with zero synchronization: the sequential engine and the
/// parallel engine share one code path, which is what makes them
/// bit-identical.
pub struct WorkerPool {
    shared: Option<Arc<Shared>>,
    handles: Vec<JoinHandle<()>>,
    /// Fan-outs dispatched (inline or parallel) since construction.
    dispatches: AtomicU64,
    /// Chunks those fan-outs split into, summed — `chunks / dispatches`
    /// is the pool's mean dispatch occupancy.
    chunks_dispatched: AtomicU64,
    /// Chunk count of the most recent dispatch.
    last_chunks: AtomicU64,
}

/// Cumulative dispatch accounting for a [`WorkerPool`] — observability
/// counters only, never consulted by the pool itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolDispatchStats {
    /// Fan-outs dispatched since the pool was built.
    pub dispatches: u64,
    /// Total chunks across all dispatches (1 per inline run).
    pub chunks: u64,
    /// Chunk count of the most recent dispatch.
    pub last_chunks: u64,
}

impl PoolDispatchStats {
    /// Mean chunks per dispatch — how much of the pool each fan-out
    /// actually occupied (1.0 means everything ran inline).
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.chunks as f64 / self.dispatches as f64
        }
    }
}

impl WorkerPool {
    /// Creates a pool that fans work out over `threads` OS threads total:
    /// the calling thread plus `threads - 1` parked workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread cannot be spawned.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "need at least the calling thread");
        let workers = threads - 1;
        if workers == 0 {
            return Self {
                shared: None,
                handles: Vec::new(),
                dispatches: AtomicU64::new(0),
                chunks_dispatched: AtomicU64::new(0),
                last_chunks: AtomicU64::new(0),
            };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|wi| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ultra-pool-{wi}"))
                    .spawn(move || worker_loop(&shared, wi))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared: Some(shared),
            handles,
            dispatches: AtomicU64::new(0),
            chunks_dispatched: AtomicU64::new(0),
            last_chunks: AtomicU64::new(0),
        }
    }

    /// Total thread count this pool fans out over (workers + caller).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Cumulative dispatch accounting (relaxed counters — exact on any
    /// single-threaded reader once dispatches have completed).
    #[must_use]
    pub fn dispatch_stats(&self) -> PoolDispatchStats {
        PoolDispatchStats {
            dispatches: self.dispatches.load(Ordering::Relaxed),
            chunks: self.chunks_dispatched.load(Ordering::Relaxed),
            last_chunks: self.last_chunks.load(Ordering::Relaxed),
        }
    }

    /// Applies `f(index, &mut item)` to every element of `items`,
    /// splitting the slice into contiguous chunks across the pool.
    /// Blocks until every element has been processed.
    ///
    /// # Panics
    ///
    /// Re-raises the caller chunk's panic payload, or panics if a worker
    /// chunk panicked.
    pub fn run<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        let threads = self.threads().min(n);
        let chunk = n.div_ceil(threads.max(1));
        let chunks = if chunk == 0 { 0 } else { n.div_ceil(chunk) };
        self.count_dispatch(chunks);
        if chunks <= 1 || self.shared.is_none() {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let data: *mut () = items.as_mut_ptr().cast();
        let ctx: *const () = (&f as *const F).cast();
        // SAFETY: `data`/`ctx` describe the live `&mut [T]` and `F` for
        // the duration of the (blocking) dispatch; chunk ranges are
        // disjoint by construction.
        unsafe { self.dispatch_raw(data, n, ctx, run_chunk::<T, F>, chunk, chunks) }
    }

    /// Applies `f(index, &mut item)` to every element whose bit is set in
    /// `mask` (bit `i % 64` of word `i / 64` is element `i`), skipping
    /// clear elements — and whole all-zero words — entirely.
    ///
    /// The dispatch is **occupancy-adaptive**: the thread count is chosen
    /// from the popcount of `mask` (one thread per `grain` set members,
    /// capped at the pool size), so a low-traffic cycle with a handful of
    /// set bits runs inline on the caller as a word-skipping scan instead
    /// of paying worker wake-ups for empty chunks. Parallel chunks are
    /// word-aligned so each worker owns whole mask words.
    ///
    /// Effects are identical to the sequential masked loop
    /// `for i in ascending set bits { f(i, &mut items[i]) }` under the
    /// same deferred-effect contract as [`WorkerPool::run`]: every set
    /// element is visited exactly once with exclusive access.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has fewer than `items.len().div_ceil(64)` words
    /// or sets a bit at or beyond `items.len()`; re-raises chunk panics
    /// like [`WorkerPool::run`].
    pub fn run_sparse<T, F>(&self, items: &mut [T], mask: &[u64], grain: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        let words = n.div_ceil(64);
        assert!(mask.len() >= words, "mask shorter than the slice");
        let active: usize = mask[..words].iter().map(|w| w.count_ones() as usize).sum();
        debug_assert!(
            mask[..words]
                .iter()
                .enumerate()
                .all(
                    |(w, &bits)| (w * 64) + (64 - bits.leading_zeros() as usize) <= n || bits == 0
                ),
            "mask sets a bit beyond the slice"
        );
        if active == 0 {
            self.count_dispatch(1);
            return;
        }
        let want = active
            .div_ceil(grain.max(1))
            .min(self.threads())
            .min(words)
            .max(1);
        if want <= 1 || self.shared.is_none() {
            self.count_dispatch(1);
            for (w, &word_bits) in mask[..words].iter().enumerate() {
                let mut bits = word_bits;
                while bits != 0 {
                    let i = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    f(i, &mut items[i]);
                }
            }
            return;
        }
        let chunk = words.div_ceil(want) * 64;
        let chunks = n.div_ceil(chunk);
        self.count_dispatch(chunks);
        let mc = MaskedCtx { f: &f, mask };
        let data: *mut () = items.as_mut_ptr().cast();
        let ctx: *const () = (&mc as *const MaskedCtx<'_, F>).cast();
        // SAFETY: as in `run` — `data` is the live slice, `ctx` the live
        // `MaskedCtx` (closure + mask borrows outlive the blocking
        // dispatch), chunks are disjoint and word-aligned.
        unsafe { self.dispatch_raw(data, n, ctx, run_chunk_masked::<T, F>, chunk, chunks) }
    }

    fn count_dispatch(&self, chunks: usize) {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.chunks_dispatched
            .fetch_add(chunks.max(1) as u64, Ordering::Relaxed);
        self.last_chunks
            .store(chunks.max(1) as u64, Ordering::Relaxed);
    }

    /// Publishes one type-erased fan-out, runs chunk 0 on the caller, and
    /// blocks until every worker chunk completes.
    ///
    /// # Safety
    ///
    /// `data`/`ctx` must satisfy `entry`'s contract for every chunk
    /// `[i * chunk, min((i+1) * chunk, len))`, `i < chunks`, and stay
    /// alive until this call returns (it blocks until all chunks finish).
    unsafe fn dispatch_raw(
        &self,
        data: *mut (),
        len: usize,
        ctx: *const (),
        entry: unsafe fn(*mut (), *const (), usize, usize),
        chunk: usize,
        chunks: usize,
    ) {
        let shared = self.shared.as_ref().expect("workers exist");
        {
            let mut st = shared.state.lock().expect("pool mutex");
            st.epoch += 1;
            st.task = Some(Task {
                data,
                len,
                ctx,
                run_chunk: entry,
                chunk,
                chunks,
            });
            st.remaining = chunks - 1;
            st.panicked = false;
            shared.work_ready.notify_all();
        }
        // The caller takes chunk 0 itself, through the same erased entry
        // point the workers use, so every element access shares the
        // provenance of the one `as_mut_ptr` in the public wrapper.
        // SAFETY: chunk 0 is `[0, chunk)`, disjoint from every worker
        // chunk; `data`/`ctx` outlive this call per our own contract.
        let caller = catch_unwind(AssertUnwindSafe(|| unsafe {
            entry(data, ctx, 0, chunk.min(len));
        }));
        let worker_panicked = {
            let mut st = shared.state.lock().expect("pool mutex");
            while st.remaining > 0 {
                st = shared.work_done.wait(st).expect("pool mutex");
            }
            st.task = None;
            st.panicked
        };
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        assert!(!worker_panicked, "a WorkerPool worker chunk panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            let mut st = shared.state.lock().expect("pool mutex");
            st.shutdown = true;
            shared.work_ready.notify_all();
            drop(st);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

/// Rebuilds the typed view of one chunk and processes it.
///
/// # Safety
///
/// `data` must point to a live `[T]` of at least `end` elements with no
/// other thread touching `start..end`, and `ctx` to a live `F`.
unsafe fn run_chunk<T, F>(data: *mut (), ctx: *const (), start: usize, end: usize)
where
    F: Fn(usize, &mut T),
{
    let base = data.cast::<T>();
    // SAFETY: caller contract — `ctx` is the caller's `F`, alive until
    // every chunk completes.
    let f = unsafe { &*ctx.cast::<F>() };
    for i in start..end {
        // SAFETY: caller contract — element `i` is inside the slice and
        // exclusively ours for this epoch.
        f(i, unsafe { &mut *base.add(i) });
    }
}

/// The erased context of a masked fan-out: the caller's closure plus the
/// membership words it filters by.
struct MaskedCtx<'a, F> {
    f: &'a F,
    mask: &'a [u64],
}

/// Rebuilds the typed view of one word-aligned chunk and processes only
/// its mask-set elements, skipping all-zero words in one test each.
///
/// # Safety
///
/// As [`run_chunk`], plus `ctx` must point to a live
/// [`MaskedCtx`]`<'_, F>` and `start` must be a multiple of 64.
unsafe fn run_chunk_masked<T, F>(data: *mut (), ctx: *const (), start: usize, end: usize)
where
    F: Fn(usize, &mut T),
{
    let base = data.cast::<T>();
    // SAFETY: caller contract — `ctx` is the caller's `MaskedCtx`, alive
    // until every chunk completes.
    let mc = unsafe { &*ctx.cast::<MaskedCtx<'_, F>>() };
    debug_assert_eq!(start % 64, 0, "masked chunks are word-aligned");
    for w in start / 64..end.div_ceil(64) {
        let mut bits = mc.mask[w];
        while bits != 0 {
            let i = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if i >= end {
                break;
            }
            // SAFETY: caller contract — element `i` is inside the slice
            // and exclusively ours for this epoch.
            (mc.f)(i, unsafe { &mut *base.add(i) });
        }
    }
}

/// What each parked worker runs: wait for a new epoch, take chunk
/// `wi + 1` if the task has one for us, report completion, repeat.
fn worker_loop(shared: &Shared, wi: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock().expect("pool mutex");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.task;
                }
                st = shared.work_ready.wait(st).expect("pool mutex");
            }
        };
        let Some(task) = task else { continue };
        let mine = wi + 1;
        if mine >= task.chunks {
            continue;
        }
        let start = mine * task.chunk;
        let end = (start + task.chunk).min(task.len);
        // SAFETY: the publishing `run` call holds `&mut [T]` across this
        // epoch and chunk `mine` is ours alone.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe {
            (task.run_chunk)(task.data, task.ctx, start, end);
        }));
        let mut st = shared.state.lock().expect("pool mutex");
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.work_done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_element_with_its_index() {
        for threads in [1, 2, 3, 4, 7] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.threads(), threads);
            let mut v: Vec<usize> = vec![0; 23];
            pool.run(&mut v, |i, x| *x = i * 10);
            let expect: Vec<usize> = (0..23).map(|i| i * 10).collect();
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_slices_run_inline() {
        let pool = WorkerPool::new(4);
        let mut empty: Vec<u32> = Vec::new();
        pool.run(&mut empty, |_, _| unreachable!());
        let mut one = vec![5u32];
        pool.run(&mut one, |i, x| {
            assert_eq!(i, 0);
            *x += 1;
        });
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = WorkerPool::new(3);
        let mut v = vec![0u64; 17];
        for round in 0..200u64 {
            pool.run(&mut v, |i, x| *x += round + i as u64);
        }
        let sum_rounds: u64 = (0..200).sum();
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, sum_rounds + 200 * i as u64);
        }
    }

    #[test]
    fn matches_par_for_each_mut_exactly() {
        // The pool replaces `par_for_each_mut` in the cycle engine; both
        // must produce identical effects for identical inputs.
        let work = |i: usize, x: &mut u64| {
            let mut h = *x;
            for _ in 0..50 {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            *x = h;
        };
        for threads in [1usize, 2, 3, 4, 8] {
            let mut scoped: Vec<u64> = (0..97).map(|i| i * 3 + 1).collect();
            crate::par_for_each_mut(&mut scoped, threads, work);
            let pool = WorkerPool::new(threads);
            let mut pooled: Vec<u64> = (0..97).map(|i| i * 3 + 1).collect();
            pool.run(&mut pooled, work);
            assert_eq!(pooled, scoped, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_items_caps_at_items() {
        let pool = WorkerPool::new(16);
        let mut v = vec![1u64; 3];
        pool.run(&mut v, |i, x| *x = i as u64);
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn borrowed_context_is_usable_from_workers() {
        let offsets: Vec<u64> = (0..10).collect();
        let pool = WorkerPool::new(4);
        let mut v = vec![0u64; 10];
        pool.run(&mut v, |i, x| *x = offsets[i] * 2);
        assert_eq!(v, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn dispatch_stats_count_fanouts_and_chunks() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.dispatch_stats(), PoolDispatchStats::default());
        let mut v = vec![0u64; 16];
        pool.run(&mut v, |i, x| *x = i as u64);
        pool.run(&mut v, |i, x| *x += i as u64);
        let mut one = vec![1u64];
        pool.run(&mut one, |_, x| *x += 1);
        let stats = pool.dispatch_stats();
        assert_eq!(stats.dispatches, 3);
        // Two 4-chunk fan-outs plus one inline run.
        assert_eq!(stats.chunks, 9);
        assert_eq!(stats.last_chunks, 1);
        assert!((stats.mean_occupancy() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_sparse_matches_the_sequential_masked_loop() {
        let mask_for = |n: usize, pred: &dyn Fn(usize) -> bool| {
            let mut mask = vec![0u64; n.div_ceil(64)];
            for i in (0..n).filter(|&i| pred(i)) {
                mask[i / 64] |= 1 << (i % 64);
            }
            mask
        };
        type Pred = Box<dyn Fn(usize) -> bool>;
        let work = |i: usize, x: &mut u64| *x = x.wrapping_mul(31).wrapping_add(i as u64);
        let patterns: Vec<(&str, Pred)> = vec![
            ("dense", Box::new(|_| true)),
            ("sparse", Box::new(|i| i % 97 == 0)),
            ("clustered", Box::new(|i| (300..340).contains(&i))),
            ("tail", Box::new(|i| i >= 450)),
        ];
        for (name, pred) in &patterns {
            for threads in [1usize, 2, 4, 8] {
                for grain in [1usize, 16, 256] {
                    let n = 457;
                    let mask = mask_for(n, pred);
                    let mut expect: Vec<u64> = (0..n as u64).collect();
                    for i in (0..n).filter(|&i| pred(i)) {
                        work(i, &mut expect[i]);
                    }
                    let pool = WorkerPool::new(threads);
                    let mut got: Vec<u64> = (0..n as u64).collect();
                    pool.run_sparse(&mut got, &mask, grain, work);
                    assert_eq!(got, expect, "{name} threads={threads} grain={grain}");
                }
            }
        }
    }

    #[test]
    fn run_sparse_empty_mask_touches_nothing() {
        let pool = WorkerPool::new(4);
        let mut v = vec![7u64; 100];
        pool.run_sparse(&mut v, &[0, 0], 1, |_, _| unreachable!());
        assert!(v.iter().all(|&x| x == 7));
        // An empty-mask dispatch is still accounted (as one inline chunk).
        assert_eq!(pool.dispatch_stats().dispatches, 1);
        assert_eq!(pool.dispatch_stats().last_chunks, 1);
    }

    #[test]
    fn run_sparse_adapts_threads_to_occupancy() {
        let pool = WorkerPool::new(4);
        let mut v = vec![0u64; 256];
        // 3 set bits with grain 64: one thread suffices — inline chunk.
        let sparse_mask = [0b111u64, 0, 0, 0];
        pool.run_sparse(&mut v, &sparse_mask, 64, |i, x| *x = i as u64 + 1);
        assert_eq!(pool.dispatch_stats().last_chunks, 1);
        assert_eq!((v[0], v[1], v[2], v[3]), (1, 2, 3, 0));
        // A full mask with grain 1 fans out across the pool.
        let full_mask = [u64::MAX; 4];
        pool.run_sparse(&mut v, &full_mask, 1, |i, x| *x = i as u64);
        assert_eq!(pool.dispatch_stats().last_chunks, 4);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn worker_panic_is_reported() {
        let pool = WorkerPool::new(2);
        let mut v = vec![0u64; 8];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&mut v, |i, _| assert!(i < 6, "boom"));
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool survives a panicked dispatch.
        pool.run(&mut v, |i, x| *x = i as u64);
        assert_eq!(v[7], 7);
    }
}

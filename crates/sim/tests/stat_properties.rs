//! Property tests for the statistics substrate: the streaming
//! accumulators must agree with naive reference computations on arbitrary
//! inputs, and the RNG must be a well-behaved uniform source.

use proptest::prelude::*;
use ultra_sim::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use ultra_sim::stats::{Histogram, RunningStats};

proptest! {
    #[test]
    fn running_stats_matches_reference(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }

    #[test]
    fn running_stats_merge_any_split(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((xs.len() as f64) * cut_frac) as usize;
        let mut whole = RunningStats::new();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < cut {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance()));
    }

    #[test]
    fn histogram_mean_count_max_are_exact(values in prop::collection::vec(0u64..100_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-9 * (1.0 + mean));
    }

    #[test]
    fn histogram_percentile_exact_below_256(values in prop::collection::vec(0u64..256, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &p in &[0.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
            prop_assert_eq!(h.percentile(p), sorted[rank], "p = {}", p);
        }
    }

    #[test]
    fn percentiles_are_monotone(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let q = h.percentile(p);
            prop_assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn rng_below_is_roughly_uniform(seed in any::<u64>(), bound in 2usize..32) {
        let mut rng = SplitMix64::new(seed);
        let draws = 8_000;
        let mut counts = vec![0u32; bound];
        for _ in 0..draws {
            counts[rng.below(bound)] += 1;
        }
        let expect = draws as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (f64::from(c) - expect).abs() < 6.0 * expect.sqrt() + 10.0,
                "bucket {} count {} far from {}",
                i, c, expect
            );
        }
    }

    #[test]
    fn generators_are_deterministic_and_distinct(seed in any::<u64>()) {
        let mut a1 = SplitMix64::new(seed);
        let mut a2 = SplitMix64::new(seed);
        let mut b = Xoshiro256StarStar::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a1.next_u64(), a2.next_u64());
        }
        // The two generator families must not mirror each other.
        let mut a3 = SplitMix64::new(seed);
        let same = (0..64).filter(|_| a3.next_u64() == b.next_u64()).count();
        prop_assert!(same < 4);
    }
}

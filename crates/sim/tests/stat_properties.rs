//! Property tests for the statistics substrate: the streaming
//! accumulators must agree with naive reference computations on arbitrary
//! inputs, and the RNG must be a well-behaved uniform source.
//!
//! The cases are driven by the crate's own deterministic [`SplitMix64`]
//! rather than an external property-testing framework: every run explores
//! the same inputs, so a failure is reproducible from the case index alone.

use ultra_sim::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use ultra_sim::stats::{Histogram, RunningStats};

/// Runs `f` against `cases` independent deterministic RNG streams.
fn forall(cases: u64, label: &str, mut f: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(0xC0FF_EE00 ^ (case.wrapping_mul(0x9e37_79b9)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{label}` failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

fn vec_f64(rng: &mut SplitMix64, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = min_len + rng.below(max_len - min_len);
    (0..len).map(|_| lo + rng.f64() * (hi - lo)).collect()
}

fn vec_u64(rng: &mut SplitMix64, bound: u64, min_len: usize, max_len: usize) -> Vec<u64> {
    let len = min_len + rng.below(max_len - min_len);
    (0..len).map(|_| rng.range_u64(0..bound)).collect()
}

#[test]
fn running_stats_matches_reference() {
    forall(128, "running_stats_matches_reference", |rng| {
        let xs = vec_f64(rng, -1e6, 1e6, 1, 200);
        let mut s = RunningStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert_eq!(s.count(), xs.len() as u64);
        assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), min);
        assert_eq!(s.max(), max);
    });
}

#[test]
fn running_stats_merge_any_split() {
    forall(128, "running_stats_merge_any_split", |rng| {
        let xs = vec_f64(rng, -1e3, 1e3, 2, 100);
        let cut = rng.below(xs.len() + 1);
        let mut whole = RunningStats::new();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < cut {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        assert!((a.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance()));
    });
}

#[test]
fn histogram_mean_count_max_are_exact() {
    forall(128, "histogram_mean_count_max_are_exact", |rng| {
        let values = vec_u64(rng, 100_000, 1, 300);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        assert!((h.mean() - mean).abs() < 1e-9 * (1.0 + mean));
    });
}

#[test]
fn histogram_percentile_exact_below_256() {
    forall(128, "histogram_percentile_exact_below_256", |rng| {
        let values = vec_u64(rng, 256, 1, 300);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &p in &[0.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
            assert_eq!(h.percentile(p), sorted[rank], "p = {p}");
        }
    });
}

#[test]
fn percentiles_are_monotone() {
    forall(128, "percentiles_are_monotone", |rng| {
        let values = vec_u64(rng, 1_000_000, 1, 200);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let q = h.percentile(p);
            assert!(q >= last);
            last = q;
        }
    });
}

#[test]
fn histogram_percentile_100_equals_max() {
    forall(128, "histogram_percentile_100_equals_max", |rng| {
        // Mix small exact values with deep log-bin tails: the top
        // percentile must always be the exact observed maximum, never a
        // power-of-two bin edge.
        let bound = 1u64 << (2 + rng.below(40) as u32);
        let values = vec_u64(rng, bound, 1, 300);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), *values.iter().max().unwrap());
        assert_eq!(h.percentile(100.0), h.max());
    });
}

#[test]
fn histogram_percentile_never_understates() {
    forall(128, "histogram_percentile_never_understates", |rng| {
        // Bucketing may round a percentile up (to the bin's upper edge)
        // but must never report below the exact order statistic — a
        // tail-latency report that understates is the failure mode the
        // upper-edge semantics exist to rule out.
        let values = vec_u64(rng, 1 << 20, 1, 250);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &p in &[1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
            let q = h.percentile(p);
            assert!(q >= sorted[rank], "p{p}: {q} < exact {}", sorted[rank]);
            assert!(q <= h.max(), "p{p}: {q} above max {}", h.max());
        }
    });
}

#[test]
fn histogram_merge_then_percentile_consistent() {
    forall(128, "histogram_merge_then_percentile_consistent", |rng| {
        let values = vec_u64(rng, 1 << 24, 2, 300);
        let cut = rng.below(values.len() + 1);
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i < cut {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        for &p in &[0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p = {p}");
        }
        assert_eq!(a.percentile(100.0), whole.max());
    });
}

#[test]
fn histogram_cumulative_buckets_match_reference_counts() {
    forall(
        128,
        "histogram_cumulative_buckets_match_reference_counts",
        |rng| {
            // Every bucket edge coincides with a bin boundary, so the
            // cumulative count at each edge must be *exactly* the number of
            // raw values at or below it — and merging preserves that.
            let values = vec_u64(rng, 1 << 22, 1, 300);
            let cut = rng.below(values.len() + 1);
            let mut whole = Histogram::new();
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            for (i, &v) in values.iter().enumerate() {
                whole.record(v);
                if i < cut {
                    a.record(v);
                } else {
                    b.record(v);
                }
            }
            a.merge(&b);
            let buckets = whole.cumulative_buckets();
            assert!(!buckets.is_empty());
            assert_eq!(a.cumulative_buckets(), buckets);
            let mut prev_le = None;
            for &(le, c) in &buckets {
                let exact = values.iter().filter(|&&v| v <= le).count() as u64;
                assert_eq!(c, exact, "le = {le}");
                if let Some(p) = prev_le {
                    assert!(le > p, "edges must ascend");
                }
                prev_le = Some(le);
            }
            let &(last_le, last_c) = buckets.last().unwrap();
            assert_eq!(last_c, whole.count());
            assert!(last_le >= whole.max());
            assert_eq!(
                whole.sum(),
                values.iter().map(|&v| u128::from(v)).sum::<u128>()
            );
        },
    );
}

#[test]
fn rng_below_is_roughly_uniform() {
    forall(64, "rng_below_is_roughly_uniform", |rng| {
        let seed = rng.next_u64();
        let bound = 2 + rng.below(30);
        let mut rng = SplitMix64::new(seed);
        let draws = 8_000;
        let mut counts = vec![0u32; bound];
        for _ in 0..draws {
            counts[rng.below(bound)] += 1;
        }
        let expect = f64::from(draws) / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) - expect).abs() < 6.0 * expect.sqrt() + 10.0,
                "bucket {i} count {c} far from {expect}"
            );
        }
    });
}

#[test]
fn generators_are_deterministic_and_distinct() {
    forall(64, "generators_are_deterministic_and_distinct", |rng| {
        let seed = rng.next_u64();
        let mut a1 = SplitMix64::new(seed);
        let mut a2 = SplitMix64::new(seed);
        let mut b = Xoshiro256StarStar::new(seed);
        for _ in 0..64 {
            assert_eq!(a1.next_u64(), a2.next_u64());
        }
        // The two generator families must not mirror each other.
        let mut a3 = SplitMix64::new(seed);
        let same = (0..64).filter(|_| a3.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    });
}

//! Snapshot round-trip property: `run(k) → snapshot → restore → run(m)`
//! is bit-identical to `run(k+m)` — on every engine, through every kind
//! of mid-run machine state.
//!
//! Each scenario builds a machine, runs the *uninterrupted* baseline to
//! completion, then re-runs it with a snapshot cut at several mid-run
//! points. At each cut the snapshot is restored under every engine
//! tuning (donor settings, pinned sequential, parallel, fast-forward
//! off, dense sweep) and driven to completion; all of them — and the
//! donor machine continuing past its own snapshot — must digest to the
//! baseline's parity string. The fault scenarios deliberately cut while
//! recovery machinery is live: one cut is searched for dynamically so a
//! PNI retry is *pending* (a loss happened, its timeout has not fired)
//! at snapshot time, and one scenario snapshots before a scheduled fault
//! so the restored clock must still fire it.

use ultracomputer::machine::{Machine, MachineBuilder};
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::ultra_faults::{Fault, FaultPlan};
use ultracomputer::ultra_net::config::SweepMode;
use ultracomputer::ultra_sim::MmId;
use ultracomputer::{EngineTuning, MachineReport};

/// Tickets from a hot counter, a private-slot store per round, and a
/// closing barrier — combining, register locking, bank traffic and
/// barrier state all live at most cut points.
fn ticket_program(rounds: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(rounds),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: Some(0),
                    },
                    Op::Store {
                        addr: Expr::add(
                            Expr::add(Expr::Const(1024), Expr::mul(Expr::PeIndex, 64)),
                            Expr::Reg(1),
                        ),
                        value: Expr::Reg(0),
                    },
                ]),
            },
            Op::Barrier,
            Op::Halt,
        ]),
        vec![],
    )
}

fn digest(m: &Machine) -> String {
    MachineReport::from_machine(m).parity_string()
}

fn tunings() -> Vec<(&'static str, EngineTuning)> {
    vec![
        ("donor", EngineTuning::default()),
        (
            "sequential",
            EngineTuning {
                threads: Some(1),
                ..EngineTuning::default()
            },
        ),
        (
            "parallel-3",
            EngineTuning {
                threads: Some(3),
                ..EngineTuning::default()
            },
        ),
        (
            "no-fast-forward",
            EngineTuning {
                fast_forward: Some(false),
                ..EngineTuning::default()
            },
        ),
        (
            "dense-sweep",
            EngineTuning {
                sweep: Some(SweepMode::Dense),
                ..EngineTuning::default()
            },
        ),
    ]
}

/// The property at one cut point: donor-continue and every restored
/// engine reach the baseline digest.
fn check_cut(make: &dyn Fn() -> Machine, baseline: &str, cut: u64, label: &str) {
    let mut donor = make();
    donor.run_for(cut);
    let snapshot = donor.snapshot();
    assert!(
        donor.run().completed,
        "{label} cut {cut}: donor must finish"
    );
    assert_eq!(
        digest(&donor),
        baseline,
        "{label} cut {cut}: snapshotting perturbed the donor"
    );
    for (engine, tuning) in tunings() {
        let mut restored = Machine::restore_tuned(&snapshot, tuning)
            .unwrap_or_else(|e| panic!("{label} cut {cut} [{engine}]: restore failed: {e}"));
        assert!(
            restored.run().completed,
            "{label} cut {cut} [{engine}]: restored run must finish"
        );
        assert_eq!(
            digest(&restored),
            baseline,
            "{label} cut {cut} [{engine}]: diverged from the uninterrupted run"
        );
    }
}

fn check_scenario(make: &dyn Fn() -> Machine, cuts: &[u64], label: &str) {
    let mut full = make();
    assert!(full.run().completed, "{label}: baseline must complete");
    let baseline = digest(&full);
    for &cut in cuts {
        check_cut(make, &baseline, cut, label);
    }
}

#[test]
fn healthy_machine_round_trips_at_any_cut() {
    let make = || MachineBuilder::new(8).build_spmd(&ticket_program(12));
    check_scenario(&make, &[1, 5, 33, 100, 251], "healthy 8-PE ticket");
}

#[test]
fn lossy_links_round_trip_with_a_pni_retry_pending_at_the_cut() {
    let make = || {
        MachineBuilder::new(8)
            .faults(FaultPlan::none().seed(11).link_loss(0.15))
            .max_cycles(2_000_000)
            .build_spmd(&ticket_program(10))
    };

    // Find a cut where a loss has happened but its retry has not fired:
    // at that snapshot a PNI timeout (and its sequence-numbered request)
    // is in flight and must survive the round trip.
    let mut probe = make();
    let mut pending_cut = None;
    while probe.now() < 5_000 {
        probe.run_for(1);
        let f = probe.fault_summary();
        if f.dropped > f.retries {
            pending_cut = Some(probe.now());
            break;
        }
    }
    let pending_cut = pending_cut.expect("15% loss must strand a message within 5k cycles");

    let mut full = make();
    assert!(full.run().completed);
    assert!(
        full.fault_summary().retries > 0,
        "scenario must actually exercise the retry protocol"
    );
    let baseline = digest(&full);
    for cut in [pending_cut, pending_cut + 37, 400] {
        check_cut(&make, &baseline, cut, "lossy 8-PE ticket");
    }
}

#[test]
fn busy_traffic_cut_rebuilds_engine_masks() {
    // Cut while the fabric is saturated: requests mid-flight in the
    // network, banks with queued work, PEs with non-empty outgoing
    // buffers. None of the engine's occupancy masks (live / outgoing /
    // bank-active / fx-dirty) are serialized — restore must rebuild
    // every one of them from the decoded shard and bank state, under
    // every tuning, or the restored run wedges or diverges.
    let make = || MachineBuilder::new(16).build_spmd(&ticket_program(10));

    // Find an early cut with traffic still in the fabric (injected but
    // not yet delivered), so the snapshot genuinely captures a mid-merge
    // machine rather than a quiescent one.
    let mut probe = make();
    let mut busy_cut = None;
    while probe.now() < 200 {
        probe.run_for(1);
        let s = probe.net_stats();
        if s.injected_requests.get() > s.delivered_requests.get() {
            busy_cut = Some(probe.now());
            break;
        }
    }
    let busy_cut = busy_cut.expect("16 combining PEs must have a request mid-fabric early on");
    check_scenario(&make, &[busy_cut, busy_cut + 17, 120], "busy 16-PE ticket");
}

#[test]
fn dead_copy_failover_round_trips() {
    let make = || {
        MachineBuilder::new(8)
            .network(2)
            .faults(FaultPlan::none().dead_copy(0))
            .build_spmd(&ticket_program(8))
    };
    check_scenario(&make, &[20, 75, 160], "dead-copy d=2");
}

#[test]
fn scheduled_mm_death_fires_after_restore() {
    // Cut 30 is *before* the scheduled kill at cycle 60: the restored
    // fault clock must still fire it. Cut 90 is after, in degraded mode.
    let make = || {
        MachineBuilder::new(8)
            .faults(FaultPlan::none().schedule(60, Fault::KillMm { mm: MmId(3) }))
            .build_spmd(&ticket_program(8))
    };
    check_scenario(&make, &[30, 90], "scheduled MM death");
}

#[test]
fn ideal_backend_round_trips() {
    let make = || {
        MachineBuilder::new(8)
            .ideal(10)
            .build_spmd(&ticket_program(6))
    };
    check_scenario(&make, &[7, 40], "ideal backend");
}

#[test]
fn multiprogrammed_contexts_round_trip() {
    let make = || {
        MachineBuilder::new(4)
            .multiprogramming(2)
            .build_spmd(&ticket_program(6))
    };
    check_scenario(&make, &[15, 80], "4 PEs x 2 contexts");
}

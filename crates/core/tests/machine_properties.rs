//! Property tests of the whole machine: randomly generated (barrier-free)
//! programs must always terminate, never panic the fabric, and behave
//! bit-identically on replay — on both backends.

use proptest::prelude::*;
use std::rc::Rc;

use ultracomputer::machine::{Machine, MachineBuilder};
use ultracomputer::program::{Body, CmpOp, Cond, Expr, Op, Program};

/// A compact generator language for random-but-well-formed programs.
#[derive(Debug, Clone)]
enum GenOp {
    Compute(u8),
    Private(u8),
    Load {
        addr: u16,
        dst: u8,
    },
    Store {
        addr: u16,
        src: u8,
    },
    FetchAdd {
        addr: u16,
        delta: i8,
        dst: Option<u8>,
    },
    Set {
        reg: u8,
        value: i16,
    },
    For {
        trips: u8,
        body: Vec<GenOp>,
    },
    SelfSched {
        counter: u16,
        limit: u8,
        body: Vec<GenOp>,
    },
    If {
        reg: u8,
        threshold: i16,
        then_ops: Vec<GenOp>,
        else_ops: Vec<GenOp>,
    },
    Fence,
}

fn leaf_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u8..6).prop_map(GenOp::Compute),
        (1u8..4).prop_map(GenOp::Private),
        (0u16..40, 0u8..4).prop_map(|(addr, dst)| GenOp::Load { addr, dst }),
        (0u16..40, 0u8..4).prop_map(|(addr, src)| GenOp::Store { addr, src }),
        (0u16..40, -3i8..4, prop::option::of(0u8..4))
            .prop_map(|(addr, delta, dst)| GenOp::FetchAdd { addr, delta, dst }),
        (0u8..4, -50i16..50).prop_map(|(reg, value)| GenOp::Set { reg, value }),
        Just(GenOp::Fence),
    ]
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    leaf_op().prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            (1u8..4, prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(trips, body)| GenOp::For { trips, body }),
            (
                100u16..120,
                1u8..6,
                prop::collection::vec(inner.clone(), 1..4)
            )
                .prop_map(|(counter, limit, body)| GenOp::SelfSched {
                    counter,
                    limit,
                    body
                }),
            (
                0u8..4,
                -10i16..10,
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(reg, threshold, then_ops, else_ops)| GenOp::If {
                    reg,
                    threshold,
                    then_ops,
                    else_ops
                }),
        ]
    })
}

/// Lowers generated ops; loop registers are assigned by nesting depth
/// (as any real code generator would) so an inner loop can never clobber
/// an enclosing loop's counter — reusing one register across nested loops
/// is a *program* bug the fuzzer famously rediscovered.
fn lower(ops: &[GenOp]) -> Body {
    lower_at(ops, 0)
}

fn lower_at(ops: &[GenOp], depth: u8) -> Body {
    let v: Vec<Op> = ops
        .iter()
        .map(|g| match g {
            GenOp::Compute(n) => Op::Compute(u32::from(*n)),
            GenOp::Private(n) => Op::PrivateRef(u32::from(*n)),
            GenOp::Load { addr, dst } => Op::Load {
                addr: Expr::Const(i64::from(*addr)),
                dst: *dst,
            },
            GenOp::Store { addr, src } => Op::Store {
                addr: Expr::Const(i64::from(*addr)),
                value: Expr::Reg(*src),
            },
            GenOp::FetchAdd { addr, delta, dst } => Op::FetchAdd {
                addr: Expr::Const(i64::from(*addr)),
                delta: Expr::Const(i64::from(*delta)),
                dst: *dst,
            },
            GenOp::Set { reg, value } => Op::Set {
                reg: *reg,
                value: Expr::Const(i64::from(*value)),
            },
            GenOp::For { trips, body } => Op::For {
                reg: 4 + depth % 12,
                from: Expr::Const(0),
                to: Expr::Const(i64::from(*trips)),
                body: lower_at(body, depth + 1),
            },
            GenOp::SelfSched {
                counter,
                limit,
                body,
            } => Op::SelfSched {
                reg: 4 + depth % 12,
                counter: Expr::Const(i64::from(*counter)),
                limit: Expr::Const(i64::from(*limit)),
                body: lower_at(body, depth + 1),
            },
            GenOp::If {
                reg,
                threshold,
                then_ops,
                else_ops,
            } => Op::If {
                cond: Cond::new(Expr::Reg(*reg), CmpOp::Lt, i64::from(*threshold)),
                then_ops: lower_at(then_ops, depth),
                else_ops: lower_at(else_ops, depth),
            },
            GenOp::Fence => Op::Fence,
        })
        .collect();
    Rc::from(v)
}

fn final_state(machine: &Machine) -> Vec<i64> {
    (0..140).map(|a| machine.read_shared(a)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated program terminates on both backends within a generous
    /// cycle budget (no fabric deadlock, no interpreter wedge), and two
    /// runs with the same seed are bit-identical (cycles + memory).
    #[test]
    fn random_programs_terminate_and_replay(
        ops in prop::collection::vec(gen_op(), 1..10),
        n_exp in 2u32..4,
        ideal in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let mut body_ops: Vec<GenOp> = ops;
        body_ops.push(GenOp::Fence);
        let program = Program::new(lower(&body_ops), vec![]);
        let build = || {
            let b = MachineBuilder::new(n).seed(seed).max_cycles(1_000_000);
            let b = if ideal { b.ideal(2) } else { b.network(1) };
            b.build_spmd(&program)
        };
        let mut m1 = build();
        let out1 = m1.run();
        prop_assert!(out1.completed, "wedged: {} PEs, ideal={}", n, ideal);
        let mut m2 = build();
        let out2 = m2.run();
        prop_assert_eq!(out1.cycles, out2.cycles, "nondeterministic timing");
        prop_assert_eq!(final_state(&m1), final_state(&m2), "nondeterministic memory");
        // PNI accounting must close out.
        let merged = m1.merged_pe_stats();
        let net = m1.net_stats();
        if !ideal {
            prop_assert_eq!(merged.shared_refs.get(), net.injected_requests.get());
            prop_assert_eq!(net.injected_requests.get(), net.delivered_replies.get());
        }
    }

    /// Self-scheduled counters are always consumed exactly (limit + one
    /// overshoot per participating PE), whatever surrounds them.
    #[test]
    fn self_sched_counters_consume_exactly(
        limit in 1i64..12,
        n_exp in 1u32..4,
        prefix_compute in 0u32..8,
        ideal in any::<bool>(),
    ) {
        let n = 1usize << n_exp;
        let program = Program::new(
            Rc::from(vec![
                Op::Compute(prefix_compute + 1),
                Op::SelfSched {
                    reg: 0,
                    counter: Expr::Const(500),
                    limit: Expr::Const(limit),
                    body: Rc::from(vec![Op::FetchAdd {
                        addr: Expr::add(Expr::Const(600), Expr::Reg(0)),
                        delta: Expr::Const(1),
                        dst: None,
                    }]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let b = MachineBuilder::new(n);
        let b = if ideal { b.ideal(2) } else { b.network(1) };
        let mut m = b.build_spmd(&program);
        prop_assert!(m.run().completed);
        prop_assert_eq!(m.read_shared(500), limit + n as i64);
        for i in 0..limit {
            prop_assert_eq!(m.read_shared(600 + i as usize), 1, "slot {}", i);
        }
    }
}

/// Identical machines must produce identical *statistics*, not just
/// memory — the reproducibility EXPERIMENTS.md promises.
#[test]
fn full_stat_replay_determinism() {
    let program = Program::new(
        Rc::from(vec![
            Op::SelfSched {
                reg: 0,
                counter: Expr::Const(0),
                limit: Expr::Const(30),
                body: Rc::from(vec![
                    Op::Load {
                        addr: Expr::add(Expr::Const(100), Expr::Reg(0)),
                        dst: 1,
                    },
                    Op::Compute(4),
                    Op::Store {
                        addr: Expr::add(Expr::Const(200), Expr::Reg(0)),
                        value: Expr::Reg(1),
                    },
                ]),
            },
            Op::Barrier,
            Op::Halt,
        ]),
        vec![],
    );
    let run = || {
        let mut m = MachineBuilder::new(16).seed(77).build_spmd(&program);
        assert!(m.run().completed);
        let s = m.merged_pe_stats();
        let n = m.net_stats();
        (
            m.now(),
            s.instructions.get(),
            s.idle_cycles.get(),
            s.cm_access.mean().to_bits(),
            n.combines.get(),
            n.forward_transit.mean().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

//! Cycle-engine selection: sequential vs deterministic parallel.
//!
//! The machine's per-cycle work decomposes into units that never touch
//! each other within a cycle: the `d` network copies, the memory banks,
//! and the physical PEs (each with its own PNI and contexts). The
//! parallel engine fans those units out over OS threads and merges their
//! deferred side effects in fixed index order, so a parallel run is
//! **bit-identical** to a sequential run of the same configuration — same
//! final memory, same statistics, same trace, same fault summary.

use std::fmt;

/// Which cycle engine a [`crate::machine::Machine`] uses.
///
/// Derived from [`crate::machine::MachineBuilder::threads`] and the
/// `parallel` crate feature: more than one thread with the feature
/// enabled selects [`EngineMode::Parallel`], everything else runs
/// [`EngineMode::Sequential`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Single-threaded reference engine.
    Sequential,
    /// Deterministic fan-out over `threads` OS threads.
    Parallel {
        /// Worker thread budget per fan-out point (copies, banks, PEs).
        threads: usize,
    },
}

impl EngineMode {
    /// The thread budget this mode hands to each fan-out point.
    #[must_use]
    pub fn threads(self) -> usize {
        match self {
            EngineMode::Sequential => 1,
            EngineMode::Parallel { threads } => threads,
        }
    }
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineMode::Sequential => write!(f, "sequential"),
            EngineMode::Parallel { threads } => write!(f, "parallel({threads})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_reports_threads_and_formats() {
        assert_eq!(EngineMode::Sequential.threads(), 1);
        assert_eq!(EngineMode::Parallel { threads: 4 }.threads(), 4);
        assert_eq!(EngineMode::Sequential.to_string(), "sequential");
        assert_eq!(
            EngineMode::Parallel { threads: 2 }.to_string(),
            "parallel(2)"
        );
    }
}

//! The whole Ultracomputer: PEs + PNIs + combining network + MNIs + MMs —
//! or the ideal paracomputer in their place.
//!
//! [`Machine`] runs one [`Program`] per PE *context* against a
//! shared-memory backend:
//!
//! * [`BackendKind::Ideal`] — the §2 paracomputer: every request completes
//!   after a fixed latency, simultaneous requests to one cell are all
//!   served under the serialization principle. This is the configuration
//!   the paper's §5 WASHCLOTH studies used.
//! * [`BackendKind::Network`] — the §3 hardware: requests traverse `d`
//!   copies of the combining Omega network to real memory banks with
//!   finite service rates. This is the configuration of the §4.2 NETSIM
//!   studies.
//!
//! §3.5's latency fallback is supported too: "If the latency remains an
//! impediment to performance, we would hardware-multiprogram the PEs (as
//! in the CHOPP design and the Denelcor HEP machine). Note that k-fold
//! multiprogramming is equivalent to using k times as many PEs — each
//! having relative performance 1/k." With
//! [`MachineBuilder::multiprogramming`], each physical PE holds `k`
//! interpreter contexts sharing one datapath and one PNI; on any stall
//! (locked register, busy location, barrier) the PE issues from another
//! context at zero switch cost, hiding memory latency.
//!
//! The per-cycle schedule is: flush pending injections → memory banks →
//! network fabric (delivering replies unlocks registers) → barrier release
//! → PE execution. A PE therefore observes a reply the same cycle its tail
//! arrives, and a request issued this cycle starts moving next cycle.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::{Duration, Instant};

use ultra_faults::{Fault, FaultClock, FaultPlan, RetryPolicy};
use ultra_mem::{AddressHasher, MemBank, TranslationMode};
use ultra_net::config::{NetConfig, SweepMode};
use ultra_net::message::{Message, MsgId, MsgKind, Reply};
use ultra_net::omega::ReplicatedOmega;
use ultra_net::stats::NetStats;
use ultra_obs::{
    CounterSnapshot, EnginePhase, GaugeSnapshot, HeatmapSnapshot, PhaseRecorder, PhaseSpan,
    TimeSeries,
};
use ultra_pe::pni::{Pni, PniError};
use ultra_pe::stats::PeStats;
use ultra_sim::clock::TimeScale;
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{
    AtomicBitmap, Cycle, MemAddr, MmId, PackedMask, PeId, PoolDispatchStats, Value, WorkerPool,
};

use crate::engine::EngineMode;
use crate::interp::{Fetched, IssueSpec, PeInterp};
use crate::paracomputer::Paracomputer;
use crate::program::{Program, Reg};
use crate::trace::{Trace, TraceEvent};

/// Virtual addresses at and above this are reserved for machine-assisted
/// barriers (one word per barrier generation).
pub const BARRIER_VADDR_BASE: usize = 1 << 40;

/// Which shared-memory implementation serves the PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The §2 paracomputer: fixed `latency` cycles per request, no
    /// contention, serialization principle on simultaneous batches.
    Ideal {
        /// Round-trip latency in network cycles.
        latency: Cycle,
    },
    /// The §3/§4 machine: `copies` replicas of the combining Omega network
    /// in front of one memory bank per PE.
    Network {
        /// Number of network copies `d` (§4.1).
        copies: usize,
    },
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Network geometry and switch policy (also fixes the PE count).
    pub net: NetConfig,
    /// Shared-memory backend.
    pub backend: BackendKind,
    /// Cycles per PE instruction and per MM access (§4.2 uses 2 and 2).
    pub time: TimeScale,
    /// Virtual→physical translation mode (§3.1.4).
    pub translation: TranslationMode,
    /// Seed for the serialization order and any stochastic components.
    pub seed: u64,
    /// Safety valve: `run` gives up after this many cycles.
    pub max_cycles: Cycle,
    /// How many contexts (the first `parties` virtual PEs) participate in
    /// each [`crate::program::Op::Barrier`] (`None` = all). The paper's
    /// §4.2 runs use 16–48 active PEs inside a larger fabric; the
    /// inactive PEs run empty programs and skip barriers.
    pub barrier_parties: Option<usize>,
    /// §3.5 hardware multiprogramming factor: interpreter contexts per
    /// physical PE (1 = no multiprogramming).
    pub contexts_per_pe: usize,
    /// Fault-injection plan (network backend only — the ideal
    /// paracomputer has no hardware to break). [`FaultPlan::none`]
    /// leaves the machine bit-identical to a build without the fault
    /// subsystem.
    pub faults: FaultPlan,
    /// Worker-thread budget per cycle-engine fan-out point (network
    /// copies, memory banks, PE shards). `1` selects the sequential
    /// engine; ignored (treated as `1`) when the `parallel` crate
    /// feature is disabled. Every value produces bit-identical runs.
    pub threads: usize,
    /// When `true` (the default) the thread budget is chosen
    /// automatically from the machine size and the host's core count
    /// instead of taken from [`MachineConfig::threads`]: small machines
    /// stay sequential (fan-out overhead beats the win below ~256 PEs),
    /// mid-sized ones use up to four cores, and 16K-PE-and-wider fabrics
    /// up to eight (see [`Machine::auto_thread_cap`]).
    /// [`MachineBuilder::threads`] clears this flag.
    pub auto_threads: bool,
    /// How the network iterates its switches each cycle (sparse
    /// active-set walk by default). Purely a speed knob: every mode is
    /// bit-identical.
    pub sweep: SweepMode,
    /// Skip provably idle stretches of cycles (all traffic drained,
    /// every context parked) by jumping straight to the next scheduled
    /// event. Bit-identical to per-cycle stepping; on by default.
    pub fast_forward: bool,
}

/// Builder for [`Machine`] (see the crate examples).
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    cfg: MachineConfig,
}

impl MachineBuilder {
    /// Starts from an `n`-PE machine with the paper's small 2×2-switch
    /// combining network, network backend, one copy, one context per PE.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            cfg: MachineConfig {
                net: NetConfig::small(n),
                backend: BackendKind::Network { copies: 1 },
                time: TimeScale::default(),
                translation: TranslationMode::Hashed,
                seed: 0x5eed,
                max_cycles: 50_000_000,
                barrier_parties: None,
                contexts_per_pe: 1,
                faults: FaultPlan::none(),
                threads: 1,
                auto_threads: true,
                sweep: SweepMode::default(),
                fast_forward: true,
            },
        }
    }

    /// Selects the cycle engine's thread budget: with `threads > 1` (and
    /// the `parallel` crate feature on) each cycle fans its independent
    /// units — network copies, memory banks, PE shards — out over up to
    /// that many OS threads. Deferred-effect merging keeps every thread
    /// count bit-identical to the sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one engine thread");
        self.cfg.threads = threads;
        self.cfg.auto_threads = false;
        self
    }

    /// Restores the default automatic thread selection: sequential below
    /// 256 PEs, up to four threads below 16384 PEs, up to eight beyond —
    /// always capped by the host's available parallelism (see
    /// [`Machine::auto_thread_cap`]). Every choice is bit-identical; this
    /// only picks the fastest engine for the machine size.
    #[must_use]
    pub fn threads_auto(mut self) -> Self {
        self.cfg.auto_threads = true;
        self
    }

    /// Selects how the network sweeps its switches each cycle (sparse
    /// active-set walk by default; [`SweepMode::Dense`] restores the
    /// full-topology scan). Purely a speed knob — runs are bit-identical
    /// in either mode.
    #[must_use]
    pub fn sweep(mut self, mode: SweepMode) -> Self {
        self.cfg.sweep = mode;
        self
    }

    /// Enables or disables the idle-cycle fast-forward (on by default).
    /// Purely a speed knob: runs are bit-identical either way.
    #[must_use]
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.cfg.fast_forward = on;
        self
    }

    /// Runs the machine under `plan`: static faults are applied before
    /// cycle 0, scheduled ones fire at their exact cycles. Unless the plan
    /// carries an explicit [`RetryPolicy`], any unhealthy plan enables the
    /// PNI retry protocol with a depth-derived default.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Replaces the network configuration (PE count included).
    #[must_use]
    pub fn net(mut self, net: NetConfig) -> Self {
        self.cfg.net = net;
        self
    }

    /// Uses the ideal paracomputer backend with the given round-trip
    /// latency in cycles.
    #[must_use]
    pub fn ideal(mut self, latency: Cycle) -> Self {
        self.cfg.backend = BackendKind::Ideal { latency };
        self
    }

    /// Uses the network backend with `d` copies.
    #[must_use]
    pub fn network(mut self, copies: usize) -> Self {
        self.cfg.backend = BackendKind::Network { copies };
        self
    }

    /// Sets the time scale (cycles per instruction / per MM access).
    #[must_use]
    pub fn time(mut self, time: TimeScale) -> Self {
        self.cfg.time = time;
        self
    }

    /// Sets the address-translation mode.
    #[must_use]
    pub fn translation(mut self, mode: TranslationMode) -> Self {
        self.cfg.translation = mode;
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the cycle budget for [`Machine::run`].
    #[must_use]
    pub fn max_cycles(mut self, max: Cycle) -> Self {
        self.cfg.max_cycles = max;
        self
    }

    /// Sets how many contexts (the first `parties`) participate in
    /// barriers.
    #[must_use]
    pub fn barrier_parties(mut self, parties: usize) -> Self {
        self.cfg.barrier_parties = Some(parties);
        self
    }

    /// Enables §3.5 hardware multiprogramming: `k` interpreter contexts
    /// per physical PE. The machine then runs `pes × k` virtual PEs, each
    /// with relative performance `1/k` but with memory latency hidden by
    /// context switching.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn multiprogramming(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one context per PE");
        self.cfg.contexts_per_pe = k;
        self
    }

    /// Builds the machine, giving every context the same `program`.
    #[must_use]
    pub fn build_spmd(self, program: &Program) -> Machine {
        let n = self.cfg.net.pes * self.cfg.contexts_per_pe;
        self.build(vec![program.clone(); n])
    }

    /// Builds the machine with one program per context (virtual PE).
    ///
    /// # Panics
    ///
    /// Panics unless `programs.len()` equals `pes × contexts_per_pe`.
    #[must_use]
    pub fn build(self, programs: Vec<Program>) -> Machine {
        Machine::new(self.cfg, programs)
    }
}

/// Why a context is not currently executing.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CtxState {
    Ready,
    WaitReg(Reg),
    WaitIssue(IssueSpec, Purpose),
    WaitBarrier,
    WaitFence,
    /// Parked by [`Op::WaitUntil`] until the clock reaches the cycle.
    WaitUntil(Cycle),
    Halted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    Data,
    Barrier,
}

#[derive(Debug, Clone, Copy)]
struct ReqMeta {
    /// Virtual PE (context) index.
    ctx: usize,
    dst: Option<Reg>,
    purpose: Purpose,
}

enum BackendImpl {
    Ideal {
        para: Paracomputer,
        latency: Cycle,
        /// due cycle → requests applied (as a simultaneous batch) then.
        pending: BTreeMap<Cycle, Vec<Message>>,
    },
    Network {
        nets: ReplicatedOmega,
        banks: Vec<MemBank>,
        /// Which copy carried each in-flight request (replies return the
        /// same way). Keyed by attempt too: a retry may travel a
        /// different copy than the original, and each answer must return
        /// through the copy that carried its request so decombining
        /// matches.
        copy_of: HashMap<(MsgId, u32), usize>,
    },
}

/// Aggregate resilience counters for one run. All zero under
/// [`FaultPlan::none`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Injections refused by a dead copy or a dead port on the route
    /// (each one is a failover attempt).
    pub refusals: u64,
    /// Requests accepted by a later copy after an earlier copy refused.
    pub failovers: u64,
    /// Requests swallowed by lossy links.
    pub dropped: u64,
    /// Timed-out requests re-issued by the PNIs.
    pub retries: u64,
    /// Redundant replies discarded at the PEs.
    pub duplicate_replies: u64,
    /// Duplicate requests answered from the MM dedup cache.
    pub dedup_hits: u64,
    /// Duplicate requests swallowed at the MMs (the original's reply was
    /// still en route).
    pub dedup_swallowed: u64,
    /// Requests discarded unserved by dead MMs.
    pub dead_discards: u64,
    /// Wait-buffer slots lost to stuck entries.
    pub stuck_wait_entries: u64,
    /// Outbound requests abandoned because no live copy had a route
    /// (recovered by retry under the re-hashed translation).
    pub unroutable: u64,
    /// Physical PEs fail-stopped because the degraded network left them
    /// no route to any module.
    pub deconfigured_pes: u64,
}

impl FaultSummary {
    /// Whether any fault machinery actually fired.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

/// Outcome of [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Whether every context halted and all traffic drained.
    pub completed: bool,
    /// Cycles elapsed.
    pub cycles: Cycle,
}

/// One physical PE's slice of the machine: its interpreter contexts,
/// datapath occupancy, network interface and outbound queue. This is the
/// unit the parallel engine fans out — within a cycle no shard reads
/// another shard, and writes to the machine-wide sinks (request
/// metadata, trace, halt count) are deferred into [`ShardFx`] and merged
/// in shard index order, which is exactly the order the sequential loop
/// produces them in. Both engines therefore generate byte-identical
/// event streams.
struct PeShard {
    /// First virtual PE (context) index of this shard.
    base: usize,
    /// The shard's `k` interpreter contexts.
    interps: Vec<PeInterp>,
    states: Vec<CtxState>,
    stats: Vec<PeStats>,
    /// Datapath occupancy.
    busy_until: Cycle,
    /// Round-robin context cursor (HEP-style).
    cursor: usize,
    /// Network interface.
    pni: Pni,
    /// Outgoing messages awaiting network acceptance.
    outgoing: VecDeque<Message>,
    /// Deferred machine-wide effects of this shard's latest datapath
    /// cycle. Drained (capacity retained — no steady-state allocation)
    /// by the merge that follows each PE phase.
    fx: ShardFx,
}

/// Machine-wide side effects a shard's datapath cycle would have applied
/// in place under the sequential engine.
#[derive(Default)]
struct ShardFx {
    meta: Vec<(MsgId, ReqMeta)>,
    trace: Vec<TraceEvent>,
    halted: usize,
}

impl ShardFx {
    /// Whether the latest datapath cycle produced any deferred effect.
    /// Shards with nothing to merge skip the post-phase drain entirely
    /// (they never set their dirty bit).
    fn is_empty(&self) -> bool {
        self.meta.is_empty() && self.trace.is_empty() && self.halted == 0
    }
}

/// Read-only per-cycle parameters handed to every shard.
#[derive(Clone, Copy)]
struct CycleCtx {
    now: Cycle,
    /// Cycles per PE instruction.
    cpi: Cycle,
    barrier_generation: u64,
    trace_enabled: bool,
}

/// The assembled machine.
pub struct Machine {
    cfg: MachineConfig,
    hasher: AddressHasher,
    /// One shard per physical PE.
    shards: Vec<PeShard>,
    meta: HashMap<MsgId, ReqMeta>,
    backend: BackendImpl,
    barrier_generation: u64,
    barrier_arrived: usize,
    now: Cycle,
    halted_count: usize,
    trace: Trace,
    /// Fires the plan's scheduled faults at their exact cycles.
    fault_clock: FaultClock,
    /// Modules currently dead (static + fired), for cumulative re-hashing.
    dead_mms: Vec<MmId>,
    /// Redundant replies (retry answered alongside the original).
    duplicate_replies: u64,
    /// Outbound requests abandoned because every copy refused the route.
    unroutable: u64,
    /// Physical PEs fail-stopped because no live copy routes them to
    /// any module.
    dead_pes: Vec<PeId>,
    /// Wall-clock duration of the most recent [`Machine::run`].
    run_elapsed: Option<Duration>,
    /// Cycles skipped by the idle fast-forward across all runs.
    fast_forwarded: Cycle,
    /// Pooled completion buffer for [`Machine::backend_cycle`] — replies
    /// are staged here each cycle, so the hot path never allocates.
    deliveries: Vec<Reply>,
    /// Persistent worker threads for the per-cycle fan-outs (PE shards,
    /// memory banks, network copies). A 1-thread pool runs everything
    /// inline on the caller — the sequential engine.
    pool: WorkerPool,
    /// One bit per shard: set (by whichever worker ran the shard) when
    /// its datapath cycle left deferred effects, drained in ascending
    /// word order by the post-phase merge. The pool's completion barrier
    /// orders every mark before the drain, and index order is the
    /// sequential merge order, so the merge stream is identical at any
    /// thread count.
    fx_dirty: AtomicBitmap,
    /// One bit per shard whose `outgoing` queue is non-empty. The
    /// outbound flush and the quiescence/fast-forward checks walk words
    /// of this mask instead of scanning every shard.
    outgoing_mask: PackedMask,
    /// One bit per shard with at least one non-halted context. The PE
    /// phase dispatches over this mask; a fully-halted shard's datapath
    /// cycle is provably a no-op (no context resolves, nothing charges).
    live_mask: PackedMask,
    /// One bit per memory bank holding work (network backend; zero-length
    /// on the ideal backend). Set on request delivery, cleared when the
    /// bank is observed idle after its reply drain; [`MemBank::cycle`]
    /// on an idle bank is a no-op, so masked cycling is exact.
    bank_active: PackedMask,
    /// Whether the PNI retry protocol is on (derived once from the fault
    /// plan; never changes mid-run). With retries off, whole phases —
    /// the retry queue walk, the fast-forward deadline scan — vanish.
    retry_enabled: bool,
    /// Cycle-windowed telemetry recorder (off by default; see
    /// [`Machine::enable_telemetry`]). Sampling only reads simulation
    /// state, so the recorder never perturbs a run.
    series: TimeSeries,
    /// Wall-clock engine-phase spans for Perfetto export (off by
    /// default; see [`Machine::enable_phase_spans`]).
    phases: PhaseRecorder,
    /// Zero point for phase-span timestamps.
    phase_epoch: Instant,
}

impl Machine {
    /// Assembles a machine from `cfg` with one program per context.
    ///
    /// # Panics
    ///
    /// Panics unless `programs.len() == cfg.net.pes * cfg.contexts_per_pe`.
    #[must_use]
    pub fn new(cfg: MachineConfig, programs: Vec<Program>) -> Self {
        let n = cfg.net.pes;
        let k = cfg.contexts_per_pe;
        assert!(k >= 1, "need at least one context per PE");
        let vpes = n * k;
        assert_eq!(programs.len(), vpes, "need one program per context");
        let plan = cfg.faults.clone();
        let mut hasher = AddressHasher::new(n, cfg.translation);
        let static_dead = plan.dead_mms();
        if !static_dead.is_empty() {
            hasher.set_dead_mms(&static_dead);
        }
        let retry = Self::retry_policy_for(&cfg);
        let shards: Vec<PeShard> = (0..n)
            .map(|phys| {
                let base = phys * k;
                let mut pni = Pni::new(PeId(phys), hasher.clone());
                if let Some(policy) = retry {
                    pni.enable_retry(policy);
                }
                PeShard {
                    base,
                    interps: (base..base + k)
                        .map(|vid| PeInterp::new(PeId(vid), vpes, &programs[vid]))
                        .collect(),
                    states: vec![CtxState::Ready; k],
                    stats: (0..k).map(|_| PeStats::new()).collect(),
                    busy_until: 0,
                    cursor: 0,
                    pni,
                    outgoing: VecDeque::new(),
                    fx: ShardFx::default(),
                }
            })
            .collect();
        let backend = match cfg.backend {
            BackendKind::Ideal { latency } => BackendImpl::Ideal {
                para: Paracomputer::new(cfg.seed),
                latency,
                pending: BTreeMap::new(),
            },
            BackendKind::Network { copies } => {
                let mut nets = ReplicatedOmega::new(cfg.net, copies);
                nets.set_sweep_mode(cfg.sweep);
                for c in 0..copies {
                    let mask = plan.mask_for_copy(c);
                    if !mask.is_healthy() {
                        nets.copy_mut(c).set_fault_mask(mask);
                    }
                }
                let mut banks: Vec<MemBank> = (0..n)
                    .map(|i| MemBank::new(MmId(i), cfg.time.cycles_per_mm_access))
                    .collect();
                for mm in &static_dead {
                    banks[mm.0].kill();
                }
                for (i, bank) in banks.iter_mut().enumerate() {
                    let factor = plan.slow_factor(MmId(i));
                    if factor > 1 {
                        bank.set_service_time(cfg.time.cycles_per_mm_access * Cycle::from(factor));
                    }
                    if retry.is_some() {
                        bank.enable_dedup();
                    }
                }
                BackendImpl::Network {
                    nets,
                    banks,
                    copy_of: HashMap::new(),
                }
            }
        };
        let mut live_mask = PackedMask::new(n);
        live_mask.rebuild(|_| true);
        let bank_universe = match cfg.backend {
            BackendKind::Network { .. } => n,
            BackendKind::Ideal { .. } => 0,
        };
        let mut machine = Self {
            hasher,
            shards,
            meta: HashMap::new(),
            backend,
            barrier_generation: 0,
            barrier_arrived: 0,
            now: 0,
            halted_count: 0,
            trace: Trace::new(),
            fault_clock: plan.clock(),
            dead_mms: static_dead,
            duplicate_replies: 0,
            unroutable: 0,
            dead_pes: Vec::new(),
            run_elapsed: None,
            fast_forwarded: 0,
            deliveries: Vec::new(),
            pool: WorkerPool::new(Self::resolve_threads(&cfg)),
            fx_dirty: AtomicBitmap::new(n),
            outgoing_mask: PackedMask::new(n),
            live_mask,
            bank_active: PackedMask::new(bank_universe),
            retry_enabled: retry.is_some(),
            series: TimeSeries::new(),
            phases: PhaseRecorder::new(),
            phase_epoch: Instant::now(),
            cfg,
        };
        machine.absorb_unreachable();
        machine
    }

    /// The PNI retry policy `cfg` implies: the plan's explicit policy if
    /// it carries one, else a depth-derived default whenever the plan is
    /// unhealthy. Shared by [`Machine::new`] and [`Machine::decode_state`]
    /// so a restored machine derives the same `retry_enabled` gate.
    fn retry_policy_for(cfg: &MachineConfig) -> Option<RetryPolicy> {
        cfg.faults.retry_policy().or_else(|| {
            (!cfg.faults.is_healthy()).then(|| RetryPolicy::for_depth(Self::net_depth(&cfg.net)))
        })
    }

    /// Network depth in stages (`log_k N`).
    fn net_depth(net: &NetConfig) -> usize {
        let mut stages = 0;
        let mut reach = 1;
        while reach < net.pes {
            reach *= net.k;
            stages += 1;
        }
        stages.max(1)
    }

    /// Enables event tracing with room for `capacity` events (ring
    /// buffer; the tail of long runs is retained).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace.enable(capacity);
    }

    /// The recorded trace (empty unless [`Machine::enable_trace`] ran).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enables cycle-windowed telemetry: every `window` cycles the
    /// machine records one [`ultra_obs::Sample`] — per-window network
    /// counter deltas plus instantaneous queue/wait gauges — into a ring
    /// of `capacity` samples. Purely observational: the sampled series
    /// is bit-identical across engines and fast-forward settings, and
    /// enabling it leaves `parity_string` unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `capacity` is zero.
    pub fn enable_telemetry(&mut self, window: u64, capacity: usize) {
        self.series.enable(window, capacity, self.now);
    }

    /// The telemetry series (empty unless [`Machine::enable_telemetry`]
    /// ran).
    #[must_use]
    pub fn telemetry(&self) -> &TimeSeries {
        &self.series
    }

    /// Enables wall-clock engine-phase span recording (flush / network /
    /// memory-bank / PE-shard timing per cycle) into a ring of
    /// `capacity` spans, for Perfetto export. Spans carry host wall
    /// clock and are *not* deterministic; they never feed back into the
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_phase_spans(&mut self, capacity: usize) {
        self.phases.enable(capacity);
        self.phase_epoch = Instant::now();
    }

    /// Recorded engine-phase spans (empty unless
    /// [`Machine::enable_phase_spans`] ran).
    #[must_use]
    pub fn phase_spans(&self) -> &PhaseRecorder {
        &self.phases
    }

    /// The worker pool's cumulative dispatch accounting.
    #[must_use]
    pub fn pool_dispatch_stats(&self) -> PoolDispatchStats {
        self.pool.dispatch_stats()
    }

    /// The hot-spot heatmap of the network fabric — per-switch combine
    /// counts, queue high-water marks and wait-buffer occupancy, merged
    /// across the `d` copies. `None` on the ideal backend, which has no
    /// fabric.
    #[must_use]
    pub fn heatmap(&self) -> Option<HeatmapSnapshot> {
        match &self.backend {
            BackendImpl::Ideal { .. } => None,
            BackendImpl::Network { nets, .. } => Some(nets.heatmap()),
        }
    }

    /// Number of physical PEs.
    #[must_use]
    pub fn pes(&self) -> usize {
        self.cfg.net.pes
    }

    /// Number of virtual PEs (physical × contexts).
    #[must_use]
    pub fn virtual_pes(&self) -> usize {
        self.cfg.net.pes * self.cfg.contexts_per_pe
    }

    /// The machine configuration.
    #[must_use]
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Per-context statistics (indexed by virtual PE).
    #[must_use]
    pub fn pe_stats(&self) -> Vec<PeStats> {
        self.shards
            .iter()
            .flat_map(|s| s.stats.iter().cloned())
            .collect()
    }

    /// The cycle engine this machine runs: [`EngineMode::Parallel`] when
    /// built with more than one thread (and the `parallel` feature is
    /// on), [`EngineMode::Sequential`] otherwise.
    #[must_use]
    pub fn engine_mode(&self) -> EngineMode {
        let t = self.effective_threads();
        if t > 1 {
            EngineMode::Parallel { threads: t }
        } else {
            EngineMode::Sequential
        }
    }

    fn effective_threads(&self) -> usize {
        self.pool.threads()
    }

    /// Machines smaller than this stay sequential under automatic thread
    /// selection: below it, per-cycle fan-out overhead exceeds the work
    /// being parallelised (see `BENCH_engine.json`).
    pub const AUTO_THREADS_MIN_PES: usize = 256;

    /// Upper bound on automatically chosen threads for mid-sized
    /// machines (256 ≤ PEs < [`Self::AUTO_THREADS_WIDE_PES`]). The
    /// per-cycle fan-out points saturate quickly at these sizes; more
    /// threads add merge and wake cost without more speedup.
    pub const MAX_AUTO_THREADS: usize = 4;

    /// Machines at or above this many PEs raise the automatic cap to
    /// [`Self::MAX_AUTO_THREADS_WIDE`]: with occupancy-adaptive sparse
    /// dispatch the per-chunk work finally dwarfs the wake cost, so
    /// wide fabrics keep scaling past four workers.
    pub const AUTO_THREADS_WIDE_PES: usize = 16384;

    /// Upper bound on automatically chosen threads for wide machines
    /// ([`Self::AUTO_THREADS_WIDE_PES`] PEs and up).
    pub const MAX_AUTO_THREADS_WIDE: usize = 8;

    /// The automatic thread cap for a `pes`-PE machine: 1 below
    /// [`Self::AUTO_THREADS_MIN_PES`], [`Self::MAX_AUTO_THREADS`] up to
    /// [`Self::AUTO_THREADS_WIDE_PES`], [`Self::MAX_AUTO_THREADS_WIDE`]
    /// beyond. The host's available parallelism clamps this further.
    #[must_use]
    pub fn auto_thread_cap(pes: usize) -> usize {
        if pes < Self::AUTO_THREADS_MIN_PES {
            1
        } else if pes < Self::AUTO_THREADS_WIDE_PES {
            Self::MAX_AUTO_THREADS
        } else {
            Self::MAX_AUTO_THREADS_WIDE
        }
    }

    /// The thread budget a machine built from `cfg` will use.
    fn resolve_threads(cfg: &MachineConfig) -> usize {
        if !cfg!(feature = "parallel") {
            return 1;
        }
        if !cfg.auto_threads {
            return cfg.threads.max(1);
        }
        let cap = Self::auto_thread_cap(cfg.net.pes);
        if cap <= 1 {
            return 1;
        }
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(cap)
    }

    /// Whether the engine's thread count was chosen automatically (the
    /// default) rather than pinned via [`MachineBuilder::threads`].
    #[must_use]
    pub fn auto_threads(&self) -> bool {
        self.cfg.auto_threads
    }

    /// Wall-clock duration of the most recent [`Machine::run`] call
    /// (`None` before the first run).
    #[must_use]
    pub fn last_run_elapsed(&self) -> Option<Duration> {
        self.run_elapsed
    }

    /// Cycles skipped by the idle fast-forward, summed over all runs
    /// (zero when [`MachineBuilder::fast_forward`] is off).
    #[must_use]
    pub fn fast_forwarded_cycles(&self) -> Cycle {
        self.fast_forwarded
    }

    /// All contexts' statistics merged.
    #[must_use]
    pub fn merged_pe_stats(&self) -> PeStats {
        self.merged_pe_stats_range(0..self.virtual_pes())
    }

    /// Statistics of a subset of contexts merged — used when only the
    /// first `P` virtual PEs run real programs (§4.2's setting).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the virtual PE count.
    #[must_use]
    pub fn merged_pe_stats_range(&self, range: std::ops::Range<usize>) -> PeStats {
        assert!(
            range.end <= self.virtual_pes(),
            "range exceeds the virtual PE count"
        );
        let mut total = PeStats::new();
        for shard in &self.shards {
            for (i, s) in shard.stats.iter().enumerate() {
                if range.contains(&(shard.base + i)) {
                    total.merge(s);
                }
            }
        }
        total
    }

    /// Aggregate network statistics (zeroes for the ideal backend).
    #[must_use]
    pub fn net_stats(&self) -> NetStats {
        match &self.backend {
            BackendImpl::Ideal { .. } => NetStats::new(0),
            BackendImpl::Network { nets, .. } => {
                let mut total = NetStats::new(0);
                for i in 0..nets.copies() {
                    let s = nets.copy(i).stats();
                    total.injected_requests.add(s.injected_requests.get());
                    total.delivered_requests.add(s.delivered_requests.get());
                    total.injected_replies.add(s.injected_replies.get());
                    total.delivered_replies.add(s.delivered_replies.get());
                    total.combines.add(s.combines.get());
                    total.decombines.add(s.decombines.get());
                    total.wait_buffer_declines.add(s.wait_buffer_declines.get());
                    total.drops.add(s.drops.get());
                    total.inject_stalls.add(s.inject_stalls.get());
                    total.fault_dropped.add(s.fault_dropped.get());
                    total.fault_refusals.add(s.fault_refusals.get());
                    total.stuck_wait_entries.add(s.stuck_wait_entries.get());
                    total.forward_transit.merge(&s.forward_transit);
                    total.reverse_transit.merge(&s.reverse_transit);
                }
                total
            }
        }
    }

    /// Physical PEs fail-stopped because the degraded network left them
    /// no route to any module. Empty on a healthy machine.
    #[must_use]
    pub fn dead_pes(&self) -> &[PeId] {
        &self.dead_pes
    }

    /// Aggregate resilience counters (refusals, failovers, retries,
    /// dedup). All zero under [`FaultPlan::none`].
    #[must_use]
    pub fn fault_summary(&self) -> FaultSummary {
        let mut f = FaultSummary {
            duplicate_replies: self.duplicate_replies,
            unroutable: self.unroutable,
            deconfigured_pes: self.dead_pes.len() as u64,
            retries: self
                .shards
                .iter()
                .map(|s| s.pni.stats().retries.get())
                .sum(),
            ..FaultSummary::default()
        };
        if let BackendImpl::Network { nets, banks, .. } = &self.backend {
            f.failovers = nets.failovers();
            for i in 0..nets.copies() {
                let s = nets.copy(i).stats();
                f.refusals += s.fault_refusals.get();
                f.dropped += s.fault_dropped.get();
                f.stuck_wait_entries += s.stuck_wait_entries.get();
            }
            for bank in banks {
                let s = bank.stats();
                f.dedup_hits += s.dedup_hits.get();
                f.dedup_swallowed += s.dedup_swallowed.get();
                f.dead_discards += s.dead_discards.get();
            }
        }
        f
    }

    /// The §3.1.4 serial-bottleneck indicator: the deepest request queue
    /// any memory module accumulated (0 on the ideal backend, which has
    /// no modules). Address hashing exists to keep this small.
    #[must_use]
    pub fn max_mm_queue_depth(&self) -> usize {
        match &self.backend {
            BackendImpl::Ideal { .. } => 0,
            BackendImpl::Network { banks, .. } => banks
                .iter()
                .map(|b| b.stats().max_queue_depth)
                .max()
                .unwrap_or(0),
        }
    }

    /// Reads a shared word directly (after a run; not timed).
    #[must_use]
    pub fn read_shared(&self, vaddr: usize) -> Value {
        let addr = self.hasher.translate(vaddr);
        match &self.backend {
            BackendImpl::Ideal { para, .. } => para.load(Self::flat_key(addr, self.cfg.net.pes)),
            BackendImpl::Network { banks, .. } => banks[addr.mm.0].peek(addr.offset),
        }
    }

    /// Writes a shared word directly (initialization; not timed).
    pub fn write_shared(&mut self, vaddr: usize, value: Value) {
        let addr = self.hasher.translate(vaddr);
        let n = self.cfg.net.pes;
        match &mut self.backend {
            BackendImpl::Ideal { para, .. } => para.store(Self::flat_key(addr, n), value),
            BackendImpl::Network { banks, .. } => banks[addr.mm.0].poke(addr.offset, value),
        }
    }

    fn flat_key(addr: ultra_sim::MemAddr, n: usize) -> usize {
        addr.offset * n + addr.mm.0
    }

    /// Runs until completion or the cycle budget.
    pub fn run(&mut self) -> RunOutcome {
        let started = Instant::now();
        let outcome = self.run_inner();
        self.run_elapsed = Some(started.elapsed());
        outcome
    }

    /// Runs for at most `budget` further cycles (or to completion, or to
    /// [`MachineConfig::max_cycles`], whichever is soonest). Stopping and
    /// resuming is bit-identical to an uninterrupted [`Machine::run`]:
    /// `run_for(k)` then `run_for(m)` leaves exactly the state of
    /// `run_for(k + m)`. This is the unit the job server's
    /// checkpoint-on-budget and snapshot-cache prefixes are built from.
    pub fn run_for(&mut self, budget: Cycle) -> RunOutcome {
        let orig = self.cfg.max_cycles;
        self.cfg.max_cycles = orig.min(self.now.saturating_add(budget));
        let outcome = self.run();
        self.cfg.max_cycles = orig;
        outcome
    }

    fn run_inner(&mut self) -> RunOutcome {
        // A machine that already completed must stay a fixed point:
        // without this check a resumed (restored or re-run) quiescent
        // machine would burn one extra cycle before noticing, breaking
        // run/snapshot/resume parity.
        if self.is_quiescent() {
            return self.finish(true);
        }
        while self.now < self.cfg.max_cycles {
            self.step();
            if self.is_quiescent() {
                return self.finish(true);
            }
            if self.cfg.fast_forward {
                self.fast_forward_idle();
            }
        }
        self.finish(false)
    }

    fn finish(&mut self, completed: bool) -> RunOutcome {
        let cycles = self.now;
        for shard in &mut self.shards {
            for s in &mut shard.stats {
                s.total_cycles = cycles;
            }
        }
        if self.series.is_enabled() {
            // Close the final (possibly partial) telemetry window so the
            // per-window sums cover the whole run.
            let cum = self.telemetry_counters();
            let gauges = self.telemetry_gauges();
            self.series.flush(self.now, cum, gauges);
        }
        RunOutcome { completed, cycles }
    }

    /// Sums the cumulative scalar network counters across the `d`
    /// copies (all zero on the ideal backend). No allocation, no
    /// histogram merges — this runs once per telemetry window.
    fn telemetry_counters(&self) -> CounterSnapshot {
        let mut c = CounterSnapshot::default();
        if let BackendImpl::Network { nets, .. } = &self.backend {
            for i in 0..nets.copies() {
                let s = nets.copy(i).stats();
                c.injected_requests += s.injected_requests.get();
                c.delivered_requests += s.delivered_requests.get();
                c.injected_replies += s.injected_replies.get();
                c.delivered_replies += s.delivered_replies.get();
                c.combines += s.combines.get();
                c.decombines += s.decombines.get();
                c.inject_stalls += s.inject_stalls.get();
                c.fault_dropped += s.fault_dropped.get();
                c.fault_refusals += s.fault_refusals.get();
            }
        }
        c
    }

    /// Instantaneous gauges at a window boundary.
    fn telemetry_gauges(&self) -> GaugeSnapshot {
        match &self.backend {
            BackendImpl::Ideal { .. } => GaugeSnapshot::default(),
            BackendImpl::Network { nets, banks, .. } => GaugeSnapshot {
                mm_queue_depth_max: banks
                    .iter()
                    .map(|b| b.queue_depth() as u64)
                    .max()
                    .unwrap_or(0),
                wait_occupancy: nets.total_wait_occupancy(),
            },
        }
    }

    /// Records every telemetry window whose boundary `now` has reached —
    /// one window per normal step, possibly several after a fast-forward
    /// jump (each then sees unchanged counters, exactly as per-cycle
    /// stepping would have sampled them, keeping the series
    /// bit-identical across fast-forward settings).
    fn telemetry_tick(&mut self) {
        while self.series.due(self.now) {
            let cum = self.telemetry_counters();
            let gauges = self.telemetry_gauges();
            self.series.sample(cum, gauges);
        }
    }

    fn is_quiescent(&self) -> bool {
        self.halted_count == self.virtual_pes()
            && self.meta.is_empty()
            && self.outgoing_mask.is_empty()
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        let fired = self.fault_clock.due(now);
        for fault in fired {
            self.apply_fault(fault);
        }
        // Phase timing costs an `Instant::now` pair per phase, so the
        // default path takes none of them.
        if self.phases.is_enabled() {
            let t0 = Instant::now();
            self.flush_outgoing(now);
            let dur = t0.elapsed().as_nanos() as u64;
            self.record_phase_span(now, EnginePhase::Flush, t0, dur, 0);
            self.backend_cycle(now);
            self.queue_due_retries(now);
            self.release_barrier_if_complete();
            let t0 = Instant::now();
            self.pe_phase(now);
            let dur = t0.elapsed().as_nanos() as u64;
            let chunks = self.pool.dispatch_stats().last_chunks as u32;
            self.record_phase_span(now, EnginePhase::PeShards, t0, dur, chunks);
        } else {
            self.flush_outgoing(now);
            self.backend_cycle(now);
            self.queue_due_retries(now);
            self.release_barrier_if_complete();
            self.pe_phase(now);
        }
        self.now += 1;
        self.telemetry_tick();
    }

    /// Records one wall-clock phase span that started at `t0` and took
    /// `dur_ns`.
    fn record_phase_span(
        &mut self,
        cycle: Cycle,
        phase: EnginePhase,
        t0: Instant,
        dur_ns: u64,
        chunks: u32,
    ) {
        let start_ns = t0.saturating_duration_since(self.phase_epoch).as_nanos() as u64;
        self.phases.record(PhaseSpan {
            cycle,
            phase,
            start_ns,
            dur_ns,
            pool_chunks: chunks,
        });
    }

    /// Sparse-dispatch grain: one worker thread is engaged per this many
    /// *active* units (live shards, busy banks), so near-idle cycles run
    /// inline on the caller instead of waking the pool.
    const SPARSE_GRAIN: usize = 32;

    /// The datapath cycle of every live physical PE, fanned out over the
    /// engine's threads (shards never touch each other within a cycle),
    /// followed by the deferred-effect merge. Workers flag shards that
    /// produced effects in [`Machine::fx_dirty`]; the merge then drains
    /// only flagged shards, in ascending shard index order — the order
    /// the sequential loop applies effects in, so every thread count
    /// yields identical metadata, trace and halt streams. Fully-halted
    /// shards are skipped outright (their datapath cycle is a no-op),
    /// and the post-phase pass is a pointer-wide word walk instead of an
    /// every-shard scan.
    fn pe_phase(&mut self, now: Cycle) {
        let cx = CycleCtx {
            now,
            cpi: self.cfg.time.cycles_per_instruction,
            barrier_generation: self.barrier_generation,
            trace_enabled: self.trace.enabled,
        };
        let fx_dirty = &self.fx_dirty;
        self.pool.run_sparse(
            &mut self.shards,
            self.live_mask.words(),
            Self::SPARSE_GRAIN,
            |i, shard| {
                shard.pe_cycle(cx);
                if !shard.fx.is_empty() {
                    fx_dirty.mark(i);
                }
            },
        );
        for w in 0..self.fx_dirty.words() {
            let mut bits = self.fx_dirty.take_word(w);
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let shard = &mut self.shards[i];
                for (id, meta) in shard.fx.meta.drain(..) {
                    self.meta.insert(id, meta);
                }
                for event in shard.fx.trace.drain(..) {
                    self.trace.record(event);
                }
                if shard.fx.halted > 0 {
                    self.halted_count += shard.fx.halted;
                    shard.fx.halted = 0;
                    if shard.states.iter().all(|s| *s == CtxState::Halted) {
                        self.live_mask.clear(i);
                    }
                }
                // An issue pushes its metadata and its outbound message
                // together, so dirty shards are exactly the ones whose
                // `outgoing` may have just become non-empty.
                if !shard.outgoing.is_empty() {
                    self.outgoing_mask.set(i);
                }
            }
        }
    }

    /// Skips a stretch of cycles during which the machine provably does
    /// nothing but tick: all traffic drained, every context parked on a
    /// wait only a *scheduled* future event can resolve. Jumps straight
    /// to the earliest such event — a fault firing, a PNI retry
    /// deadline, an ideal-backend completion, or a datapath release —
    /// bulk-charging idle statistics exactly as per-cycle stepping
    /// would. Runs are bit-identical with this on or off.
    fn fast_forward_idle(&mut self) {
        let now = self.now;
        if !self.outgoing_mask.is_empty() {
            return;
        }
        let mut next: Option<Cycle> = None;
        match &self.backend {
            BackendImpl::Ideal { pending, .. } => {
                if let Some((&due, _)) = pending.iter().next() {
                    next = min_event(next, due);
                }
            }
            BackendImpl::Network { nets, .. } => {
                if !nets.is_drained() || !self.bank_active.is_empty() {
                    return;
                }
            }
        }
        // With retries enabled every shard must be scanned: a
        // fully-halted shard can still hold a pending PNI retry deadline
        // (a store issued just before the context halted, then lost to a
        // faulty link), and missing that deadline would wedge the run.
        // With retries off — the overwhelmingly common case — halted
        // shards provably schedule nothing, so the scan walks only the
        // live mask's words.
        if self.retry_enabled {
            for shard in &self.shards {
                match Self::shard_ff_event(shard, now) {
                    ShardFf::Event(at) => next = min_event(next, at),
                    ShardFf::Parked => {}
                    ShardFf::Runnable => return,
                }
                if let Some(deadline) = shard.pni.next_retry_deadline() {
                    next = min_event(next, deadline);
                }
            }
        } else {
            for w in 0..self.live_mask.words().len() {
                let mut bits = self.live_mask.word(w);
                while bits != 0 {
                    let i = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    match Self::shard_ff_event(&self.shards[i], now) {
                        ShardFf::Event(at) => next = min_event(next, at),
                        ShardFf::Parked => {}
                        ShardFf::Runnable => return,
                    }
                }
            }
        }
        if let Some(due) = self.fault_clock.next_due() {
            next = min_event(next, due);
        }
        // No event at all means deadlock: burn straight to the budget,
        // preserving the timeout outcome per-cycle stepping reaches.
        let target = next.unwrap_or(self.cfg.max_cycles).min(self.cfg.max_cycles);
        if target <= now {
            return;
        }
        let skipped = target - now;
        // Bulk idle charging touches only live shards: a fully-halted
        // shard has no context to charge.
        for w in 0..self.live_mask.words().len() {
            let mut bits = self.live_mask.word(w);
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let shard = &mut self.shards[i];
                if shard.busy_until > now {
                    continue; // busy datapath: stepping charges no idle time
                }
                let k = shard.states.len();
                let owner = shard.cursor % k;
                let charged = if shard.states[owner] != CtxState::Halted {
                    Some(owner)
                } else {
                    (0..k).find(|&c| shard.states[c] != CtxState::Halted)
                };
                if let Some(c) = charged {
                    shard.stats[c].idle_cycles.add(skipped);
                    if shard.states[c] == CtxState::WaitBarrier {
                        shard.stats[c].barrier_wait_cycles.add(skipped);
                    }
                }
            }
        }
        self.fast_forwarded += skipped;
        self.now = target;
        // The jump may have crossed telemetry window boundaries; emit
        // the samples stepping would have produced (zero-delta, since
        // nothing happened in the skipped stretch).
        self.telemetry_tick();
    }

    /// One shard's contribution to the fast-forward decision: the cycle
    /// its datapath frees, proof every context is parked, or evidence a
    /// context could run now (which forbids skipping).
    fn shard_ff_event(shard: &PeShard, now: Cycle) -> ShardFf {
        if shard.busy_until > now {
            // Mid-instruction: the datapath frees at `busy_until`,
            // which may unpark a ready context — an event.
            return ShardFf::Event(shard.busy_until);
        }
        // Idle datapath: every context must be unable to run until a
        // reply arrives (impossible: traffic is drained) or a future
        // event fires. `Ready` could execute now; `WaitIssue`
        // re-attempts each cycle and bumps PNI conflict counters, so
        // neither may be skipped over. A timed wait whose target is
        // still ahead contributes a wake-up event at that cycle.
        let mut next = None;
        for (c, state) in shard.states.iter().enumerate() {
            let parked = match state {
                CtxState::Halted | CtxState::WaitBarrier => true,
                CtxState::WaitReg(r) => shard.interps[c].is_locked(*r),
                CtxState::WaitFence => shard.pni.outstanding() > 0,
                CtxState::WaitUntil(at) => {
                    if *at > now {
                        next = min_event(next, *at);
                        true
                    } else {
                        false
                    }
                }
                CtxState::Ready | CtxState::WaitIssue(..) => return ShardFf::Runnable,
            };
            if !parked {
                return ShardFf::Runnable;
            }
        }
        match next {
            Some(at) => ShardFf::Event(at),
            None => ShardFf::Parked,
        }
    }

    /// Applies one fired fault to the live machine. Faults target the
    /// network backend; on the ideal backend they are no-ops.
    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::KillCopy { copy } => {
                if let BackendImpl::Network { nets, .. } = &mut self.backend {
                    nets.copy_mut(copy).kill();
                }
            }
            Fault::KillMm { mm } => self.kill_mm(mm),
            Fault::SlowMm { mm, factor } => {
                if let BackendImpl::Network { banks, .. } = &mut self.backend {
                    banks[mm.0]
                        .set_service_time(self.cfg.time.cycles_per_mm_access * Cycle::from(factor));
                }
            }
            Fault::KillSwitchPort {
                copy,
                stage,
                switch,
                port,
            } => {
                if let BackendImpl::Network { nets, .. } = &mut self.backend {
                    let net = nets.copy_mut(copy);
                    let mut mask = net.fault_mask().clone();
                    mask.kill_port(stage, switch, port);
                    net.set_fault_mask(mask);
                }
            }
            Fault::StickWaitEntry {
                copy,
                stage,
                switch,
            } => {
                if let BackendImpl::Network { nets, .. } = &mut self.backend {
                    let _ = nets.copy_mut(copy).poison_wait_entry(stage, switch);
                }
            }
        }
        if matches!(fault, Fault::KillCopy { .. } | Fault::KillSwitchPort { .. }) {
            self.absorb_unreachable();
        }
    }

    /// Degraded-mode reconfiguration after route loss. Dead copies plus
    /// dead ports can sever routes entirely; requests on a severed route
    /// could never inject and would wedge the machine, so:
    ///
    /// 1. A PE with no route to *any* module in *any* copy is
    ///    fail-stopped (deconfigured) — the paper's fail-soft stance:
    ///    the machine keeps running with fewer PEs.
    /// 2. A module some *live* PE cannot reach is folded into the dead
    ///    set, the stand-in for the OS remapping memory away from
    ///    modules the degraded network no longer serves; re-hashing
    ///    (§3.1.4) adopts its words. At least one module always
    ///    survives.
    fn absorb_unreachable(&mut self) {
        let n = self.cfg.net.pes;
        let reach: Vec<Vec<bool>> = {
            let BackendImpl::Network { nets, .. } = &self.backend else {
                return;
            };
            // One copy with intact routing reaches everything. Link loss
            // alone never severs a route (a lossy link drops individual
            // injections; `fault_refuses` ignores it), so only dead copies
            // and dead ports matter here — a loss-only plan skips the
            // O(PEs x MMs) route probe entirely.
            if (0..nets.copies()).any(|c| {
                let mask = nets.copy(c).fault_mask();
                !mask.copy_dead() && !mask.any_port_dead()
            }) {
                return;
            }
            (0..n)
                .map(|pe| {
                    (0..n)
                        .map(|mm| {
                            let probe = Message::request(
                                MsgId(0),
                                MsgKind::Load,
                                MemAddr::new(MmId(mm), 0),
                                0,
                                PeId(pe),
                                0,
                            );
                            (0..nets.copies()).any(|c| !nets.copy(c).fault_refuses(&probe))
                        })
                        .collect()
                })
                .collect()
        };
        for (pe, row) in reach.iter().enumerate() {
            if row.iter().all(|&ok| !ok) {
                self.deconfigure_pe(pe);
            }
        }
        let mut lost = vec![false; n];
        for (pe, row) in reach.iter().enumerate() {
            if self.dead_pes.contains(&PeId(pe)) {
                continue;
            }
            for (mm, &ok) in row.iter().enumerate() {
                if !ok {
                    lost[mm] = true;
                }
            }
        }
        for (mm, &lost) in lost.iter().enumerate() {
            if !lost || self.dead_mms.contains(&MmId(mm)) {
                continue;
            }
            if self.dead_mms.len() + 2 > n {
                break;
            }
            self.kill_mm(MmId(mm));
        }
    }

    /// Fail-stops physical PE `pe`: every context halts, queued and
    /// outstanding requests are abandoned (late replies for them are
    /// dropped as orphans). Mid-run deconfiguration does not release
    /// barriers the dead PE was expected at — like the real machine, a
    /// barrier with a dead participant never completes.
    fn deconfigure_pe(&mut self, pe: usize) {
        if self.dead_pes.contains(&PeId(pe)) {
            return;
        }
        self.dead_pes.push(PeId(pe));
        let shard = &mut self.shards[pe];
        for state in &mut shard.states {
            if *state != CtxState::Halted {
                *state = CtxState::Halted;
                self.halted_count += 1;
            }
        }
        for msg in shard.outgoing.drain(..) {
            self.meta.remove(&msg.id);
        }
        for id in shard.pni.abandon_all() {
            self.meta.remove(&id);
        }
        self.outgoing_mask.clear(pe);
        self.live_mask.clear(pe);
    }

    /// Kills module `mm` mid-run: its contents are lost, queued requests
    /// are discarded (PNI timeouts recover them), and translation
    /// re-hashes around the cumulative dead set on every PNI.
    fn kill_mm(&mut self, mm: MmId) {
        if self.dead_mms.contains(&mm) {
            return;
        }
        self.dead_mms.push(mm);
        self.hasher.set_dead_mms(&self.dead_mms);
        if let BackendImpl::Network { banks, .. } = &mut self.backend {
            banks[mm.0].kill();
        }
        for shard in &mut self.shards {
            shard.pni.set_hasher(self.hasher.clone());
        }
    }

    /// Re-issues timed-out requests (retry protocol; skipped wholesale
    /// when the fault plan never enabled retries).
    fn queue_due_retries(&mut self, now: Cycle) {
        if !self.retry_enabled {
            return;
        }
        for pe in 0..self.shards.len() {
            let shard = &mut self.shards[pe];
            shard.pni.due_retries_into(now, &mut shard.outgoing);
            if !shard.outgoing.is_empty() {
                self.outgoing_mask.set(pe);
            }
        }
    }

    /// Tries to push queued outbound messages into the backend. Walks
    /// the outgoing mask's words, so a mostly-drained machine pays one
    /// word test per 64 shards instead of a queue probe per shard; each
    /// word is snapshot before its bits are consumed, and only the bit
    /// of the shard just flushed is ever cleared, so the walk is safe
    /// against its own updates.
    fn flush_outgoing(&mut self, now: Cycle) {
        for w in 0..self.outgoing_mask.words().len() {
            let mut bits = self.outgoing_mask.word(w);
            while bits != 0 {
                let pe = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.flush_shard_outgoing(pe, now);
                if self.shards[pe].outgoing.is_empty() {
                    self.outgoing_mask.clear(pe);
                }
            }
        }
    }

    /// Flushes one shard's queue until empty or backpressured.
    fn flush_shard_outgoing(&mut self, pe: usize, now: Cycle) {
        {
            while let Some(msg) = self.shards[pe].outgoing.front() {
                match &mut self.backend {
                    BackendImpl::Ideal {
                        latency, pending, ..
                    } => {
                        let due = now + *latency;
                        pending.entry(due).or_default().push(msg.clone());
                        self.shards[pe].outgoing.pop_front();
                    }
                    BackendImpl::Network { nets, copy_of, .. } => {
                        // A request every copy refuses (dead copy, or a
                        // dead port on its only route in each) can never
                        // inject: abandon it rather than wedging this
                        // PE's queue; the PNI timeout re-issues it under
                        // whatever translation the degraded hash uses by
                        // then.
                        if (0..nets.copies()).all(|c| nets.copy(c).fault_refuses(msg)) {
                            self.shards[pe].outgoing.pop_front();
                            self.unroutable += 1;
                            continue;
                        }
                        let m = msg.clone();
                        let key = (m.id, m.attempt);
                        match nets.try_inject_request(m, now) {
                            Ok(copy) => {
                                copy_of.insert(key, copy);
                                self.shards[pe].outgoing.pop_front();
                            }
                            Err(_) => break, // backpressure; retry next cycle
                        }
                    }
                }
            }
        }
    }

    /// Advances the memory system and delivers completions.
    fn backend_cycle(&mut self, now: Cycle) {
        let pool = &self.pool;
        let timed = self.phases.is_enabled();
        // Staged first to avoid borrowing `self` across the delivery; the
        // buffer is pooled on the machine so steady state never allocates.
        let mut deliveries = std::mem::take(&mut self.deliveries);
        debug_assert!(deliveries.is_empty());
        // Spans are staged here and recorded after the backend borrow
        // ends.
        let mut bank_span: Option<(Instant, u64, u32)> = None;
        let mut net_span: Option<(Instant, u64, u32)> = None;
        match &mut self.backend {
            BackendImpl::Ideal { para, pending, .. } => {
                let t0 = timed.then(Instant::now);
                if let Some(batch) = pending.remove(&now) {
                    // The whole batch is "simultaneous": serialization
                    // principle via seeded shuffle inside apply_batch.
                    let n = self.cfg.net.pes;
                    let ops: Vec<crate::paracomputer::MemOp> = batch
                        .iter()
                        .map(|m| {
                            let key = Self::flat_key(m.addr, n);
                            match m.kind {
                                MsgKind::Load => crate::paracomputer::MemOp::Load { addr: key },
                                MsgKind::Store => crate::paracomputer::MemOp::Store {
                                    addr: key,
                                    value: m.value,
                                },
                                MsgKind::FetchPhi(op) => crate::paracomputer::MemOp::FetchPhi {
                                    op,
                                    addr: key,
                                    operand: m.value,
                                },
                            }
                        })
                        .collect();
                    let results = para.apply_batch(&ops);
                    for (m, v) in batch.iter().zip(results) {
                        deliveries.push(Reply::to_request(m, v));
                    }
                }
                if let Some(t0) = t0 {
                    bank_span = Some((t0, t0.elapsed().as_nanos() as u64, 0));
                }
            }
            BackendImpl::Network {
                nets,
                banks,
                copy_of,
            } => {
                let t0 = timed.then(Instant::now);
                // Banks are mutually independent and never read the
                // network, so serving them fans out over the engine's
                // threads — but only banks actually holding work: a bit
                // in `bank_active` is set when a request is delivered
                // and cleared once the bank drains idle, and an idle
                // bank's cycle is a no-op, so the masked fan-out is
                // exact. Outboxes then drain into the network in bank
                // index order (the mask walk is ascending) — exactly the
                // injection sequence the sequential interleaved loop
                // produces.
                pool.run_sparse(
                    banks,
                    self.bank_active.words(),
                    Self::SPARSE_GRAIN,
                    |_, bank| bank.cycle(now),
                );
                for w in 0..self.bank_active.words().len() {
                    let mut bits = self.bank_active.word(w);
                    while bits != 0 {
                        let b = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let bank = &mut banks[b];
                        // Replies re-enter through the copy that carried
                        // the request (stalling if the reverse link is
                        // busy).
                        while let Some(reply) = bank.peek_reply() {
                            let Some(&copy) = copy_of.get(&(reply.id, reply.attempt)) else {
                                // An answer to an attempt whose twin already
                                // round-tripped; nobody is waiting for it.
                                let _ = bank.pop_reply();
                                self.duplicate_replies += 1;
                                continue;
                            };
                            let r = reply.clone();
                            match nets.try_inject_reply(copy, r, now) {
                                Ok(()) => {
                                    let _ = bank.pop_reply();
                                }
                                Err(_) => break,
                            }
                        }
                        if bank.is_idle() {
                            self.bank_active.clear(b);
                        }
                    }
                }
                if let Some(t0) = t0 {
                    let chunks = pool.dispatch_stats().last_chunks as u32;
                    bank_span = Some((t0, t0.elapsed().as_nanos() as u64, chunks));
                }
                let t0 = timed.then(Instant::now);
                // The fabric moves — the d copies share nothing within a
                // cycle, so they advance in parallel into their pooled
                // event buffers; arrivals then drain in fixed copy order.
                // Arrivals at MMs enter bank queues; arrivals at PEs are
                // delivered below. A fully drained fabric (checked after
                // the reply injections above) cycles to itself with empty
                // event buffers, so the whole phase is skipped.
                if !nets.is_drained() {
                    nets.cycle_inplace(now, pool);
                    let d = nets.copies();
                    for copy in 0..d {
                        let events = nets.events_mut(copy);
                        for msg in events.requests_at_mm.drain(..) {
                            self.bank_active.set(msg.addr.mm.0);
                            banks[msg.addr.mm.0].push_request(msg);
                        }
                        for reply in events.replies_at_pe.drain(..) {
                            copy_of.remove(&(reply.id, reply.attempt));
                            deliveries.push(reply);
                        }
                        for dropped in events.dropped.drain(..) {
                            // DropOnConflict: the PE must re-offer the
                            // request.
                            self.outgoing_mask.set(dropped.src.0);
                            self.shards[dropped.src.0].outgoing.push_back(dropped);
                        }
                    }
                }
                if let Some(t0) = t0 {
                    let chunks = pool.dispatch_stats().last_chunks as u32;
                    net_span = Some((t0, t0.elapsed().as_nanos() as u64, chunks));
                }
            }
        }
        if let Some((t0, dur, chunks)) = bank_span {
            self.record_phase_span(now, EnginePhase::MemBanks, t0, dur, chunks);
        }
        if let Some((t0, dur, chunks)) = net_span {
            self.record_phase_span(now, EnginePhase::Network, t0, dur, chunks);
        }
        for reply in deliveries.drain(..) {
            self.deliver_reply(&reply, now);
        }
        self.deliveries = deliveries;
    }

    fn deliver_reply(&mut self, reply: &Reply, now: Cycle) {
        let Some(meta) = self.meta.remove(&reply.id) else {
            // The retry protocol makes duplicate answers legal: a timed-out
            // request and its retry can both be served (the MM dedup cache
            // keeps the *effect* exactly-once). The first answer completed
            // the request; later ones are discarded here.
            self.duplicate_replies += 1;
            return;
        };
        let ctx = meta.ctx;
        let phys = ctx / self.cfg.contexts_per_pe;
        let shard = &mut self.shards[phys];
        let c = ctx - shard.base;
        let matched = shard.pni.complete(reply);
        debug_assert!(matched, "PNI lost track of an outstanding request");
        shard.stats[c]
            .cm_access
            .record(now.saturating_sub(reply.request_issued_at));
        self.trace.record(TraceEvent::Reply {
            cycle: now,
            pe: PeId(ctx),
            latency: now.saturating_sub(reply.request_issued_at),
        });
        match meta.purpose {
            Purpose::Data => {
                if let Some(dst) = meta.dst {
                    shard.interps[c].write_and_unlock(dst, reply.value);
                }
            }
            Purpose::Barrier => {
                self.barrier_arrived += 1;
            }
        }
    }

    fn release_barrier_if_complete(&mut self) {
        let parties = self.cfg.barrier_parties.unwrap_or(self.virtual_pes());
        if self.barrier_arrived == parties {
            self.barrier_arrived = 0;
            self.trace.record(TraceEvent::BarrierRelease {
                cycle: self.now,
                generation: self.barrier_generation,
            });
            self.barrier_generation += 1;
            for shard in &mut self.shards {
                for state in &mut shard.states {
                    if *state == CtxState::WaitBarrier {
                        *state = CtxState::Ready;
                    }
                }
            }
        }
    }
}

/// One shard's verdict in the fast-forward scan.
enum ShardFf {
    /// The shard's datapath frees at this cycle (an event to jump to).
    Event(Cycle),
    /// Every context is parked on a wait no passing cycle resolves.
    Parked,
    /// Some context could use the datapath now: skipping is illegal.
    Runnable,
}

/// The earliest of an optional event cycle and a new candidate.
fn min_event(current: Option<Cycle>, candidate: Cycle) -> Option<Cycle> {
    Some(current.map_or(candidate, |c| c.min(candidate)))
}

// ---- snapshot state serialization ----
//
// Everything the simulation's future depends on is written; everything
// rebuildable from the config (hasher, route tables, worker pool, active
// sets) or purely observational (trace, telemetry, phase spans,
// wall-clock) is not. See `crate::snapshot` for the framed public format.

impl Wire for BackendKind {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Self::Ideal { latency } => {
                w.u8(0);
                w.u64(*latency);
            }
            Self::Network { copies } => {
                w.u8(1);
                w.usize(*copies);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::Ideal { latency: r.u64()? },
            1 => Self::Network { copies: r.usize()? },
            _ => return Err(WireError::Invalid("backend kind tag")),
        })
    }
}

impl Wire for Purpose {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            Self::Data => 0,
            Self::Barrier => 1,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::Data,
            1 => Self::Barrier,
            _ => return Err(WireError::Invalid("request purpose tag")),
        })
    }
}

impl Wire for CtxState {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Self::Ready => w.u8(0),
            Self::WaitReg(reg) => {
                w.u8(1);
                w.u8(*reg);
            }
            Self::WaitIssue(spec, purpose) => {
                w.u8(2);
                spec.encode(w);
                purpose.encode(w);
            }
            Self::WaitBarrier => w.u8(3),
            Self::WaitFence => w.u8(4),
            Self::Halted => w.u8(5),
            Self::WaitUntil(at) => {
                w.u8(6);
                w.u64(*at);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::Ready,
            1 => Self::WaitReg(r.u8()?),
            2 => Self::WaitIssue(IssueSpec::decode(r)?, Purpose::decode(r)?),
            3 => Self::WaitBarrier,
            4 => Self::WaitFence,
            5 => Self::Halted,
            6 => Self::WaitUntil(r.u64()?),
            _ => return Err(WireError::Invalid("context state tag")),
        })
    }
}

impl Wire for ReqMeta {
    fn encode(&self, w: &mut WireWriter) {
        w.usize(self.ctx);
        self.dst.encode(w);
        self.purpose.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            ctx: r.usize()?,
            dst: Option::decode(r)?,
            purpose: Purpose::decode(r)?,
        })
    }
}

impl MachineConfig {
    /// Serializes the fields that define *what* is being simulated — the
    /// snapshot's config-identity echo. Speed knobs (`threads`,
    /// `auto_threads`, `sweep`, `fast_forward`) are excluded: every
    /// setting of them is bit-identical, so a snapshot may legally be
    /// resumed under different ones (see
    /// [`crate::snapshot::EngineTuning`]).
    pub(crate) fn encode_identity(&self, w: &mut WireWriter) {
        self.net.encode(w);
        self.backend.encode(w);
        self.time.encode(w);
        self.translation.encode(w);
        w.u64(self.seed);
        w.u64(self.max_cycles);
        self.barrier_parties.encode(w);
        w.usize(self.contexts_per_pe);
        self.faults.encode(w);
    }

    /// Inverse of [`MachineConfig::encode_identity`]; the speed knobs
    /// come back at their defaults until the tuning echo overwrites them.
    pub(crate) fn decode_identity(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            net: NetConfig::decode(r)?,
            backend: BackendKind::decode(r)?,
            time: TimeScale::decode(r)?,
            translation: TranslationMode::decode(r)?,
            seed: r.u64()?,
            max_cycles: r.u64()?,
            barrier_parties: Option::decode(r)?,
            contexts_per_pe: r.usize()?,
            faults: FaultPlan::decode(r)?,
            threads: 1,
            auto_threads: true,
            sweep: SweepMode::default(),
            fast_forward: true,
        })
    }

    /// Serializes the speed knobs, so a plain [`crate::snapshot`] restore
    /// reproduces the donor machine's engine exactly.
    pub(crate) fn encode_tuning(&self, w: &mut WireWriter) {
        w.usize(self.threads);
        w.bool(self.auto_threads);
        self.sweep.encode(w);
        w.bool(self.fast_forward);
    }

    /// Applies a serialized tuning echo onto `self`.
    pub(crate) fn decode_tuning_into(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.threads = r.usize()?;
        self.auto_threads = r.bool()?;
        self.sweep = SweepMode::decode(r)?;
        self.fast_forward = r.bool()?;
        Ok(())
    }
}

/// Why a serialized machine state failed to reassemble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum StateDecodeError {
    /// The bytes themselves are malformed.
    Wire(WireError),
    /// The bytes are well-formed but disagree with the config echo they
    /// arrived with (wrong shard count, wrong backend, wrong geometry).
    ConfigMismatch(&'static str),
}

impl From<WireError> for StateDecodeError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl Machine {
    /// Serializes the full simulation state (config excluded — the
    /// snapshot layer frames it separately).
    pub(crate) fn encode_state(&self, w: &mut WireWriter) {
        self.dead_mms.encode(w);
        self.dead_pes.encode(w);
        w.u64(self.now);
        w.u64(self.barrier_generation);
        w.usize(self.barrier_arrived);
        w.u64(self.duplicate_replies);
        w.u64(self.unroutable);
        w.u64(self.fast_forwarded);
        self.fault_clock.encode(w);
        self.meta.encode(w);
        w.usize(self.shards.len());
        for shard in &self.shards {
            debug_assert!(
                shard.fx.meta.is_empty() && shard.fx.trace.is_empty() && shard.fx.halted == 0,
                "shard effects must be merged before a snapshot"
            );
            shard.interps.encode(w);
            shard.states.encode(w);
            shard.stats.encode(w);
            w.u64(shard.busy_until);
            w.usize(shard.cursor);
            shard.pni.encode_state(w);
            shard.outgoing.encode(w);
        }
        match &self.backend {
            BackendImpl::Ideal { para, pending, .. } => {
                w.u8(0);
                para.encode(w);
                pending.encode(w);
            }
            BackendImpl::Network {
                nets,
                banks,
                copy_of,
            } => {
                w.u8(1);
                nets.encode_state(w);
                banks.encode(w);
                copy_of.encode(w);
            }
        }
    }

    /// Reassembles a machine from `cfg` plus serialized state.
    /// Rebuildable structure (hasher, pool, route tables) is
    /// reconstructed from `cfg`; observational state (trace, telemetry,
    /// phase spans) starts disabled, exactly as on a fresh machine.
    pub(crate) fn decode_state(
        cfg: MachineConfig,
        r: &mut WireReader<'_>,
    ) -> Result<Self, StateDecodeError> {
        let n = cfg.net.pes;
        let k = cfg.contexts_per_pe;
        if k == 0 {
            return Err(StateDecodeError::ConfigMismatch("zero contexts per PE"));
        }
        let dead_mms: Vec<MmId> = Vec::decode(r)?;
        let dead_pes: Vec<PeId> = Vec::decode(r)?;
        if dead_mms.iter().any(|mm| mm.0 >= n) || dead_pes.iter().any(|pe| pe.0 >= n) {
            return Err(WireError::Invalid("dead module or PE index out of range").into());
        }
        let mut hasher = AddressHasher::new(n, cfg.translation);
        if !dead_mms.is_empty() {
            hasher.set_dead_mms(&dead_mms);
        }
        let now = r.u64()?;
        let barrier_generation = r.u64()?;
        let barrier_arrived = r.usize()?;
        let duplicate_replies = r.u64()?;
        let unroutable = r.u64()?;
        let fast_forwarded = r.u64()?;
        let fault_clock = FaultClock::decode(r)?;
        let meta: HashMap<MsgId, ReqMeta> = HashMap::decode(r)?;
        if meta.values().any(|m| m.ctx >= n * k) {
            return Err(WireError::Invalid("request context out of range").into());
        }
        let shard_count = r.seq_len()?;
        if shard_count != n {
            return Err(StateDecodeError::ConfigMismatch("PE shard count"));
        }
        let mut shards = Vec::with_capacity(n);
        let mut halted_count = 0usize;
        for phys in 0..n {
            let interps: Vec<PeInterp> = Vec::decode(r)?;
            let states: Vec<CtxState> = Vec::decode(r)?;
            let stats: Vec<PeStats> = Vec::decode(r)?;
            if interps.len() != k || states.len() != k || stats.len() != k {
                return Err(StateDecodeError::ConfigMismatch("contexts per shard"));
            }
            let busy_until = r.u64()?;
            let cursor = r.usize()?;
            let pni = Pni::decode_state(r, hasher.clone())?;
            let outgoing: VecDeque<Message> = VecDeque::decode(r)?;
            halted_count += states.iter().filter(|s| **s == CtxState::Halted).count();
            shards.push(PeShard {
                base: phys * k,
                interps,
                states,
                stats,
                busy_until,
                cursor: cursor % k,
                pni,
                outgoing,
                fx: ShardFx::default(),
            });
        }
        let backend = match (r.u8()?, cfg.backend) {
            (0, BackendKind::Ideal { latency }) => BackendImpl::Ideal {
                para: Paracomputer::decode(r)?,
                latency,
                pending: BTreeMap::decode(r)?,
            },
            (1, BackendKind::Network { copies }) => {
                let mut nets = ReplicatedOmega::decode_state(r)?;
                // The machine config (tuning echo or a restore-time
                // override) is authoritative for the sweep speed knob.
                nets.set_sweep_mode(cfg.sweep);
                if nets.copies() != copies {
                    return Err(StateDecodeError::ConfigMismatch("network copy count"));
                }
                if nets.copy(0).cfg() != &cfg.net {
                    return Err(StateDecodeError::ConfigMismatch("network geometry"));
                }
                let banks: Vec<MemBank> = Vec::decode(r)?;
                if banks.len() != n {
                    return Err(StateDecodeError::ConfigMismatch("memory bank count"));
                }
                let copy_of: HashMap<(MsgId, u32), usize> = HashMap::decode(r)?;
                if copy_of.values().any(|&c| c >= copies) {
                    return Err(WireError::Invalid("in-flight copy index out of range").into());
                }
                BackendImpl::Network {
                    nets,
                    banks,
                    copy_of,
                }
            }
            (0 | 1, _) => return Err(StateDecodeError::ConfigMismatch("backend kind")),
            _ => return Err(WireError::Invalid("backend state tag").into()),
        };
        // The engine masks are pure accelerations of state just decoded,
        // so they are never serialized — they are rebuilt here, keeping
        // the wire format byte-identical to the pre-mask engine.
        let mut live_mask = PackedMask::new(n);
        live_mask.rebuild(|i| shards[i].states.iter().any(|s| *s != CtxState::Halted));
        let mut outgoing_mask = PackedMask::new(n);
        outgoing_mask.rebuild(|i| !shards[i].outgoing.is_empty());
        let bank_active = match &backend {
            BackendImpl::Network { banks, .. } => {
                let mut m = PackedMask::new(n);
                m.rebuild(|i| !banks[i].is_idle());
                m
            }
            BackendImpl::Ideal { .. } => PackedMask::new(0),
        };
        Ok(Self {
            hasher,
            shards,
            meta,
            backend,
            barrier_generation,
            barrier_arrived,
            now,
            halted_count,
            trace: Trace::new(),
            fault_clock,
            dead_mms,
            duplicate_replies,
            unroutable,
            dead_pes,
            run_elapsed: None,
            fast_forwarded,
            deliveries: Vec::new(),
            pool: WorkerPool::new(Self::resolve_threads(&cfg)),
            fx_dirty: AtomicBitmap::new(n),
            outgoing_mask,
            live_mask,
            bank_active,
            retry_enabled: Self::retry_policy_for(&cfg).is_some(),
            series: TimeSeries::new(),
            phases: PhaseRecorder::new(),
            phase_epoch: Instant::now(),
            cfg,
        })
    }
}

impl PeShard {
    /// Issues `spec` for local context `c` through the shard's PNI and
    /// queues the message for injection. Metadata and trace writes are
    /// deferred into [`ShardFx`].
    fn attempt_issue(
        &mut self,
        c: usize,
        spec: &IssueSpec,
        purpose: Purpose,
        cx: CycleCtx,
    ) -> bool {
        if !self.outgoing.is_empty() {
            return false; // the PNI's outbound buffer is occupied
        }
        match self.pni.issue(spec.kind, spec.vaddr, spec.value, cx.now) {
            Ok(msg) => {
                let ctx = self.base + c;
                self.fx.meta.push((
                    msg.id,
                    ReqMeta {
                        ctx,
                        dst: spec.dst,
                        purpose,
                    },
                ));
                if let Some(dst) = spec.dst {
                    self.interps[c].lock(dst);
                }
                if cx.trace_enabled {
                    self.fx.trace.push(TraceEvent::Issue {
                        cycle: cx.now,
                        pe: PeId(ctx),
                        kind: spec.kind,
                        vaddr: spec.vaddr,
                    });
                }
                let s = &mut self.stats[c];
                s.shared_refs.incr();
                if spec.kind.reply_carries_data() {
                    s.cm_loads.incr();
                }
                self.outgoing.push_back(msg);
                true
            }
            Err(PniError::LocationBusy) => false,
        }
    }

    /// Whether local context `c` could execute an instruction right now
    /// if given the datapath (resolving any completed waits).
    fn resolve_waits(&mut self, c: usize, now: Cycle) -> bool {
        match self.states[c].clone() {
            CtxState::Halted | CtxState::WaitBarrier => false,
            CtxState::WaitReg(r) => {
                if self.interps[c].is_locked(r) {
                    false
                } else {
                    self.states[c] = CtxState::Ready;
                    true
                }
            }
            CtxState::WaitUntil(at) => {
                if now < at {
                    false
                } else {
                    self.states[c] = CtxState::Ready;
                    true
                }
            }
            CtxState::WaitFence => {
                // With multiprogramming the fence waits for *this
                // context's* requests; the shared PNI tracks per-PE, so a
                // conservative fence waits for the whole PNI to drain.
                if self.pni.outstanding() > 0 {
                    false
                } else {
                    self.states[c] = CtxState::Ready;
                    true
                }
            }
            CtxState::WaitIssue(..) | CtxState::Ready => true,
        }
    }

    /// One datapath cycle: round-robin over the shard's contexts,
    /// executing the first one that can make progress (zero-cost context
    /// switching, §3.5 / HEP).
    fn pe_cycle(&mut self, cx: CycleCtx) {
        if self.busy_until > cx.now {
            return; // mid-instruction
        }
        let k = self.states.len();
        for offset in 0..k {
            let c = (self.cursor + offset) % k;
            if !self.resolve_waits(c, cx.now) {
                continue;
            }
            let advanced = self.ctx_execute(c, cx);
            if advanced {
                // HEP-style: next instruction goes to the next context.
                self.cursor = (self.cursor + offset + 1) % k;
                return;
            }
        }
        // No context could use the datapath: a genuinely idle cycle,
        // charged to the context whose turn it was (if it is still alive).
        let owner = self.cursor % k;
        if self.states[owner] != CtxState::Halted {
            self.stats[owner].idle_cycles.incr();
            if self.states[owner] == CtxState::WaitBarrier {
                self.stats[owner].barrier_wait_cycles.incr();
            }
        } else if let Some(alive) = (0..k).find(|&c| self.states[c] != CtxState::Halted) {
            self.stats[alive].idle_cycles.incr();
            if self.states[alive] == CtxState::WaitBarrier {
                self.stats[alive].barrier_wait_cycles.incr();
            }
        }
    }

    /// Attempts to execute one instruction of local context `c`. Returns
    /// whether the datapath was consumed.
    fn ctx_execute(&mut self, c: usize, cx: CycleCtx) -> bool {
        let now = cx.now;
        let cpi = cx.cpi;
        if let CtxState::WaitIssue(spec, purpose) = self.states[c].clone() {
            if self.attempt_issue(c, &spec, purpose, cx) {
                self.states[c] = if purpose == Purpose::Barrier {
                    CtxState::WaitBarrier
                } else {
                    CtxState::Ready
                };
                self.stats[c].instructions.incr();
                self.busy_until = now + cpi;
                return true;
            }
            return false;
        }

        match self.interps[c].next_op(now) {
            Fetched::Halted => {
                self.states[c] = CtxState::Halted;
                self.fx.halted += 1;
                if cx.trace_enabled {
                    self.fx.trace.push(TraceEvent::Halt {
                        cycle: now,
                        pe: PeId(self.base + c),
                    });
                }
                // Halting consumes no datapath time; let another context
                // run this cycle.
                false
            }
            Fetched::Work {
                instructions,
                private_refs,
            } => {
                let s = &mut self.stats[c];
                s.instructions.add(u64::from(instructions));
                s.private_refs.add(u64::from(private_refs));
                self.busy_until = now + Cycle::from(instructions) * cpi;
                true
            }
            Fetched::BlockedOnReg(r) => {
                self.states[c] = CtxState::WaitReg(r);
                false
            }
            Fetched::SleepUntil(at) => {
                // The wait instruction itself costs one slot (it is the
                // fetch that fixed the target); the context then parks.
                self.states[c] = CtxState::WaitUntil(at);
                self.stats[c].instructions.incr();
                self.busy_until = now + cpi;
                true
            }
            Fetched::Fence => {
                self.states[c] = CtxState::WaitFence;
                self.stats[c].instructions.incr();
                self.busy_until = now + cpi;
                true
            }
            Fetched::Issue(spec) => {
                if self.attempt_issue(c, &spec, Purpose::Data, cx) {
                    self.stats[c].instructions.incr();
                    self.busy_until = now + cpi;
                    true
                } else {
                    self.states[c] = CtxState::WaitIssue(spec, Purpose::Data);
                    false
                }
            }
            Fetched::Barrier => {
                let spec = IssueSpec {
                    kind: MsgKind::fetch_add(),
                    vaddr: BARRIER_VADDR_BASE + cx.barrier_generation as usize,
                    value: 1,
                    dst: None,
                };
                if self.attempt_issue(c, &spec, Purpose::Barrier, cx) {
                    self.states[c] = CtxState::WaitBarrier;
                    self.stats[c].instructions.incr();
                    self.busy_until = now + cpi;
                    true
                } else {
                    self.states[c] = CtxState::WaitIssue(spec, Purpose::Barrier);
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{body, Expr, Op};

    fn counter_program(increments: i64) -> Program {
        // Every PE adds `increments` times 1 to the shared word 0.
        Program::new(
            body(vec![
                Op::For {
                    reg: 1,
                    from: Expr::Const(0),
                    to: Expr::Const(increments),
                    body: body(vec![Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: None,
                    }]),
                },
                Op::Halt,
            ]),
            vec![],
        )
    }

    #[test]
    fn ideal_backend_counts_exactly() {
        let mut m = MachineBuilder::new(8)
            .ideal(2)
            .build_spmd(&counter_program(10));
        let out = m.run();
        assert!(out.completed, "must drain");
        assert_eq!(m.read_shared(0), 80);
    }

    #[test]
    fn network_backend_counts_exactly() {
        let mut m = MachineBuilder::new(8).build_spmd(&counter_program(10));
        let out = m.run();
        assert!(out.completed);
        assert_eq!(m.read_shared(0), 80);
    }

    #[test]
    fn backends_agree_on_final_memory() {
        // Distinct-slot writes through self-scheduling: both backends must
        // produce one write per slot and full counter consumption.
        let p = Program::new(
            body(vec![
                Op::SelfSched {
                    reg: 0,
                    counter: Expr::Const(0),
                    limit: Expr::Const(40),
                    body: body(vec![Op::FetchAdd {
                        addr: Expr::add(Expr::Const(100), Expr::Reg(0)),
                        delta: Expr::Const(1),
                        dst: None,
                    }]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        for build in [
            MachineBuilder::new(8).ideal(2),
            MachineBuilder::new(8).network(1),
        ] {
            let mut m = build.build_spmd(&p);
            assert!(m.run().completed);
            for i in 0..40 {
                assert_eq!(m.read_shared(100 + i), 1, "slot {i}");
            }
            assert_eq!(m.read_shared(0), 40 + 8, "each PE overshoots once");
        }
    }

    #[test]
    fn barrier_synchronizes_all_pes() {
        // PE0 stores 42 to word 5 before the barrier; every PE loads it
        // after the barrier and stores what it saw into its own slot.
        let p = Program::new(
            body(vec![
                Op::If {
                    cond: crate::program::Cond::new(Expr::PeIndex, crate::program::CmpOp::Eq, 0),
                    then_ops: body(vec![
                        Op::Store {
                            addr: Expr::Const(5),
                            value: Expr::Const(42),
                        },
                        Op::Fence,
                    ]),
                    else_ops: body(vec![]),
                },
                Op::Barrier,
                Op::Load {
                    addr: Expr::Const(5),
                    dst: 0,
                },
                Op::Store {
                    addr: Expr::add(Expr::Const(200), Expr::PeIndex),
                    value: Expr::Reg(0),
                },
                Op::Halt,
            ]),
            vec![],
        );
        for build in [
            MachineBuilder::new(8).ideal(2),
            MachineBuilder::new(8).network(1),
        ] {
            let mut m = build.build_spmd(&p);
            assert!(m.run().completed);
            for pe in 0..8 {
                assert_eq!(m.read_shared(200 + pe), 42, "PE{pe} saw the store");
            }
        }
    }

    #[test]
    fn consecutive_barriers_work() {
        let p = Program::new(
            body(vec![Op::Barrier, Op::Barrier, Op::Barrier, Op::Halt]),
            vec![],
        );
        let mut m = MachineBuilder::new(4).build_spmd(&p);
        assert!(m.run().completed);
    }

    #[test]
    fn network_latency_reflected_in_cm_access() {
        // One load on an otherwise idle 64-PE machine: round trip should be
        // the §4.2 minimum (fwd D + m_ctl - 1, MM service, reverse
        // D + m_data - 1) — with D = 6, service 2: 6 + 2 + 8 = 16 cycles.
        let p = Program::new(
            body(vec![
                Op::Load {
                    addr: Expr::Const(7),
                    dst: 0,
                },
                Op::Store {
                    addr: Expr::Const(300),
                    value: Expr::Reg(0),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut programs = vec![Program::empty(); 64];
        programs[3] = p;
        let mut m = MachineBuilder::new(64).build(programs);
        assert!(m.run().completed);
        let merged = m.merged_pe_stats();
        assert_eq!(merged.cm_access.count(), 2);
        // The load's round trip is measured from issue to delivery; allow
        // the injection cycle itself as slack.
        let min = merged.cm_access.percentile(0.0);
        assert!(
            (16..=18).contains(&min),
            "min CM access {min} should be ~16 cycles (8 PE instruction times)"
        );
    }

    #[test]
    fn hotspot_combining_machine_end_to_end() {
        // All PEs hammer one word; combining must keep the final count
        // exact and the returned values distinct.
        let p = Program::new(
            body(vec![
                Op::FetchAdd {
                    addr: Expr::Const(0),
                    delta: Expr::Const(1),
                    dst: Some(0),
                },
                Op::Store {
                    addr: Expr::add(Expr::Const(500), Expr::Reg(0)),
                    value: Expr::Const(1),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let n = 16;
        let mut m = MachineBuilder::new(n).build_spmd(&p);
        assert!(m.run().completed);
        assert_eq!(m.read_shared(0), n as Value);
        for i in 0..n {
            assert_eq!(m.read_shared(500 + i), 1, "ticket {i} claimed once");
        }
    }

    #[test]
    fn run_times_out_on_deadlock() {
        // One PE waits at a barrier nobody else reaches.
        let p = Program::new(body(vec![Op::Barrier, Op::Halt]), vec![]);
        let mut programs = vec![Program::empty(); 4];
        programs[0] = p;
        let mut m = MachineBuilder::new(4).max_cycles(5_000).build(programs);
        let out = m.run();
        assert!(!out.completed);
        assert_eq!(out.cycles, 5_000);
    }

    #[test]
    fn stats_populated() {
        let mut m = MachineBuilder::new(8).build_spmd(&counter_program(5));
        assert!(m.run().completed);
        let merged = m.merged_pe_stats();
        assert!(merged.instructions.get() > 0);
        assert_eq!(merged.shared_refs.get(), 8 * 5);
        assert_eq!(merged.cm_loads.get(), 8 * 5, "fetch-and-adds carry data");
        let net = m.net_stats();
        assert_eq!(net.injected_requests.get(), 8 * 5);
        assert_eq!(
            net.delivered_replies.get(),
            8 * 5,
            "every request gets exactly one reply (decombined or direct)"
        );
        assert_eq!(net.combines.get(), net.decombines.get());
    }

    #[test]
    fn fetch_and_max_reduction_combines_end_to_end() {
        // §2.4 generality through the whole machine: every PE folds a
        // value into a shared maximum with FetchPhi(Max); the network
        // combines Max pairs exactly like adds.
        use ultra_net::message::PhiOp;
        let p = Program::new(
            body(vec![
                Op::FetchPhi {
                    op: PhiOp::Max,
                    addr: Expr::Const(3),
                    // Values 0, 7, 14, ... — max is (n-1)*7.
                    operand: Expr::mul(Expr::PeIndex, 7),
                    dst: Some(0),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let n = 16;
        let mut m = MachineBuilder::new(n).build_spmd(&p);
        m.write_shared(3, -100);
        assert!(m.run().completed);
        assert_eq!(m.read_shared(3), (n as Value - 1) * 7);
        assert!(
            m.net_stats().combines.get() > 0,
            "simultaneous maxes must combine in the tree"
        );
    }

    #[test]
    fn four_by_four_switch_machine_works() {
        // The §4.2 geometry (k = 4) at small scale, through the machine.
        let mut m = MachineBuilder::new(16)
            .net(ultra_net::config::NetConfig::paper_section42_scaled(16))
            .build_spmd(&counter_program(8));
        assert!(m.run().completed);
        assert_eq!(m.read_shared(0), 16 * 8);
        assert!(
            m.net_stats().combines.get() > 0,
            "hot counter combines in 4x4 switches too"
        );
    }

    #[test]
    fn trace_records_the_story_of_a_run() {
        use crate::trace::TraceEvent;
        let p = Program::new(
            body(vec![
                Op::FetchAdd {
                    addr: Expr::Const(0),
                    delta: Expr::Const(1),
                    dst: Some(0),
                },
                Op::Barrier,
                Op::Halt,
            ]),
            vec![],
        );
        let mut m = MachineBuilder::new(4).build_spmd(&p);
        m.enable_trace(1024);
        assert!(m.run().completed);
        let issues = m
            .trace()
            .events()
            .filter(|e| matches!(e, TraceEvent::Issue { .. }))
            .count();
        let replies = m
            .trace()
            .events()
            .filter(|e| matches!(e, TraceEvent::Reply { .. }))
            .count();
        let halts = m
            .trace()
            .events()
            .filter(|e| matches!(e, TraceEvent::Halt { .. }))
            .count();
        let releases = m
            .trace()
            .events()
            .filter(|e| matches!(e, TraceEvent::BarrierRelease { .. }))
            .count();
        assert_eq!(issues, 8, "4 fetch-adds + 4 barrier arrivals");
        assert_eq!(replies, 8);
        assert_eq!(halts, 4);
        assert_eq!(releases, 1);
        // Events are recorded in nondecreasing cycle order.
        let cycles: Vec<_> = m.trace().events().map(TraceEvent::cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(m.trace().dropped(), 0);
    }

    // ---- fault injection & resilience ----

    #[test]
    fn dead_mm_at_boot_machine_counts_exactly() {
        // The counter word's healthy home may be the dead module; the
        // re-hash sends every access to the adoptive module instead and
        // the run stays exact.
        for dead in 0..8usize {
            let mut m = MachineBuilder::new(8)
                .faults(FaultPlan::none().dead_mm(MmId(dead)))
                .build_spmd(&counter_program(6));
            assert!(m.run().completed, "dead MM {dead} must not wedge the run");
            assert_eq!(m.read_shared(0), 48, "dead MM {dead}");
        }
    }

    #[test]
    fn dead_copy_fails_over_and_counts_exactly() {
        // d = 2 with one copy fully dead: every injection is refused by
        // the dead copy and carried by the survivor.
        let mut m = MachineBuilder::new(8)
            .network(2)
            .faults(FaultPlan::none().dead_copy(0))
            .build_spmd(&counter_program(8));
        assert!(m.run().completed);
        assert_eq!(m.read_shared(0), 64);
        let f = m.fault_summary();
        assert!(f.failovers > 0, "survivor must pick up refused requests");
        assert_eq!(f.refusals, f.failovers, "every refusal failed over");
    }

    #[test]
    fn lossy_links_with_retry_stay_exactly_once() {
        // 10% of injections are swallowed; the PNI timeout re-issues them
        // and the MM dedup cache keeps each fetch-and-add single-shot.
        let mut m = MachineBuilder::new(8)
            .faults(FaultPlan::none().seed(7).link_loss(0.10))
            .max_cycles(2_000_000)
            .build_spmd(&counter_program(10));
        assert!(m.run().completed, "retries must recover every loss");
        assert_eq!(m.read_shared(0), 80, "applied exactly once despite loss");
        let f = m.fault_summary();
        assert!(f.dropped > 0, "losses must actually occur at 10%");
        assert!(f.retries >= f.dropped, "every loss needs a retry");
    }

    #[test]
    fn scheduled_copy_death_mid_run_is_survivable() {
        let mut m = MachineBuilder::new(8)
            .network(2)
            .faults(FaultPlan::none().schedule(50, Fault::KillCopy { copy: 1 }))
            .build_spmd(&counter_program(12));
        assert!(m.run().completed);
        assert_eq!(m.read_shared(0), 96);
        assert!(m.fault_summary().refusals > 0, "the dead copy refused work");
    }

    #[test]
    fn scheduled_mm_death_mid_run_rehashes_and_recovers() {
        // Distinct-slot stores: slots written before the death and living
        // on surviving modules keep their values; requests in flight to
        // the dying module are discarded and recovered by retry.
        let p = Program::new(
            body(vec![
                Op::Store {
                    addr: Expr::add(Expr::Const(100), Expr::PeIndex),
                    value: Expr::Const(7),
                },
                Op::Fence,
                Op::Barrier,
                Op::Store {
                    addr: Expr::add(Expr::Const(200), Expr::PeIndex),
                    value: Expr::Const(9),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let healthy = AddressHasher::new(8, TranslationMode::Hashed);
        let dying = MmId(3);
        let mut m = MachineBuilder::new(8)
            .faults(FaultPlan::none().schedule(60, Fault::KillMm { mm: dying }))
            .build_spmd(&p);
        let out = m.run();
        assert!(out.completed, "machine must drain after the module dies");
        assert!(m.fault_summary().retries > 0 || m.fault_summary().dead_discards == 0);
        // Post-barrier stores all happened under the degraded hash.
        for pe in 0..8 {
            assert_eq!(m.read_shared(200 + pe), 9, "post-death store {pe}");
        }
        // Pre-death stores survive unless their word lived on the victim.
        for pe in 0..8 {
            if healthy.translate(100 + pe).mm != dying {
                assert_eq!(m.read_shared(100 + pe), 7, "surviving store {pe}");
            }
        }
    }

    #[test]
    fn healthy_plan_reports_zero_fault_activity() {
        let mut m = MachineBuilder::new(8).build_spmd(&counter_program(5));
        assert!(m.run().completed);
        assert!(!m.fault_summary().any());
    }

    // ---- §3.5 hardware multiprogramming ----

    #[test]
    fn multiprogramming_runs_k_contexts_per_pe() {
        // 4 physical PEs x 2 contexts = 8 virtual PEs; each writes its own
        // virtual id into a slot.
        let p = Program::new(
            body(vec![
                Op::Store {
                    addr: Expr::add(Expr::Const(100), Expr::PeIndex),
                    value: Expr::add(Expr::PeIndex, 1),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut m = MachineBuilder::new(4).multiprogramming(2).build_spmd(&p);
        assert_eq!(m.virtual_pes(), 8);
        assert!(m.run().completed);
        for vid in 0..8 {
            assert_eq!(m.read_shared(100 + vid), vid as Value + 1);
        }
    }

    #[test]
    fn multiprogramming_counts_exactly() {
        let mut m = MachineBuilder::new(4)
            .multiprogramming(4)
            .build_spmd(&counter_program(10));
        assert!(m.run().completed);
        assert_eq!(m.read_shared(0), 16 * 10, "16 virtual PEs x 10");
    }

    #[test]
    fn multiprogramming_barriers_span_all_contexts() {
        let p = Program::new(
            body(vec![
                Op::FetchAdd {
                    addr: Expr::Const(0),
                    delta: Expr::Const(1),
                    dst: None,
                },
                Op::Barrier,
                // After the barrier every context must see all arrivals.
                Op::Load {
                    addr: Expr::Const(0),
                    dst: 0,
                },
                Op::Store {
                    addr: Expr::add(Expr::Const(100), Expr::PeIndex),
                    value: Expr::Reg(0),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut m = MachineBuilder::new(4).multiprogramming(2).build_spmd(&p);
        assert!(m.run().completed);
        for vid in 0..8 {
            assert_eq!(m.read_shared(100 + vid), 8, "context {vid}");
        }
    }

    // ---- cycle engine: parallel parity & idle fast-forward ----

    fn digest(m: &Machine) -> String {
        crate::report::MachineReport::from_machine(m).parity_string()
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        // Same config at 1, 2 and 4 threads, with every fan-out point
        // exercised: d = 2 network copies, 8 banks, 8 PE shards with two
        // contexts each, plus tracing so the deferred-event merge order
        // is checked too.
        let run = |threads: usize| {
            let mut m = MachineBuilder::new(8)
                .network(2)
                .multiprogramming(2)
                .threads(threads)
                .build_spmd(&counter_program(6));
            m.enable_trace(4096);
            assert!(m.run().completed);
            let events: Vec<TraceEvent> = m.trace().events().copied().collect();
            (digest(&m), events, m.read_shared(0))
        };
        let (seq, seq_events, seq_mem) = run(1);
        for threads in [2, 4] {
            let (par, par_events, par_mem) = run(threads);
            assert_eq!(seq, par, "parity digest diverged at {threads} threads");
            assert_eq!(
                seq_events, par_events,
                "trace diverged at {threads} threads"
            );
            assert_eq!(seq_mem, par_mem);
        }
    }

    #[test]
    fn auto_threads_heuristic_sizes_the_engine() {
        // Small machines stay sequential regardless of the host.
        let small = MachineBuilder::new(8).build_spmd(&counter_program(1));
        assert!(small.auto_threads());
        assert_eq!(small.engine_mode(), EngineMode::Sequential);
        // An explicit thread count pins the engine and clears the flag.
        let pinned = MachineBuilder::new(8)
            .threads(3)
            .build_spmd(&counter_program(1));
        assert!(!pinned.auto_threads());
        if cfg!(feature = "parallel") {
            assert_eq!(pinned.engine_mode(), EngineMode::Parallel { threads: 3 });
        }
        // At or above the size threshold, auto picks from the host's
        // available parallelism, capped by the size-scaled ceiling.
        let big = MachineBuilder::new(Machine::AUTO_THREADS_MIN_PES)
            .build_spmd(&Program::new(body(vec![Op::Halt]), vec![]));
        let chosen = big.engine_mode().threads();
        assert!((1..=Machine::MAX_AUTO_THREADS).contains(&chosen));
        if cfg!(feature = "parallel") {
            let host = std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(Machine::MAX_AUTO_THREADS);
            assert_eq!(chosen, host);
        }
        // The cap itself scales with the fabric: sequential below the
        // threshold, four threads for mid sizes, eight from 16K PEs up
        // (pure function — no machine built, so the wide tier is
        // testable without allocating a 16K-PE fabric).
        assert_eq!(
            Machine::auto_thread_cap(Machine::AUTO_THREADS_MIN_PES - 1),
            1
        );
        assert_eq!(
            Machine::auto_thread_cap(Machine::AUTO_THREADS_MIN_PES),
            Machine::MAX_AUTO_THREADS
        );
        assert_eq!(
            Machine::auto_thread_cap(Machine::AUTO_THREADS_WIDE_PES - 1),
            Machine::MAX_AUTO_THREADS
        );
        assert_eq!(
            Machine::auto_thread_cap(Machine::AUTO_THREADS_WIDE_PES),
            Machine::MAX_AUTO_THREADS_WIDE
        );
        assert_eq!(
            Machine::auto_thread_cap(4 * Machine::AUTO_THREADS_WIDE_PES),
            Machine::MAX_AUTO_THREADS_WIDE
        );
    }

    #[test]
    fn dense_sweep_is_bit_identical_to_sparse() {
        let run = |mode: ultra_net::config::SweepMode| {
            let mut m = MachineBuilder::new(8)
                .network(2)
                .multiprogramming(2)
                .sweep(mode)
                .build_spmd(&counter_program(6));
            m.enable_trace(4096);
            assert!(m.run().completed);
            let events: Vec<TraceEvent> = m.trace().events().copied().collect();
            (digest(&m), events, m.read_shared(0))
        };
        let sparse = run(ultra_net::config::SweepMode::Sparse);
        let dense = run(ultra_net::config::SweepMode::Dense);
        assert_eq!(sparse, dense, "sweep mode changed the simulation");
    }

    #[test]
    fn fast_forward_is_bit_identical_on_ideal_backend() {
        // A huge round-trip latency leaves long provably idle gaps while
        // every context sits in WaitReg on a locked destination; the
        // fast-forward must jump them without disturbing any statistic.
        let p = Program::new(
            body(vec![
                Op::For {
                    reg: 1,
                    from: Expr::Const(0),
                    to: Expr::Const(3),
                    body: body(vec![
                        Op::Load {
                            addr: Expr::add(Expr::mul(Expr::PeIndex, 64), Expr::Reg(1)),
                            dst: 0,
                        },
                        // Immediate use: the context parks until the reply.
                        Op::Set {
                            reg: 2,
                            value: Expr::add(Expr::Reg(0), Expr::Reg(2)),
                        },
                    ]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let run = |ff: bool| {
            let mut m = MachineBuilder::new(4)
                .ideal(500)
                .fast_forward(ff)
                .build_spmd(&p);
            assert!(m.run().completed);
            (digest(&m), m.fast_forwarded_cycles())
        };
        let (slow, skipped_off) = run(false);
        let (fast, skipped_on) = run(true);
        assert_eq!(slow, fast, "fast-forward changed the simulation");
        assert_eq!(skipped_off, 0);
        assert!(
            skipped_on > 1_000,
            "500-cycle latencies must leave big skippable gaps, got {skipped_on}"
        );
    }

    #[test]
    fn fast_forward_is_bit_identical_under_lossy_retries() {
        // Dropped requests leave the machine fully drained until the PNI
        // retry deadline — exactly the gap the fast-forward targets; the
        // jump must land on the deadline cycle, not skip it.
        let run = |ff: bool| {
            let mut m = MachineBuilder::new(8)
                .faults(FaultPlan::none().seed(11).link_loss(0.15))
                .fast_forward(ff)
                .max_cycles(2_000_000)
                .build_spmd(&counter_program(6));
            assert!(m.run().completed);
            assert_eq!(m.read_shared(0), 48);
            digest(&m)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fast_forward_deadlock_still_burns_to_the_budget() {
        let p = Program::new(body(vec![Op::Barrier, Op::Halt]), vec![]);
        let mut programs = vec![Program::empty(); 4];
        programs[0] = p;
        let mut m = MachineBuilder::new(4).max_cycles(5_000).build(programs);
        let out = m.run();
        assert!(!out.completed);
        assert_eq!(out.cycles, 5_000);
        assert!(
            m.fast_forwarded_cycles() > 4_000,
            "the deadlocked tail should be skipped in one jump"
        );
    }

    #[test]
    fn wait_until_wakes_on_time_and_fast_forwards_the_gap() {
        // Every PE sleeps until a staggered absolute cycle, then stamps
        // the clock it woke at into its own slot. The wake must be
        // punctual (at/after the target, and not far after: the next
        // fetch happens on the wake cycle), and the idle gaps must be
        // fast-forwardable without disturbing the parity digest.
        let p = Program::new(
            body(vec![
                Op::WaitUntil {
                    cycle: Expr::add(Expr::mul(Expr::PeIndex, 1000), 2000),
                },
                Op::Store {
                    addr: Expr::add(Expr::Const(300), Expr::PeIndex),
                    value: Expr::Clock,
                },
                Op::Halt,
            ]),
            vec![],
        );
        let run = |ff: bool| {
            let mut m = MachineBuilder::new(4)
                .ideal(2)
                .fast_forward(ff)
                .build_spmd(&p);
            assert!(m.run().completed);
            for pe in 0..4i64 {
                let target = pe * 1000 + 2000;
                let woke = m.read_shared((300 + pe) as usize);
                assert!(woke >= target, "PE {pe} woke at {woke}, before {target}");
                assert!(woke < target + 16, "PE {pe} overslept: {woke} vs {target}");
            }
            (digest(&m), m.fast_forwarded_cycles())
        };
        let (slow, skipped_off) = run(false);
        let (fast, skipped_on) = run(true);
        assert_eq!(slow, fast, "fast-forward changed a timed-wait run");
        assert_eq!(skipped_off, 0);
        assert!(
            skipped_on > 1_000,
            "staggered sleeps must leave skippable gaps, got {skipped_on}"
        );
    }

    #[test]
    fn relative_wait_matches_across_backends() {
        // WaitUntil(Clock + k) from inside a loop: a fixed-rate pacing
        // pattern. Both backends must complete and agree that each
        // iteration lands at least k cycles after the previous stamp.
        let p = Program::new(
            body(vec![
                Op::For {
                    reg: 1,
                    from: Expr::Const(0),
                    to: Expr::Const(4),
                    body: body(vec![
                        Op::WaitUntil {
                            cycle: Expr::add(Expr::Clock, 100),
                        },
                        Op::Store {
                            addr: Expr::add(
                                Expr::add(Expr::Const(400), Expr::mul(Expr::PeIndex, 8)),
                                Expr::Reg(1),
                            ),
                            value: Expr::Clock,
                        },
                    ]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        for build in [
            MachineBuilder::new(2).ideal(2),
            MachineBuilder::new(2).network(1),
        ] {
            let mut m = build.build_spmd(&p);
            assert!(m.run().completed);
            for pe in 0..2 {
                let mut prev = 0;
                for i in 0..4 {
                    let stamp = m.read_shared(400 + pe * 8 + i);
                    assert!(
                        stamp >= prev + 100,
                        "PE {pe} iteration {i} stamped {stamp}, under {prev} + 100"
                    );
                    prev = stamp;
                }
            }
        }
    }

    #[test]
    fn multiprogramming_hides_memory_latency() {
        // A latency-bound pointer-chase-like program: load, use, repeat.
        // One context stalls on every use; two contexts interleave and
        // lower the PE's idle fraction.
        let p = Program::new(
            body(vec![
                Op::For {
                    reg: 1,
                    from: Expr::Const(0),
                    to: Expr::Const(60),
                    body: body(vec![
                        Op::Load {
                            addr: Expr::add(Expr::mul(Expr::PeIndex, 1024), Expr::Reg(1)),
                            dst: 0,
                        },
                        // Immediate use: no prefetch slack.
                        Op::Set {
                            reg: 2,
                            value: Expr::add(Expr::Reg(0), Expr::Reg(2)),
                        },
                    ]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let idle_frac = |contexts: usize| {
            let mut m = MachineBuilder::new(16)
                .multiprogramming(contexts)
                .build_spmd(&p);
            assert!(m.run().completed);
            let merged = m.merged_pe_stats();
            merged.idle_cycles.get() as f64 / (16 * m.now()) as f64
        };
        let single = idle_frac(1);
        let dual = idle_frac(2);
        assert!(
            dual < 0.8 * single,
            "2-fold multiprogramming must hide latency: idle {single:.3} -> {dual:.3}"
        );
    }
}
